"""Tests for workload generation, metrics and the runner."""

import numpy as np
import pytest

from repro.baselines import PairwiseHistSystem, SamplingAQP, UnsupportedQueryError
from repro.sql.ast import AggregateFunction, predicate_conditions
from repro.sql.predicate import selectivity
from repro.workload import (
    QueryGenerator,
    QueryRecord,
    WorkloadRunner,
    WorkloadSpec,
    WorkloadSummary,
    bound_width_percent,
    bounds_correct,
    relative_error,
)


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(100, 0) == pytest.approx(100.0)
        assert relative_error(float("nan"), 100) == float("inf")

    def test_bounds_correct(self):
        assert bounds_correct(90, 110, 100)
        assert not bounds_correct(101, 110, 100)
        assert not bounds_correct(float("nan"), 110, 100)

    def test_bound_width_percent(self):
        assert bound_width_percent(90, 110, 100) == pytest.approx(20.0)

    def test_query_record_properties(self):
        record = QueryRecord(
            sql="q", aggregation="COUNT", truth=100.0, estimate=105.0,
            lower=95.0, upper=110.0, latency_seconds=0.002,
        )
        assert record.relative_error == pytest.approx(0.05)
        assert record.bounds_correct
        assert record.bound_width_percent == pytest.approx(15.0)

    def test_summary_statistics(self):
        records = [
            QueryRecord("a", "COUNT", 100, 101, 95, 105, 0.001),
            QueryRecord("b", "AVG", 50, 60, 55, 65, 0.002),
            QueryRecord("c", "SUM", 10, float("nan"), supported=False),
        ]
        summary = WorkloadSummary(records)
        assert len(summary) == 3
        assert len(summary.supported_records) == 2
        assert summary.median_error_percent() == pytest.approx(10.5, abs=0.1)
        assert summary.median_latency_ms() == pytest.approx(1.5)
        assert summary.bounds_correct_rate_percent() == pytest.approx(50.0)
        assert summary.fraction_below(0.15) == pytest.approx(0.5)

    def test_summary_by_aggregation(self):
        records = [
            QueryRecord("a", "COUNT", 100, 101),
            QueryRecord("b", "COUNT", 100, 110),
            QueryRecord("c", "AVG", 50, 51),
        ]
        split = WorkloadSummary(records).by_aggregation()
        assert set(split) == {"COUNT", "AVG"}
        assert len(split["COUNT"]) == 2

    def test_error_percentiles_sorted(self):
        records = [QueryRecord(str(i), "COUNT", 100, 100 + i) for i in range(10)]
        summary = WorkloadSummary(records)
        percentiles = summary.error_percentiles([50, 90])
        assert percentiles[0] <= percentiles[1]

    def test_empty_summary_yields_nan(self):
        summary = WorkloadSummary()
        assert np.isnan(summary.median_error_percent())
        assert np.isnan(summary.median_latency_ms())


class TestQueryGenerator:
    def test_initial_spec_generates_single_predicate_queries(self, simple_table):
        spec = WorkloadSpec.initial_experiments(num_queries=25, seed=0)
        queries = QueryGenerator(simple_table, spec).generate()
        assert len(queries) == 25
        for query in queries:
            assert len(predicate_conditions(query.predicate)) == 1
            assert query.aggregation.func in {
                AggregateFunction.COUNT, AggregateFunction.SUM, AggregateFunction.AVG}

    def test_scaled_spec_generates_multi_predicate_queries(self, simple_table):
        spec = WorkloadSpec.scaled_experiments(num_queries=30, seed=1)
        queries = QueryGenerator(simple_table, spec).generate()
        assert len(queries) >= 25
        counts = [len(predicate_conditions(q.predicate)) for q in queries]
        assert max(counts) > 1
        functions = {q.aggregation.func for q in queries}
        assert len(functions) >= 5

    def test_minimum_selectivity_enforced(self, simple_table):
        spec = WorkloadSpec(num_queries=20, min_selectivity=0.05, seed=2)
        queries = QueryGenerator(simple_table, spec).generate()
        for query in queries:
            assert selectivity(query.predicate, simple_table.columns) >= 0.05

    def test_generation_is_deterministic(self, simple_table):
        spec = WorkloadSpec.initial_experiments(num_queries=10, seed=3)
        a = [str(q) for q in QueryGenerator(simple_table, spec).generate()]
        b = [str(q) for q in QueryGenerator(simple_table, spec).generate()]
        assert a == b

    def test_aggregation_columns_are_numeric(self, simple_table):
        spec = WorkloadSpec.scaled_experiments(num_queries=20, seed=4)
        for query in QueryGenerator(simple_table, spec).generate():
            assert query.aggregation.column in simple_table.schema.numeric_names

    def test_requires_numeric_column(self):
        from repro.data.table import Table

        table = Table.from_dict({"only_cat": ["a", "b", "c"]})
        with pytest.raises(ValueError):
            QueryGenerator(table, WorkloadSpec())

    def test_queries_reference_existing_columns(self, power_table):
        spec = WorkloadSpec.scaled_experiments(num_queries=15, seed=5)
        for query in QueryGenerator(power_table, spec).generate():
            for column in query.columns:
                assert column in power_table.column_names


class TestWorkloadRunner:
    def test_run_produces_summary_with_latency(self, simple_table, simple_engine):
        spec = WorkloadSpec.initial_experiments(num_queries=10, seed=6)
        queries = QueryGenerator(simple_table, spec).generate()
        runner = WorkloadRunner(simple_table)
        system = PairwiseHistSystem(engine=simple_engine)
        summary = runner.run(system, queries)
        assert len(summary) == 10
        assert summary.median_latency_ms() > 0
        assert np.isfinite(summary.median_error_percent())

    def test_unsupported_queries_are_recorded(self, simple_table):
        class RejectingSystem:
            name = "rejector"
            construction_seconds = 0.0

            def estimate(self, query):
                raise UnsupportedQueryError("nope")

            def synopsis_bytes(self):
                return 0

        spec = WorkloadSpec.initial_experiments(num_queries=5, seed=7)
        queries = QueryGenerator(simple_table, spec).generate()
        summary = WorkloadRunner(simple_table).run(RejectingSystem(), queries)
        assert len(summary.supported_records) == 0
        assert len(summary) == 5

    def test_run_many(self, simple_table, simple_engine):
        spec = WorkloadSpec.initial_experiments(num_queries=5, seed=8)
        queries = QueryGenerator(simple_table, spec).generate()
        runner = WorkloadRunner(simple_table)
        systems = [
            PairwiseHistSystem(engine=simple_engine, name="PH"),
            SamplingAQP.fit(simple_table, sample_size=500),
        ]
        summaries = runner.run_many(systems, queries)
        assert set(summaries) == {"PH", "Sampling"}

    def test_pairwisehist_beats_or_matches_nothing_baseline(self, simple_table, simple_engine):
        # Sanity: the engine's median error on the generated workload is small.
        spec = WorkloadSpec.initial_experiments(num_queries=20, seed=9)
        queries = QueryGenerator(simple_table, spec).generate()
        runner = WorkloadRunner(simple_table)
        summary = runner.run(PairwiseHistSystem(engine=simple_engine), queries)
        assert summary.median_error_percent() < 10.0
