"""Unit tests for the Golomb–Rice codec used by the sparse storage encoding."""

import numpy as np
import pytest

from repro.core.golomb import (
    decode_sequence,
    decode_value,
    encode_sequence,
    encode_value,
    encoded_bit_length,
    rice_parameter,
)
from repro.util.bitstream import BitReader, BitWriter


class TestRiceParameter:
    def test_empty_sequence_gets_zero(self):
        assert rice_parameter([]) == 0

    def test_small_values_get_small_parameter(self):
        assert rice_parameter([0, 1, 0, 1]) <= 1

    def test_large_values_get_larger_parameter(self):
        assert rice_parameter([1000] * 10) >= 8

    def test_parameter_is_bounded(self):
        assert 0 <= rice_parameter([10 ** 9]) <= 30


class TestValueCodec:
    @pytest.mark.parametrize("value", [0, 1, 2, 7, 8, 100, 12345])
    @pytest.mark.parametrize("k", [0, 1, 3, 5])
    def test_round_trip_single_value(self, value, k):
        writer = BitWriter()
        encode_value(writer, value, k)
        reader = BitReader(writer.getvalue())
        assert decode_value(reader, k) == value

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            encode_value(BitWriter(), -1, 2)


class TestSequenceCodec:
    def test_round_trip_sequence(self):
        values = [0, 3, 1, 7, 42, 0, 0, 5]
        payload, k = encode_sequence(values)
        assert decode_sequence(payload, len(values), k) == values

    def test_round_trip_with_explicit_parameter(self):
        values = [10, 20, 30]
        payload, k = encode_sequence(values, k=2)
        assert k == 2
        assert decode_sequence(payload, len(values), k) == values

    def test_geometric_gaps_compress_well(self):
        rng = np.random.default_rng(0)
        gaps = rng.geometric(0.3, size=500) - 1
        payload, _ = encode_sequence(gaps)
        # Fixed-width encoding would need at least ceil(log2(max+1)) bits per gap.
        fixed_bits = 500 * max(1, int(np.ceil(np.log2(gaps.max() + 1))))
        assert len(payload) * 8 <= fixed_bits * 1.5

    def test_encoded_bit_length_matches_actual(self):
        values = [0, 1, 5, 9, 2]
        payload, k = encode_sequence(values, k=1)
        bits = encoded_bit_length(values, k=1)
        assert (bits + 7) // 8 == len(payload)

    def test_empty_sequence(self):
        payload, k = encode_sequence([])
        assert decode_sequence(payload, 0, k) == []
