"""Property-based tests (hypothesis) for the core codecs and estimators.

These check invariants over randomly generated inputs: bit-stream and
Golomb round trips, coverage ranges, weighted-centre bound ordering,
histogram count conservation and the bracketing of exact partial counts by
the Theorem 2 bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.centre_bounds import weighted_centre_bounds
from repro.core.coverage import coverage_bounds, coverage_estimate, interval_coverage, partial_count_bounds
from repro.core.golomb import decode_sequence, encode_sequence
from repro.core.histogram1d import bin_indices
from repro.core.hypothesis import terrell_scott_bins
from repro.core.refine import refine_bin_1d
from repro.sql.ast import ComparisonOp
from repro.util.bitstream import BitReader, BitWriter

_SMALL_INTS = st.integers(min_value=0, max_value=10_000)


class TestBitstreamProperties:
    @given(st.lists(st.tuples(_SMALL_INTS, st.integers(min_value=14, max_value=20)), max_size=50))
    def test_fixed_width_round_trip(self, pairs):
        writer = BitWriter()
        for value, width in pairs:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in pairs:
            assert reader.read_bits(width) == value

    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=40))
    def test_unary_round_trip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        for value in values:
            assert reader.read_unary() == value


class TestGolombProperties:
    @given(
        st.lists(_SMALL_INTS, max_size=100),
        st.one_of(st.none(), st.integers(min_value=0, max_value=12)),
    )
    def test_sequence_round_trip(self, values, k):
        payload, used_k = encode_sequence(values, k=k)
        assert decode_sequence(payload, len(values), used_k) == values


class TestCoverageProperties:
    @given(
        st.floats(min_value=-50, max_value=150, allow_nan=False),
        st.sampled_from(list(ComparisonOp)),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=60)
    def test_coverage_always_in_unit_interval(self, literal, op, unique):
        v_minus = np.array([0.0, 25.0, 50.0, 75.0])
        v_plus = np.array([25.0, 50.0, 75.0, 100.0])
        uniques = np.full(4, float(unique))
        beta = coverage_estimate(op, literal, v_minus, v_plus, uniques)
        assert (beta >= 0.0).all() and (beta <= 1.0).all()

    @given(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_interval_coverage_in_unit_interval_and_monotone(self, a, b):
        lower, upper = min(a, b), max(a, b)
        v_minus = np.array([0.0, 25.0, 50.0, 75.0])
        v_plus = np.array([25.0, 50.0, 75.0, 100.0])
        uniques = np.full(4, 20.0)
        beta = interval_coverage(lower, upper, v_minus, v_plus, uniques)
        wider = interval_coverage(lower - 5, upper + 5, v_minus, v_plus, uniques)
        assert (beta >= 0).all() and (beta <= 1).all()
        assert (wider >= beta - 1e-12).all()

    @given(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=2, max_value=5_000),
        st.integers(min_value=2, max_value=500),
    )
    @settings(max_examples=60)
    def test_coverage_bounds_bracket_estimate(self, beta_value, count, unique):
        beta = np.array([beta_value])
        counts = np.array([float(count)])
        uniques = np.array([float(unique)])
        lower, upper = coverage_bounds(beta, counts, uniques, min_points=50, alpha=0.001)
        assert lower[0] <= beta_value + 1e-9
        assert upper[0] >= beta_value - 1e-9
        assert 0.0 <= lower[0] <= upper[0] <= 1.0

    @given(
        st.integers(min_value=100, max_value=100_000),
        st.integers(min_value=2, max_value=30),
        st.floats(min_value=0.1, max_value=50.0),
    )
    @settings(max_examples=60)
    def test_partial_count_bounds_are_ordered_and_feasible(self, count, sub_bins, chi2_alpha):
        for covered in range(sub_bins + 1):
            lower, upper = partial_count_bounds(float(count), sub_bins, covered, chi2_alpha)
            assert 0.0 <= lower <= upper <= count + 1e-9


class TestCentreBoundProperties:
    @given(
        st.integers(min_value=1, max_value=100_000),
        st.floats(min_value=-1000, max_value=1000, allow_nan=False),
        st.floats(min_value=0, max_value=1000, allow_nan=False),
        st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=80)
    def test_bounds_ordered_and_within_extrema(self, count, v_minus, width, unique):
        v_plus = v_minus + width
        lower, upper = weighted_centre_bounds(
            np.array([float(count)]), np.array([v_minus]), np.array([v_plus]),
            np.array([float(min(unique, count))]), min_points=100, alpha=0.001,
        )
        assert v_minus - 1e-6 <= lower[0] <= upper[0] <= v_plus + 1e-6


class TestRefinementProperties:
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_refinement_conserves_counts_and_order(self, seed):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(0, 3000))
        values = np.round(rng.gamma(2.0, 100.0, size))
        lower, upper = 0.0, max(float(values.max()) if size else 1.0, 1.0)
        result = refine_bin_1d(lower, upper, values, min_points=50, alpha=0.01)
        edges = np.array([lower] + result.upper_edges)
        # Edges are non-decreasing and end at the original upper edge.
        assert (np.diff(edges) >= 0).all()
        assert edges[-1] == pytest.approx(upper)
        # Histogramming the data over the refined edges conserves the count.
        if size:
            counts, _ = np.histogram(values, bins=np.unique(edges))
            assert counts.sum() == size
        # Metadata is ordered.
        for v_min, v_max in zip(result.v_minus, result.v_plus):
            assert v_min <= v_max

    @given(st.integers(min_value=1, max_value=10_000))
    def test_terrell_scott_at_least_one(self, unique):
        assert terrell_scott_bins(unique) >= 1


class TestBinIndexProperties:
    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_values_land_in_containing_bins(self, values):
        edges = np.linspace(0, 100, 11)
        values = np.asarray(values)
        idx = bin_indices(edges, values)
        assert (idx >= 0).all() and (idx <= 9).all()
        for value, t in zip(values, idx):
            assert edges[t] <= value or t == 0
            assert value <= edges[t + 1] or t == 9
