"""Tests for GreedyGD base/deviation splitting and the compressed store."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.gd.greedygd import GDSplit, GreedyGD, GreedyGDConfig, select_deviation_bits
from repro.gd.store import CompressedStore


def _codes_with_shared_high_bits(rows: int = 2000, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Rows whose columns share high bits (ideal for GD deduplication)."""
    rng = np.random.default_rng(seed)
    # High bits come from a handful of cluster values; only a few low-order
    # bits vary per row, which is the regime where GD deduplication wins.
    base_a = rng.integers(0, 4, size=rows) << 8
    base_b = rng.integers(0, 2, size=rows) << 10
    col_a = base_a | rng.integers(0, 16, size=rows)
    col_b = base_b | rng.integers(0, 32, size=rows)
    codes = np.column_stack([col_a, col_b]).astype(np.int64)
    total_bits = np.array([10, 11], dtype=np.int64)
    return codes, total_bits


class TestDeviationBitSelection:
    def test_selects_some_deviation_bits(self):
        codes, total_bits = _codes_with_shared_high_bits()
        deviation_bits = select_deviation_bits(codes, total_bits)
        assert (deviation_bits >= 0).all()
        assert (deviation_bits <= total_bits).all()
        assert deviation_bits.sum() > 0

    def test_constant_column_needs_no_deviation_bits(self):
        codes = np.column_stack([np.full(500, 7), np.arange(500)]).astype(np.int64)
        total_bits = np.array([3, 9], dtype=np.int64)
        deviation_bits = select_deviation_bits(codes, total_bits)
        assert deviation_bits[0] == 0

    def test_warm_start_matches_cold_result(self):
        codes, total_bits = _codes_with_shared_high_bits()
        cold = select_deviation_bits(codes, total_bits)
        warm = select_deviation_bits(codes, total_bits, warm_start=cold)
        np.testing.assert_array_equal(warm, cold)

    def test_warm_start_recovers_from_overshoot(self):
        """The bidirectional warm search removes bits a stale warm start
        over-assigned, so a distribution shift cannot lock in a bad split."""
        codes, total_bits = _codes_with_shared_high_bits()
        cold = select_deviation_bits(codes, total_bits)
        overshoot = np.minimum(cold + 3, total_bits)
        warm = select_deviation_bits(codes, total_bits, warm_start=overshoot)
        from repro.gd.greedygd import _estimate_bits

        warm_size, _ = _estimate_bits(codes, warm, total_bits)
        overshoot_size, _ = _estimate_bits(codes, overshoot, total_bits)
        assert warm_size <= overshoot_size
        assert (warm <= total_bits).all() and (warm >= 0).all()

    def test_warm_start_clipped_to_column_limits(self):
        codes, total_bits = _codes_with_shared_high_bits()
        silly = total_bits + 40
        warm = select_deviation_bits(codes, total_bits, warm_start=silly)
        assert (warm <= total_bits).all()


class TestGreedyGDCompress:
    def test_reconstruction_is_lossless(self):
        codes, total_bits = _codes_with_shared_high_bits()
        split = GreedyGD().compress(codes, total_bits)
        np.testing.assert_array_equal(split.reconstruct(), codes)

    def test_partial_reconstruction(self):
        codes, total_bits = _codes_with_shared_high_bits()
        split = GreedyGD().compress(codes, total_bits)
        rows = np.array([0, 10, 500])
        np.testing.assert_array_equal(split.reconstruct(rows), codes[rows])

    def test_deduplication_reduces_bases(self):
        codes, total_bits = _codes_with_shared_high_bits()
        split = GreedyGD().compress(codes, total_bits)
        assert split.num_bases < len(codes)

    def test_compression_beats_raw_for_redundant_data(self):
        codes, total_bits = _codes_with_shared_high_bits(rows=5000)
        split = GreedyGD().compress(codes, total_bits)
        raw_bits = int(total_bits.sum()) * len(codes)
        assert split.compressed_bits() < raw_bits

    def test_compressed_bytes_positive(self):
        codes, total_bits = _codes_with_shared_high_bits(rows=200)
        split = GreedyGD().compress(codes, total_bits)
        assert split.compressed_bytes() > 0

    def test_rejects_non_2d_codes(self):
        with pytest.raises(ValueError):
            GreedyGD().compress(np.arange(10), np.array([4]))

    def test_append_preserves_existing_rows(self):
        codes, total_bits = _codes_with_shared_high_bits(rows=800)
        split = GreedyGD().compress(codes[:600], total_bits)
        extended = GreedyGD().append(split, codes[600:])
        assert isinstance(extended, GDSplit)
        np.testing.assert_array_equal(extended.reconstruct(np.arange(600)), codes[:600])
        np.testing.assert_array_equal(extended.reconstruct(np.arange(600, 800)), codes[600:])

    def test_search_rows_subsampling(self):
        codes, total_bits = _codes_with_shared_high_bits(rows=3000)
        config = GreedyGDConfig(search_rows=200)
        split = GreedyGD(config).compress(codes, total_bits)
        np.testing.assert_array_equal(split.reconstruct(), codes)


class TestCompressedStore:
    @pytest.fixture(scope="class")
    def store(self, power_table):
        return CompressedStore.compress(power_table)

    def test_row_count_preserved(self, store, power_table):
        assert store.num_rows == power_table.num_rows

    def test_lossless_reconstruction_of_numeric_columns(self, store, power_table):
        reconstructed = store.reconstruct_rows(np.arange(200))
        for name in ("voltage", "global_active_power"):
            np.testing.assert_allclose(
                reconstructed.column(name)[:200], power_table.column(name)[:200], atol=1e-6
            )

    def test_compression_reduces_size(self, store, power_table):
        assert store.compressed_bytes() < power_table.memory_bytes()
        assert store.compression_ratio(power_table.memory_bytes()) > 1.0

    def test_base_values_span_column_range(self, store, power_table):
        bases = store.base_values("voltage")
        assert len(bases) >= 1
        assert bases.min() >= 0

    def test_decoded_codes_have_all_columns(self, store, power_table):
        codes, nulls = store.decoded_codes()
        assert set(codes) == set(power_table.column_names)
        for name in power_table.column_names:
            assert len(codes[name]) == power_table.num_rows

    def test_append_rows(self, power_table):
        store = CompressedStore.compress(power_table.head(1000))
        extended = store.append(power_table.select_rows(np.arange(1000, 1500)))
        assert extended.num_rows == 1500
        reconstructed = extended.reconstruct_rows(np.arange(1000, 1500))
        np.testing.assert_allclose(
            reconstructed.column("voltage"),
            power_table.column("voltage")[1000:1500],
            atol=1e-6,
        )

    def test_append_schema_mismatch_rejected(self, store):
        other = Table.from_dict({"different": [1.0, 2.0]})
        with pytest.raises(ValueError):
            store.append(other)

    def test_categorical_round_trip(self, flights_table):
        store = CompressedStore.compress(flights_table.head(500))
        reconstructed = store.reconstruct_rows(np.arange(500))
        assert list(reconstructed.column("airline")) == list(flights_table.column("airline")[:500])
