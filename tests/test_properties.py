"""Property-based invariants of the synopsis algebra (seeded random fan-out).

Complements ``test_property_based.py`` (which covers the low-level codecs
and refinement): these properties pin down the *algebra* the partitioned
service relies on — merge conserves mass, serialization is a round-trip
identity, and the partitioned store decodes to exactly the same rows as
the monolithic one.  Each property runs over a fan-out of seeded random
tables (plain ``random``/numpy seeding, no extra dependencies).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CompressedStore,
    PairwiseHistParams,
    PartitionedStore,
    Table,
    deserialize,
    deserialize_partitioned,
    serialize,
    serialize_partitioned,
)
from repro.core.builder import build_partition_synopses, snapshot_partition_input
from repro.core.synopsis import PairwiseHist
from repro.data.schema import ColumnSchema, ColumnType, TableSchema

SEEDS = [0, 1, 2, 3, 4]


def random_table(seed: int) -> Table:
    """A random mixed-type table whose numeric values are exactly storable."""
    rng = np.random.default_rng(seed)
    rows = int(rng.integers(1_200, 3_000))
    uniform = np.round(rng.uniform(0, 100, size=rows), 2)
    skewed = np.round(rng.exponential(15, size=rows), 2)
    integers = rng.integers(0, 25, size=rows).astype(float)
    labels = np.array(["red", "green", "blue", "cyan"], dtype=object)
    categories = labels[rng.integers(0, len(labels), size=rows)]
    schema = TableSchema(
        [
            ColumnSchema("uniform", ColumnType.NUMERIC, decimals=2),
            ColumnSchema("skewed", ColumnType.NUMERIC, decimals=2),
            ColumnSchema("integers", ColumnType.NUMERIC, decimals=0),
            ColumnSchema("label", ColumnType.CATEGORICAL),
        ]
    )
    return Table(
        name=f"random_{seed}",
        schema=schema,
        columns={
            "uniform": uniform,
            "skewed": skewed,
            "integers": integers,
            "label": categories,
        },
    )


def partition_synopses(
    table: Table, seed: int, partition_size: int = 700
) -> tuple[list[PairwiseHist], PairwiseHistParams]:
    params = PairwiseHistParams.with_defaults(sample_size=None, seed=seed)
    store = PartitionedStore.compress(table, partition_size=partition_size)
    inputs = [snapshot_partition_input(store, p) for p in store.partitions]
    return (
        build_partition_synopses(inputs, params, columns=store.column_order),
        params,
    )


class TestMergeConservation:
    """``merge(a, b)`` conserves histogram mass and row bookkeeping."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_merge_conserves_1d_counts(self, seed):
        table = random_table(seed)
        parts, params = partition_synopses(table, seed)
        merged = PairwiseHist.merge(list(parts), params=params)
        for column in merged.columns:
            part_total = sum(float(p.hist1d[column].counts.sum()) for p in parts)
            merged_total = float(merged.hist1d[column].counts.sum())
            assert merged_total == pytest.approx(part_total, rel=1e-9)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_merge_conserves_2d_counts(self, seed):
        table = random_table(seed)
        parts, params = partition_synopses(table, seed)
        merged = PairwiseHist.merge(list(parts), params=params)
        assert merged.hist2d, "expected pairwise histograms"
        for key, hist in merged.hist2d.items():
            part_total = sum(float(p.hist2d[key].counts.sum()) for p in parts)
            assert float(hist.counts.sum()) == pytest.approx(part_total, rel=1e-6)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_merge_adds_row_bookkeeping(self, seed):
        table = random_table(seed)
        parts, params = partition_synopses(table, seed)
        merged = PairwiseHist.merge(list(parts), params=params)
        assert merged.population_rows == sum(p.population_rows for p in parts)
        assert merged.population_rows == table.num_rows
        assert merged.sample_rows == sum(p.sample_rows for p in parts)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_merge_is_order_insensitive_on_counts(self, seed):
        table = random_table(seed)
        parts, params = partition_synopses(table, seed)
        forward = PairwiseHist.merge(list(parts), params=params)
        backward = PairwiseHist.merge(list(reversed(parts)), params=params)
        for column in forward.columns:
            assert float(forward.hist1d[column].counts.sum()) == pytest.approx(
                float(backward.hist1d[column].counts.sum()), rel=1e-9
            )


class TestSerializationRoundTrip:
    """PWHP (de)serialization is an identity on what it persists."""

    @staticmethod
    def assert_synopses_equal(left: PairwiseHist, right: PairwiseHist) -> None:
        assert left.columns == right.columns
        assert left.population_rows == right.population_rows
        assert left.sample_rows == right.sample_rows
        for column in left.columns:
            a, b = left.hist1d[column], right.hist1d[column]
            np.testing.assert_allclose(a.edges, b.edges)
            # Counts are persisted as integers; built synopses already are.
            np.testing.assert_allclose(np.rint(a.counts), b.counts)
            np.testing.assert_allclose(a.v_minus, b.v_minus)
            np.testing.assert_allclose(a.v_plus, b.v_plus)
        assert set(left.hist2d) == set(right.hist2d)
        for key in left.hist2d:
            np.testing.assert_allclose(
                np.rint(left.hist2d[key].counts), right.hist2d[key].counts
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_single_synopsis_round_trip(self, seed):
        table = random_table(seed)
        parts, _ = partition_synopses(table, seed)
        for part in parts:
            self.assert_synopses_equal(part, deserialize(serialize(part)))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_partitioned_framing_round_trip(self, seed):
        table = random_table(seed)
        parts, _ = partition_synopses(table, seed)
        decoded = deserialize_partitioned(serialize_partitioned(list(parts)))
        assert len(decoded) == len(parts)
        for part, round_tripped in zip(parts, decoded):
            self.assert_synopses_equal(part, round_tripped)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_round_trip_is_stable(self, seed):
        # serialize(deserialize(x)) == serialize-ish: a second round trip
        # reproduces the first byte-for-byte (the codec is deterministic).
        table = random_table(seed)
        parts, _ = partition_synopses(table, seed)
        payload = serialize_partitioned(list(parts))
        again = serialize_partitioned(deserialize_partitioned(payload))
        assert payload == again


class TestPartitionedDecodeEquivalence:
    """Partitioned and monolithic stores decode to identical rows."""

    @staticmethod
    def assert_tables_equal(left: Table, right: Table) -> None:
        assert left.column_names == right.column_names
        for name in left.column_names:
            a, b = left.column(name), right.column(name)
            if left.schema[name].is_categorical:
                assert all(
                    x == y or (x is None and y is None) for x, y in zip(a, b)
                )
            else:
                np.testing.assert_allclose(
                    np.nan_to_num(a, nan=-1.0), np.nan_to_num(b, nan=-1.0)
                )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_partitioned_decode_matches_monolithic(self, seed):
        table = random_table(seed)
        partitioned = PartitionedStore.compress(table, partition_size=700)
        monolithic = CompressedStore.compress(table)
        self.assert_tables_equal(
            partitioned.reconstruct_rows(), monolithic.reconstruct_rows()
        )
        self.assert_tables_equal(partitioned.reconstruct_rows(), table)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_subset_decode_matches_monolithic(self, seed):
        table = random_table(seed)
        rng = np.random.default_rng(seed + 100)
        indices = np.sort(
            rng.choice(table.num_rows, size=min(500, table.num_rows), replace=False)
        )
        partitioned = PartitionedStore.compress(table, partition_size=700)
        monolithic = CompressedStore.compress(table)
        self.assert_tables_equal(
            partitioned.reconstruct_rows(indices),
            monolithic.reconstruct_rows(indices),
        )
