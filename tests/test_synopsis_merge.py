"""Tests for mergeable histograms, partitioned synopsis construction and
partitioned serialization."""

import numpy as np
import pytest

from repro.core.builder import (
    PartitionInput,
    build_pairwise_hist,
    build_partition_synopses,
    build_partitioned_hist,
    partition_params,
)
from repro.core.histogram1d import Histogram1D, projection_matrix
from repro.core.histogram2d import Histogram2D
from repro.core.params import PairwiseHistParams
from repro.core.serialization import (
    deserialize_partitioned,
    serialize,
    serialize_partitioned,
)
from repro.core.synopsis import PairwiseHist


def make_codes(rows: int, seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "a": rng.integers(0, 2_000, rows).astype(np.int64),
        "b": np.clip(rng.normal(500, 120, rows), 0, None).astype(np.int64),
        "c": rng.integers(0, 5, rows).astype(np.int64),
    }


def split_codes(codes: dict[str, np.ndarray], parts: int) -> list[PartitionInput]:
    rows = len(next(iter(codes.values())))
    chunk = rows // parts
    return [
        PartitionInput(codes={k: v[p * chunk : (p + 1) * chunk] for k, v in codes.items()})
        for p in range(parts)
    ]


@pytest.fixture(scope="module")
def params():
    return PairwiseHistParams.with_defaults(sample_size=None, seed=0)


@pytest.fixture(scope="module")
def partition_synopses(params):
    codes = make_codes(12_000, seed=1)
    return build_partition_synopses(split_codes(codes, 4), params)


class TestProjectionMatrix:
    def test_rows_are_stochastic(self):
        edges = np.array([0.0, 10.0, 20.0])
        union = np.array([0.0, 5.0, 10.0, 15.0, 20.0])
        matrix = projection_matrix(edges, edges[:-1], edges[1:], union)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_mass_spreads_by_occupied_interval(self):
        # Data occupies [8, 10] of bin [0, 10]: all mass must land in the
        # union bin [5, 10], none in [0, 5].
        edges = np.array([0.0, 10.0])
        union = np.array([0.0, 5.0, 10.0])
        matrix = projection_matrix(edges, np.array([8.0]), np.array([10.0]), union)
        np.testing.assert_allclose(matrix, [[0.0, 1.0]])

    def test_point_mass_bin_lands_in_one_cell(self):
        edges = np.array([0.0, 10.0])
        union = np.array([0.0, 5.0, 10.0])
        matrix = projection_matrix(edges, np.array([7.0]), np.array([7.0]), union)
        np.testing.assert_allclose(matrix, [[0.0, 1.0]])


class TestHistogram1DMerge:
    def test_merge_preserves_total_count(self, partition_synopses, params):
        hists = [s.hist1d["a"] for s in partition_synopses]
        merged = Histogram1D.merge(hists, params.min_points, params.alpha)
        assert merged.total_count == pytest.approx(sum(h.total_count for h in hists))

    def test_merged_edges_are_the_union(self, partition_synopses, params):
        hists = [s.hist1d["b"] for s in partition_synopses]
        merged = Histogram1D.merge(hists, params.min_points, params.alpha)
        union = np.unique(np.concatenate([h.edges for h in hists]))
        np.testing.assert_array_equal(merged.edges, union)

    def test_merged_metadata_is_consistent(self, partition_synopses, params):
        merged = Histogram1D.merge(
            [s.hist1d["b"] for s in partition_synopses], params.min_points, params.alpha
        )
        assert np.all(merged.v_minus <= merged.v_plus + 1e-9)
        assert np.all(merged.centre_lower <= merged.centre_upper + 1e-9)
        occupied = merged.counts > 0
        assert np.all(merged.unique[occupied] >= 1.0)
        assert np.all(merged.unique[~occupied] == 0.0)

    def test_unique_counts_are_max_not_sum(self, params):
        # Four partitions of one low-cardinality column: the merged distinct
        # count must stay at the per-partition level, not quadruple (it
        # drives equality-predicate coverage, count / u).
        codes = make_codes(8_000, seed=3)
        parts = build_partition_synopses(split_codes(codes, 4), params)
        merged = Histogram1D.merge(
            [s.hist1d["c"] for s in parts], params.min_points, params.alpha
        )
        assert merged.unique.sum() <= 1.5 * max(s.hist1d["c"].unique.sum() for s in parts)

    def test_merge_validates_inputs(self, partition_synopses, params):
        with pytest.raises(ValueError):
            Histogram1D.merge([], params.min_points, params.alpha)
        with pytest.raises(ValueError):
            Histogram1D.merge(
                [partition_synopses[0].hist1d["a"], partition_synopses[0].hist1d["b"]],
                params.min_points,
                params.alpha,
            )


class TestHistogram2DMerge:
    def test_merge_preserves_total_count(self, partition_synopses, params):
        key = ("a", "b")
        hists = [s.hist2d[key] for s in partition_synopses]
        merged_1d = {
            name: Histogram1D.merge(
                [s.hist1d[name] for s in partition_synopses], params.min_points, params.alpha
            )
            for name in key
        }
        merged = Histogram2D.merge(hists, merged_1d["a"], merged_1d["b"])
        assert merged.total_count == pytest.approx(sum(h.total_count for h in hists))
        # Marginals stay consistent with the cell counts.
        np.testing.assert_allclose(merged.row.marginal_counts, merged.counts.sum(axis=1))
        np.testing.assert_allclose(merged.col.marginal_counts, merged.counts.sum(axis=0))

    def test_parent_maps_point_into_merged_1d(self, partition_synopses, params):
        key = ("a", "b")
        parent_a = Histogram1D.merge(
            [s.hist1d["a"] for s in partition_synopses], params.min_points, params.alpha
        )
        parent_b = Histogram1D.merge(
            [s.hist1d["b"] for s in partition_synopses], params.min_points, params.alpha
        )
        merged = Histogram2D.merge(
            [s.hist2d[key] for s in partition_synopses], parent_a, parent_b
        )
        assert merged.row.parent.max() < parent_a.num_bins
        assert merged.col.parent.max() < parent_b.num_bins

    def _merged(self, partition_synopses, params, max_cells=None):
        key = ("a", "b")
        parent_a = Histogram1D.merge(
            [s.hist1d["a"] for s in partition_synopses], params.min_points, params.alpha
        )
        parent_b = Histogram1D.merge(
            [s.hist1d["b"] for s in partition_synopses], params.min_points, params.alpha
        )
        return Histogram2D.merge(
            [s.hist2d[key] for s in partition_synopses],
            parent_a,
            parent_b,
            max_cells=max_cells,
        )

    def test_cell_budget_bounds_the_merged_grid(self, partition_synopses, params):
        free = self._merged(partition_synopses, params)
        budget = max(4, free.counts.size // 4)
        capped = self._merged(partition_synopses, params, max_cells=budget)
        assert capped.counts.size <= budget
        assert capped.counts.size < free.counts.size

    def test_coarsening_conserves_counts_and_metadata(self, partition_synopses, params):
        free = self._merged(partition_synopses, params)
        budget = max(4, free.counts.size // 4)
        capped = self._merged(partition_synopses, params, max_cells=budget)
        assert capped.total_count == pytest.approx(free.total_count)
        np.testing.assert_allclose(
            capped.row.marginal_counts, capped.counts.sum(axis=1)
        )
        np.testing.assert_allclose(
            capped.col.marginal_counts, capped.counts.sum(axis=0)
        )
        # Coarse edges are a subset of the union edges; the value range and
        # occupied supports survive re-binning.
        assert np.isin(capped.row.edges, free.row.edges).all()
        assert np.isin(capped.col.edges, free.col.edges).all()
        assert capped.row.edges[0] == free.row.edges[0]
        assert capped.row.edges[-1] == free.row.edges[-1]
        occupied = capped.row.marginal_counts > 0
        assert (capped.row.v_minus[occupied] <= capped.row.v_plus[occupied]).all()

    def test_cell_budget_holds_on_skewed_grids(self):
        from repro.core.histogram2d import _coarse_grid_targets

        cases = [(2, 800, 16), (800, 2, 16), (10_000, 1, 100), (1, 1, 1), (3, 3, 4)]
        for k_row, k_col, budget in cases:
            target_row, target_col = _coarse_grid_targets(k_row, k_col, budget)
            assert 1 <= target_row <= k_row
            assert 1 <= target_col <= k_col
            assert target_row * target_col <= budget, (k_row, k_col, budget)

    def test_budget_above_grid_size_is_a_no_op(self, partition_synopses, params):
        free = self._merged(partition_synopses, params)
        capped = self._merged(
            partition_synopses, params, max_cells=free.counts.size + 1
        )
        np.testing.assert_array_equal(capped.counts, free.counts)
        np.testing.assert_array_equal(capped.row.edges, free.row.edges)


class TestPairwiseHistMerge:
    def test_merge_sums_bookkeeping(self, partition_synopses, params):
        merged = PairwiseHist.merge(list(partition_synopses), params=params)
        assert merged.population_rows == sum(s.population_rows for s in partition_synopses)
        assert merged.sample_rows == sum(s.sample_rows for s in partition_synopses)
        assert merged.params == params
        assert set(merged.hist1d) == set(partition_synopses[0].hist1d)
        assert set(merged.hist2d) == set(partition_synopses[0].hist2d)

    def test_merge_single_is_identity(self, partition_synopses):
        assert PairwiseHist.merge([partition_synopses[0]]) is partition_synopses[0]

    def test_max_merged_cells_param_bounds_2d_grids(self, partition_synopses, params):
        import dataclasses

        budget = 16
        capped_params = dataclasses.replace(params, max_merged_cells=budget)
        capped = PairwiseHist.merge(list(partition_synopses), params=capped_params)
        free = PairwiseHist.merge(list(partition_synopses), params=params)
        for key, hist in capped.hist2d.items():
            assert hist.counts.size <= budget
            assert hist.counts.sum() == pytest.approx(free.hist2d[key].counts.sum())

    def test_merge_rejects_mismatched_columns(self, partition_synopses, params):
        other = build_pairwise_hist({"z": np.arange(100)}, params)
        with pytest.raises(ValueError):
            PairwiseHist.merge([partition_synopses[0], other])


class TestBuildPartitioned:
    def test_partition_params_scale_sample_and_bin_budget(self):
        params = PairwiseHistParams(sample_size=10_000, min_points=100)
        scaled = partition_params(params, 2_500, 10_000)
        assert scaled.sample_size == 2_500
        # M stays global; the initial-bin budget (Ns / M = 100) is split
        # proportionally instead.
        assert scaled.min_points == 100
        assert scaled.effective_initial_bins == 25
        unscaled = partition_params(PairwiseHistParams(sample_size=None, min_points=100), 5, 10)
        assert unscaled.sample_size is None
        assert unscaled.effective_initial_bins == 64

    def test_merged_build_matches_monolithic_distribution(self, params):
        codes = make_codes(12_000, seed=2)
        mono = build_pairwise_hist(codes, params)
        merged = build_partitioned_hist(split_codes(codes, 4), params)
        assert merged.population_rows == mono.population_rows
        for name in codes:
            assert merged.hist1d[name].total_count == pytest.approx(
                mono.hist1d[name].total_count
            )
        # Histogram means agree closely between the two construction paths.
        for name in ("a", "b"):
            hm, hp = mono.hist1d[name], merged.hist1d[name]
            mean_mono = (hm.counts @ hm.midpoints) / hm.total_count
            mean_merged = (hp.counts @ hp.midpoints) / hp.total_count
            assert mean_merged == pytest.approx(mean_mono, rel=0.02)

    def test_executor_variants_agree(self, params):
        codes = make_codes(4_000, seed=4)
        parts = split_codes(codes, 2)
        serial = build_partition_synopses(parts, params, executor="serial")
        threaded = build_partition_synopses(parts, params, executor="thread", max_workers=2)
        for a, b in zip(serial, threaded):
            for name in codes:
                np.testing.assert_allclose(a.hist1d[name].counts, b.hist1d[name].counts)

    def test_unknown_executor_rejected(self, params):
        with pytest.raises(ValueError):
            build_partition_synopses(split_codes(make_codes(100, 0), 2), params, executor="gpu")
        with pytest.raises(ValueError):
            build_partition_synopses([], params)


class TestPartitionedSerialization:
    def test_round_trip(self, partition_synopses):
        payload = serialize_partitioned(list(partition_synopses))
        restored = deserialize_partitioned(payload)
        assert len(restored) == len(partition_synopses)
        for original, loaded in zip(partition_synopses, restored):
            assert loaded.population_rows == original.population_rows
            for name, hist in original.hist1d.items():
                np.testing.assert_allclose(loaded.hist1d[name].counts, hist.counts)
                np.testing.assert_allclose(loaded.hist1d[name].edges, hist.edges)
            for key, hist in original.hist2d.items():
                np.testing.assert_allclose(loaded.hist2d[key].counts, hist.counts)

    def test_round_trip_then_merge_matches_direct_merge(self, partition_synopses, params):
        direct = PairwiseHist.merge(list(partition_synopses), params=params)
        loaded = deserialize_partitioned(serialize_partitioned(list(partition_synopses)))
        merged = PairwiseHist.merge(loaded, params=params)
        for name in direct.hist1d:
            np.testing.assert_allclose(
                merged.hist1d[name].counts, direct.hist1d[name].counts
            )

    def test_bad_magic_rejected(self, partition_synopses):
        with pytest.raises(ValueError):
            deserialize_partitioned(serialize(partition_synopses[0]))
