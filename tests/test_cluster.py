"""Cluster subsystem tests: routing, gather math, edge cases, crash recovery.

The invariants pinned here:

* routing is a pure, deterministic function of row content;
* a 1-shard cluster answers *bit-identically* to a single-node service;
* gather math matches the algebra (COUNT/SUM add, AVG weighted, VAR exact
  decomposition, MIN/MAX envelopes, GROUP BY union, conservative bounds);
* empty shards — never-registered or group-absent — gather cleanly;
* a crashed worker is revived with recovery on the next touch (ingest or
  query), and ``kill -9`` of a worker loses nothing durable;
* a whole-cluster restart from the ``CLUSTER`` manifest recovers every
  shard and the routing catalog.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from conftest import make_simple_table

from repro import (
    ClusterQueryService,
    PairwiseHistParams,
    QueryService,
    parse_query,
)
from repro.cluster.gather import (
    GatherPlan,
    ShardAnswer,
    gather_groups,
    gather_scalar,
    plan_query,
    predicate_range,
)
from repro.cluster.router import ShardRouter
from repro.cluster.service import shard_params
from repro.data.table import Table
from repro.sql.ast import AggregateFunction

PARAMS = PairwiseHistParams.with_defaults(sample_size=None, seed=1)
PARTITION_SIZE = 500


def sensors(rows=1200, seed=3, name="sensors"):
    return make_simple_table(rows=rows, seed=seed, name=name)


QUERIES = [
    "SELECT COUNT(*) FROM sensors",
    "SELECT COUNT(x) FROM sensors WHERE x > 25",
    "SELECT SUM(z) FROM sensors WHERE x < 50",
    "SELECT AVG(x) FROM sensors WHERE y > 45",
    "SELECT MIN(x) FROM sensors WHERE x > 30",
    "SELECT MAX(y) FROM sensors WHERE x < 50",
    "SELECT MEDIAN(x) FROM sensors WHERE y > 50",
    "SELECT VAR(x) FROM sensors WHERE x > 10",
    "SELECT AVG(with_nulls) FROM sensors WHERE x > 40",
]


# --------------------------------------------------------------------------- #
# Router


class TestShardRouter:
    def test_routing_is_deterministic_across_instances(self):
        table = sensors()
        a = ShardRouter(4).shard_of_rows(table)
        b = ShardRouter(4).shard_of_rows(table)
        np.testing.assert_array_equal(a, b)

    def test_routing_depends_on_content_not_position(self):
        table = sensors()
        owners = ShardRouter(4).shard_of_rows(table)
        perm = np.random.default_rng(0).permutation(table.num_rows)
        shuffled_owners = ShardRouter(4).shard_of_rows(table.select_rows(perm))
        np.testing.assert_array_equal(shuffled_owners, owners[perm])

    def test_split_partitions_all_rows(self):
        table = sensors()
        parts = ShardRouter(3).split(table)
        assert sum(p.num_rows for p in parts if p is not None) == table.num_rows

    def test_split_is_roughly_balanced(self):
        table = sensors(rows=4000)
        parts = ShardRouter(2).split(table)
        sizes = [p.num_rows for p in parts]
        assert min(sizes) > 0.4 * table.num_rows

    def test_single_shard_routes_everything_to_shard_zero(self):
        table = sensors(rows=50)
        parts = ShardRouter(1).split(table)
        assert len(parts) == 1 and parts[0].num_rows == 50

    def test_nan_and_null_rows_route_deterministically(self):
        table = Table.from_dict(
            {"v": [float("nan"), 1.0, float("nan")], "c": [None, "a", None]},
            name="edge",
        )
        a = ShardRouter(5).shard_of_rows(table)
        b = ShardRouter(5).shard_of_rows(table)
        np.testing.assert_array_equal(a, b)
        assert a[0] == a[2]  # identical content -> identical placement

    def test_negative_zero_routes_like_zero(self):
        plus = Table.from_dict({"v": [0.0]}, name="edge")
        minus = Table.from_dict({"v": [-0.0]}, name="edge")
        router = ShardRouter(7)
        assert router.shard_of_rows(plus)[0] == router.shard_of_rows(minus)[0]

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardRouter(0)


# --------------------------------------------------------------------------- #
# Gather planning + recombination algebra


def answer(value, lower=None, upper=None):
    return ShardAnswer(
        value=value,
        lower=value if lower is None else lower,
        upper=value if upper is None else upper,
    )


class TestGatherPlan:
    def test_avg_gets_count_companion_in_same_query(self):
        plan = plan_query(parse_query("SELECT AVG(x) FROM t WHERE y > 3"))
        aggs = plan.scattered.aggregations
        assert [a.func for a in aggs] == [AggregateFunction.AVG, AggregateFunction.COUNT]
        assert aggs[1].column == "x"
        assert plan.count_index == (1,)

    def test_var_gets_count_and_avg_companions(self):
        plan = plan_query(parse_query("SELECT VAR(x) FROM t"))
        funcs = [a.func for a in plan.scattered.aggregations]
        assert funcs == [
            AggregateFunction.VAR,
            AggregateFunction.COUNT,
            AggregateFunction.AVG,
        ]
        assert plan.mean_index == (2,)

    def test_existing_count_is_reused_not_duplicated(self):
        plan = plan_query(parse_query("SELECT AVG(x), COUNT(x) FROM t"))
        assert len(plan.scattered.aggregations) == 2
        assert plan.count_index == (1, None)

    def test_count_and_sum_need_no_companions(self):
        plan = plan_query(parse_query("SELECT COUNT(*), SUM(x) FROM t WHERE x > 1"))
        assert plan.scattered.aggregations == plan.original.aggregations

    def test_scattered_query_round_trips_through_sql(self):
        plan = plan_query(parse_query("SELECT AVG(x) FROM t WHERE y > 3 GROUP BY c"))
        reparsed = parse_query(str(plan.scattered))
        assert reparsed.aggregations == plan.scattered.aggregations
        assert reparsed.group_by == "c"


class TestPredicateRange:
    def test_conjunctive_bounds(self):
        query = parse_query("SELECT MIN(x) FROM t WHERE x > 30 AND x < 70 AND y > 2")
        assert predicate_range(query, "x") == (30.0, 70.0)
        assert predicate_range(query, "y") == (2.0, math.inf)

    def test_disjunction_disables_clamping(self):
        query = parse_query("SELECT MIN(x) FROM t WHERE x < 20 OR x > 80")
        assert predicate_range(query, "x") == (-math.inf, math.inf)

    def test_no_predicate(self):
        query = parse_query("SELECT MIN(x) FROM t")
        assert predicate_range(query, "x") == (-math.inf, math.inf)


def _scalar(plan_sql: str, shard_rows):
    plan = plan_query(parse_query(plan_sql))
    return plan, gather_scalar(plan, shard_rows)


class TestGatherAlgebra:
    def test_count_and_sum_add_values_and_bounds(self):
        plan, [count, total] = _scalar(
            "SELECT COUNT(*), SUM(x) FROM t",
            [
                [answer(10, 9, 11), answer(100, 90, 110)],
                [answer(20, 19, 21), answer(50, 45, 55)],
            ],
        )
        assert (count.value, count.lower, count.upper) == (30, 28, 32)
        assert (total.value, total.lower, total.upper) == (150, 135, 165)

    def test_avg_recombines_count_weighted(self):
        plan, [avg] = _scalar(
            "SELECT AVG(x) FROM t",
            [
                [answer(10.0, 9.0, 11.0), answer(100)],  # avg, count companion
                [answer(40.0, 38.0, 42.0), answer(300)],
            ],
        )
        assert avg.value == pytest.approx((100 * 10.0 + 300 * 40.0) / 400)
        assert (avg.lower, avg.upper) == (9.0, 42.0)  # conservative envelope

    def test_var_uses_exact_decomposition(self):
        rng = np.random.default_rng(5)
        a, b = rng.normal(0, 1, 400), rng.normal(3, 2, 600)
        plan, [var] = _scalar(
            "SELECT VAR(x) FROM t",
            [
                [answer(a.var()), answer(len(a)), answer(a.mean())],
                [answer(b.var()), answer(len(b)), answer(b.mean())],
            ],
        )
        pooled = np.concatenate([a, b]).var()
        assert var.value == pytest.approx(pooled, rel=1e-12)

    def test_min_max_take_envelopes(self):
        plan, [low, high] = _scalar(
            "SELECT MIN(x), MAX(x) FROM t",
            [
                [answer(5, 4, 6), answer(90, 88, 92)],
                [answer(7, 6, 8), answer(95, 93, 97)],
            ],
        )
        assert (low.value, low.lower, low.upper) == (5, 4, 6)
        assert (high.value, high.lower, high.upper) == (95, 93, 97)

    def test_min_clamps_into_predicate_range(self):
        plan, [low] = _scalar(
            "SELECT MIN(x) FROM t WHERE x > 30",
            [[answer(28.9, 28.0, 29.5)], [answer(30.4, 30.1, 30.9)]],
        )
        # An estimate below the predicate floor is impossible; the gather
        # pulls it back to what the query guarantees.
        assert low.value == 30.0 and low.lower == 30.0

    def test_no_clamp_under_disjunction(self):
        plan, [low] = _scalar(
            "SELECT MIN(x) FROM t WHERE x < 20 OR x > 80",
            [[answer(5.0)], [answer(7.0)]],
        )
        assert low.value == 5.0

    def test_single_contributing_shard_is_identity(self):
        original = [answer(12.5, 11.0, 13.0), answer(77, 70, 84)]
        plan, [avg] = _scalar("SELECT AVG(x) FROM t WHERE x > 30", [original, None])
        assert (avg.value, avg.lower, avg.upper) == (12.5, 11.0, 13.0)

    def test_zero_counts_fall_back_to_unweighted_mean(self):
        plan, [avg] = _scalar(
            "SELECT AVG(x) FROM t",
            [[answer(10.0, 8.0, 12.0), answer(0)], [answer(20.0, 18.0, 22.0), answer(0)]],
        )
        assert avg.value == pytest.approx(15.0)
        assert (avg.lower, avg.upper) == (8.0, 22.0)

    def test_all_shards_empty_raises(self):
        plan = plan_query(parse_query("SELECT COUNT(*) FROM t"))
        with pytest.raises(ValueError, match="no shard"):
            gather_scalar(plan, [None, None])

    def test_group_union_with_absent_groups(self):
        plan = plan_query(parse_query("SELECT COUNT(*) FROM t GROUP BY c"))
        groups = gather_groups(
            plan,
            [
                {"a": [answer(10, 9, 11)], "b": [answer(5, 4, 6)]},
                {"a": [answer(20, 19, 21)], "c": [answer(7, 6, 8)]},
                None,  # shard without the table at all
            ],
        )
        assert sorted(groups) == ["a", "b", "c"]
        assert groups["a"][0].value == 30
        assert groups["b"][0].value == 5  # single-shard passthrough
        assert groups["c"][0].value == 7
        assert all(r[0].group == label for label, r in groups.items())


class TestShardParams:
    def test_scales_sample_and_min_points(self):
        scaled = shard_params(PairwiseHistParams(sample_size=9000, min_points=900), 4)
        assert scaled.sample_size == 2250
        assert scaled.min_points == 225

    def test_single_shard_and_none_pass_through(self):
        params = PairwiseHistParams(sample_size=None, min_points=1000)
        assert shard_params(params, 1) is params
        assert shard_params(None, 3) is None


# --------------------------------------------------------------------------- #
# Local (in-process) cluster semantics


@pytest.fixture(scope="module")
def single_node():
    service = QueryService(partition_size=PARTITION_SIZE)
    service.register_table(sensors(), params=PARAMS)
    return service


@pytest.fixture(scope="module")
def one_shard_cluster():
    cluster = ClusterQueryService(
        num_shards=1, mode="local", partition_size=PARTITION_SIZE
    )
    cluster.register_table(sensors(), params=PARAMS)
    return cluster


class TestSingleShardEqualsSingleNode:
    def test_scalar_answers_bit_identical(self, single_node, one_shard_cluster):
        for sql in QUERIES:
            a = single_node.execute_scalar(sql)
            b = one_shard_cluster.execute_scalar(sql)
            assert (a.value, a.lower, a.upper) == (b.value, b.lower, b.upper), sql

    def test_group_by_bit_identical(self, single_node, one_shard_cluster):
        sql = "SELECT AVG(x), COUNT(*) FROM sensors GROUP BY category"
        a = single_node.execute(sql)
        b = one_shard_cluster.execute(sql)
        assert sorted(a) == sorted(b)
        for label in a:
            for left, right in zip(a[label], b[label]):
                assert (left.value, left.lower, left.upper) == (
                    right.value,
                    right.lower,
                    right.upper,
                )

    def test_identity_survives_ingest(self, single_node, one_shard_cluster):
        batch = sensors(rows=300, seed=9)
        single_node.ingest("sensors", batch)
        one_shard_cluster.ingest("sensors", batch)
        for sql in QUERIES[:4]:
            a = single_node.execute_scalar(sql)
            b = one_shard_cluster.execute_scalar(sql)
            assert (a.value, a.lower, a.upper) == (b.value, b.lower, b.upper), sql


class TestLocalCluster:
    @pytest.fixture()
    def cluster(self):
        cluster = ClusterQueryService(
            num_shards=2, mode="local", partition_size=PARTITION_SIZE
        )
        cluster.register_table(sensors(), params=PARAMS)
        return cluster

    def test_rows_fan_out_and_queries_gather(self, cluster):
        entry = cluster.table("sensors")
        assert entry.registered == {0, 1}
        per_shard = [shard.service.table("sensors").num_rows for shard in cluster.shards]
        assert sum(per_shard) == 1200 and all(n > 0 for n in per_shard)
        count = cluster.execute_scalar("SELECT COUNT(*) FROM sensors")
        assert count.value == pytest.approx(1200, rel=0.01)

    def test_ingest_routes_by_hash(self, cluster):
        batch = sensors(rows=400, seed=11)
        result = cluster.ingest("sensors", batch)
        assert result.appended_rows == 400
        assert sum(result.shard_rows.values()) == 400
        assert cluster.table("sensors").rows == 1600

    def test_lazy_shard_registration_on_first_routed_rows(self):
        cluster = ClusterQueryService(
            num_shards=2, mode="local", partition_size=PARTITION_SIZE
        )
        table = sensors(rows=600, seed=21)
        owners = cluster.router.shard_of_rows(table)
        skewed = table.select_rows(np.flatnonzero(owners == 0))
        assert skewed.num_rows > 0
        cluster.register_table(skewed, params=PARAMS)
        assert cluster.table("sensors").registered == {0}
        # Queries gather over the single populated shard.
        count = cluster.execute_scalar("SELECT COUNT(*) FROM sensors")
        assert count.value == pytest.approx(skewed.num_rows, rel=0.01)
        # The first ingest whose rows hash to shard 1 registers it lazily.
        cluster.ingest("sensors", sensors(rows=400, seed=22))
        assert cluster.table("sensors").registered == {0, 1}
        total = skewed.num_rows + 400
        count = cluster.execute_scalar("SELECT COUNT(*) FROM sensors")
        assert count.value == pytest.approx(total, rel=0.01)

    def test_empty_shard_group_by_gather(self):
        """GROUP BY over a table living on a strict subset of the shards."""
        cluster = ClusterQueryService(
            num_shards=3, mode="local", partition_size=PARTITION_SIZE
        )
        table = sensors(rows=900, seed=23)
        owners = cluster.router.shard_of_rows(table)
        partial = table.select_rows(np.flatnonzero(owners != 2))
        cluster.register_table(partial, params=PARAMS)
        assert cluster.table("sensors").registered == {0, 1}
        groups = cluster.execute("SELECT COUNT(*) FROM sensors GROUP BY category")
        assert set(groups) <= {"alpha", "beta", "gamma", "delta"}
        assert "alpha" in groups
        total = sum(r[0].value for r in groups.values())
        assert total == pytest.approx(partial.num_rows, rel=0.05)

    def test_error_semantics_match_single_node(self, cluster):
        with pytest.raises(KeyError, match="no table named"):
            cluster.execute_scalar("SELECT COUNT(*) FROM nope")
        with pytest.raises(TypeError, match="needs a Table"):
            cluster.ingest("sensors", [1, 2, 3])
        with pytest.raises(ValueError, match="do not match its schema"):
            cluster.ingest(
                "sensors", Table.from_dict({"wrong": [1.0]}, name="sensors")
            )
        with pytest.raises(ValueError, match="already registered"):
            cluster.register_table(sensors())

    def test_drop_table(self, cluster):
        cluster.drop_table("sensors")
        assert "sensors" not in cluster
        for shard in cluster.shards:
            assert shard.table_names() == []

    def test_accuracy_tracks_single_node(self, cluster, single_node):
        from repro.exactdb.executor import ExactQueryEngine

        exact = ExactQueryEngine(sensors())
        for sql in QUERIES:
            truth = exact.execute_scalar(parse_query(sql))
            estimate = cluster.execute_scalar(sql)
            denominator = abs(truth) if truth != 0 else 1.0
            assert abs(estimate.value - truth) / denominator < 0.15, sql
            assert estimate.lower <= estimate.value <= estimate.upper


class TestDurableLocalCluster:
    def test_restart_recovers_catalog_and_answers(self, tmp_path):
        root = tmp_path / "cluster"
        cluster = ClusterQueryService(
            num_shards=2, mode="local", path=root, partition_size=PARTITION_SIZE
        )
        cluster.register_table(sensors(), params=PARAMS)
        cluster.ingest("sensors", sensors(rows=300, seed=31))
        expected = [
            (r.value, r.lower, r.upper)
            for r in (cluster.execute_scalar(sql) for sql in QUERIES)
        ]
        cluster.checkpoint()
        cluster.close()

        reopened = ClusterQueryService.open(root, mode="local")
        assert reopened.table_names == ["sensors"]
        assert reopened.table("sensors").registered == {0, 1}
        got = [
            (r.value, r.lower, r.upper)
            for r in (reopened.execute_scalar(sql) for sql in QUERIES)
        ]
        assert got == expected
        # The recovered cluster keeps ingesting + routing correctly.
        reopened.ingest("sensors", sensors(rows=200, seed=32))
        assert reopened.execute_scalar("SELECT COUNT(*) FROM sensors").value > 0
        reopened.close()

    def test_fresh_directory_requires_constructor(self, tmp_path):
        with pytest.raises(ValueError, match="no cluster manifest"):
            ClusterQueryService.open(tmp_path / "void", mode="local")

    def test_populated_directory_requires_open(self, tmp_path):
        root = tmp_path / "cluster"
        ClusterQueryService(num_shards=2, mode="local", path=root).close()
        with pytest.raises(ValueError, match="ClusterQueryService.open"):
            ClusterQueryService(num_shards=2, mode="local", path=root)

    def test_shard_count_is_pinned_by_the_manifest(self, tmp_path):
        root = tmp_path / "cluster"
        ClusterQueryService(num_shards=2, mode="local", path=root).close()
        with pytest.raises(ValueError, match="shard count is part of the routing"):
            ClusterQueryService.open(root, mode="local", expected_shards=3)


# --------------------------------------------------------------------------- #
# Subprocess cluster: full-process smoke + kill -9 recovery (the CI smoke job)


@pytest.mark.slow
class TestProcessClusterSmoke:
    def test_boot_ingest_query_kill_recover(self, tmp_path):
        """The 2-shard cluster smoke drill: boot, ingest, query, kill -9 a
        worker, verify the revived worker recovered everything durable."""
        root = tmp_path / "cluster"
        cluster = ClusterQueryService(
            num_shards=2,
            path=root,
            mode="process",
            partition_size=PARTITION_SIZE,
        )
        try:
            cluster.register_table(sensors(), params=PARAMS)
            cluster.ingest("sensors", sensors(rows=300, seed=41))
            cluster.checkpoint()
            cluster.ingest("sensors", sensors(rows=200, seed=42))  # WAL-only tail
            for lsn in cluster.persist():
                assert lsn >= 1
            before = [
                (r.value, r.lower, r.upper)
                for r in (cluster.execute_scalar(sql) for sql in QUERIES)
            ]

            # kill -9 one worker mid-fleet; the next query revives it and
            # the replacement recovers snapshot + WAL tail before serving.
            cluster.supervisor.kill(0)
            assert not cluster.supervisor.is_alive(0)
            after = [
                (r.value, r.lower, r.upper)
                for r in (cluster.execute_scalar(sql) for sql in QUERIES)
            ]
            assert after == before
            assert cluster.supervisor.ping(0)

            # Ingest routed to a crashed-and-restarting shard: kill again,
            # then ingest — the fan-out revives the worker and appends.
            cluster.supervisor.kill(1)
            result = cluster.ingest("sensors", sensors(rows=200, seed=43))
            assert result.appended_rows == 200
            assert cluster.supervisor.ping(1)
            count = cluster.execute_scalar("SELECT COUNT(*) FROM sensors")
            assert count.value == pytest.approx(1900, rel=0.02)
        finally:
            cluster.close()

        # Whole-cluster restart from the manifest: every shard recovers.
        reopened = ClusterQueryService.open(root, mode="process")
        try:
            assert reopened.table_names == ["sensors"]
            assert reopened.table("sensors").registered == {0, 1}
            count = reopened.execute_scalar("SELECT COUNT(*) FROM sensors")
            assert count.value == pytest.approx(1900, rel=0.02)
        finally:
            reopened.close()

    def test_commit_without_ack_is_not_double_applied(self, tmp_path):
        """The nastiest ingest window: every worker WAL-commits its slice
        and dies *before* acknowledging.  The front end must not blindly
        re-send (that would double-apply); it checks the revived worker's
        actual row count and synthesizes the acknowledgement instead."""
        root = tmp_path / "cluster"
        cluster = ClusterQueryService(
            num_shards=2,
            path=root,
            mode="process",
            partition_size=PARTITION_SIZE,
            worker_options={"crash_point": "server.ingest.before_ack"},
        )
        try:
            cluster.register_table(sensors(), params=PARAMS)
            # Replacement workers must come up unarmed or they die again.
            cluster.supervisor.crash_point = None
            result = cluster.ingest("sensors", sensors(rows=300, seed=51))
            assert result.appended_rows == 300
            assert sum(result.shard_rows.values()) == 300
            count = cluster.execute_scalar("SELECT COUNT(*) FROM sensors")
            assert count.value == pytest.approx(1500, rel=0.02)  # exactly once
            # Front-end bookkeeping agrees with each worker's durable truth.
            entry = cluster.table("sensors")
            for index, shard in enumerate(cluster.shards):
                assert shard.stat("sensors")["rows"] == entry.shard_rows[index]
        finally:
            cluster.close()

    def test_process_cluster_matches_local_cluster_exactly(self, tmp_path):
        """The wire changes nothing: subprocess shards answer identically
        to in-process shards built from the same rows and params."""
        local = ClusterQueryService(
            num_shards=2, mode="local", partition_size=PARTITION_SIZE
        )
        local.register_table(sensors(), params=PARAMS)
        process = ClusterQueryService(
            num_shards=2, mode="process", partition_size=PARTITION_SIZE
        )
        try:
            process.register_table(sensors(), params=PARAMS)
            for sql in QUERIES:
                a = local.execute_scalar(sql)
                b = process.execute_scalar(sql)
                assert (a.value, a.lower, a.upper) == (b.value, b.lower, b.upper), sql
        finally:
            process.close()
