"""Framing-consolidation pins: one helper set, byte-identical formats.

PR 5 consolidated the three binary-framing flavours (``core.serialization``
pack helpers, ``storage.codec``, the GD partition dump) onto the shared
helper set in :mod:`repro.storage.codec`.  These tests pin the on-disk
byte layouts against *independent* inline reimplementations of the legacy
framing, so a future refactor of the shared helpers cannot silently
change any format — recovery of old data directories depends on it.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from conftest import make_simple_table

from repro.core.params import PairwiseHistParams
from repro.core.serialization import (
    LazyPartitionSynopses,
    deserialize_catalog,
    deserialize_partitioned,
    serialize,
    serialize_catalog,
    serialize_partitioned,
)
from repro.gd.partitioned import PartitionedStore, dump_partition, load_partition
from repro.service.database import Database
from repro.storage import codec


# --------------------------------------------------------------------------- #
# Legacy framing, reimplemented inline (the pre-consolidation byte layouts)


def legacy_short_string(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def legacy_frame_blobs(blobs: list[bytes]) -> bytes:
    framed = [struct.pack("<I", len(blobs))]
    for blob in blobs:
        framed.append(struct.pack("<Q", len(blob)))
        framed.append(blob)
    return b"".join(framed)


def legacy_ndarray8(arr: np.ndarray) -> bytes:
    arr = np.ascontiguousarray(arr)
    header = struct.pack("<8sB", arr.dtype.str.encode("ascii"), arr.ndim)
    shape = struct.pack(f"<{arr.ndim}Q", *arr.shape)
    raw = arr.tobytes()
    return header + shape + struct.pack("<Q", len(raw)) + raw


def legacy_bool_array(mask: np.ndarray) -> bytes:
    mask = np.asarray(mask, dtype=bool)
    return struct.pack("<Q", len(mask)) + np.packbits(mask).tobytes()


# --------------------------------------------------------------------------- #
# Primitive-level pins


def test_short_string_layout_pinned():
    for text in ("", "x", "columna", "ünïcode"):
        assert codec.pack_short_string(text) == legacy_short_string(text)
        got, end = codec.unpack_short_string(
            memoryview(codec.pack_short_string(text) + b"trailer"), 0
        )
        assert got == text
        assert end == len(codec.pack_short_string(text))


def test_frame_blobs_layout_pinned():
    blobs = [b"", b"a", b"0123456789" * 7]
    assert codec.frame_blobs(blobs) == legacy_frame_blobs(blobs)
    decoded, end = codec.unframe_blobs(codec.frame_blobs(blobs) + b"!!")
    assert decoded == blobs
    assert end == len(codec.frame_blobs(blobs))


def test_ndarray8_layout_pinned():
    arrays = [
        np.arange(7, dtype=np.int64),
        np.arange(6, dtype=np.uint8).reshape(2, 3),
        np.array([], dtype=np.float64),
        np.linspace(0, 1, 5),
    ]
    for arr in arrays:
        framed = codec.pack_ndarray8(arr)
        assert framed == legacy_ndarray8(arr)
        got, end = codec.unpack_ndarray8(memoryview(framed + b"xx"), 0)
        np.testing.assert_array_equal(got, arr)
        assert got.dtype == arr.dtype and end == len(framed)


def test_bool_array_layout_pinned():
    for mask in (np.zeros(0, bool), np.array([True]), np.arange(19) % 3 == 0):
        framed = codec.pack_bool_array(mask)
        assert framed == legacy_bool_array(mask)
        got, end = codec.unpack_bool_array(memoryview(framed + b"x"), 0)
        np.testing.assert_array_equal(got, mask)
        assert end == len(framed)


# --------------------------------------------------------------------------- #
# Format-level pins (the consumers of the shared helpers)


@pytest.fixture(scope="module")
def managed_table():
    table = make_simple_table(rows=1200, seed=9, name="framed")
    database = Database(
        default_params=PairwiseHistParams.with_defaults(sample_size=1200, seed=2),
        partition_size=500,
    )
    return database.register(table)


def test_partition_dump_layout_pinned(managed_table):
    partition = managed_table.store.partitions[0]
    payload = dump_partition(partition)
    split = partition.split
    expected = [b"GDP1"]
    for arr in (
        split.bases,
        split.base_ids,
        split.deviations,
        split.deviation_bits,
        split.total_bits,
    ):
        expected.append(legacy_ndarray8(arr))
    expected.append(struct.pack("<I", len(partition._column_order)))
    for name in partition._column_order:
        expected.append(legacy_short_string(name))
        expected.append(legacy_bool_array(partition.null_masks[name]))
    assert payload == b"".join(expected)

    loaded = load_partition(
        payload, "framed", managed_table.store.schema, managed_table.store.preprocessor
    )
    assert loaded.num_rows == partition.num_rows
    assert dump_partition(loaded) == payload


def test_partitioned_synopsis_framing_pinned(managed_table):
    synopses = list(managed_table.partition_synopses)
    payload = serialize_partitioned(synopses)
    blobs = [serialize(s) for s in synopses]
    assert payload == b"PWHP" + legacy_frame_blobs(blobs)
    # PWHP round trip is the identity on the payload bytes.
    assert serialize_partitioned(deserialize_partitioned(payload)) == payload


def test_catalog_framing_pinned():
    entries = [b"alpha", b"", b"gamma" * 9]
    payload = serialize_catalog(entries)
    assert payload == b"PWHC" + legacy_frame_blobs(entries)
    assert deserialize_catalog(payload) == entries


def test_lazy_partitioned_payload_round_trips_without_decoding(managed_table):
    payload = serialize_partitioned(list(managed_table.partition_synopses))
    lazy = LazyPartitionSynopses(payload)
    assert len(lazy) == managed_table.num_partitions
    assert not lazy.hydrated
    # Re-serializing an untouched lazy sequence is the identity (no decode).
    assert serialize_partitioned(lazy) == payload
    assert not lazy.hydrated
    # First element access hydrates; the decoded synopses round-trip.
    first = lazy[0]
    assert lazy.hydrated
    assert serialize(first) == serialize(managed_table.partition_synopses[0])
    assert serialize_partitioned(list(lazy)) == payload


def test_store_append_unaffected_by_shared_framing(managed_table):
    """Appending after a dump/load cycle still works (framing is faithful)."""
    store = managed_table.store
    dumped = [dump_partition(p) for p in store.partitions]
    loaded = [
        load_partition(b, store.table_name, store.schema, store.preprocessor)
        for b in dumped
    ]
    rebuilt = PartitionedStore(
        table_name=store.table_name,
        schema=store.schema,
        preprocessor=store.preprocessor,
        partition_size=store.partition_size,
        partitions=loaded,
        _column_order=store.column_order,
        _config=store._config,
    )
    extra = make_simple_table(rows=120, seed=10, name="framed")
    affected = rebuilt.append(extra)
    assert affected
    assert rebuilt.num_rows == store.num_rows + 120
