"""Framing-consolidation pins: one helper set, byte-identical formats.

PR 5 consolidated the three binary-framing flavours (``core.serialization``
pack helpers, ``storage.codec``, the GD partition dump) onto the shared
helper set in :mod:`repro.storage.codec`.  These tests pin the on-disk
byte layouts against *independent* inline reimplementations of the legacy
framing, so a future refactor of the shared helpers cannot silently
change any format — recovery of old data directories depends on it.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from conftest import make_simple_table

from repro.core.params import PairwiseHistParams
from repro.core.serialization import (
    LazyPartitionSynopses,
    deserialize_catalog,
    deserialize_partitioned,
    serialize,
    serialize_catalog,
    serialize_partitioned,
)
from repro.gd.partitioned import PartitionedStore, dump_partition, load_partition
from repro.service import framing
from repro.service.database import Database
from repro.storage import codec


# --------------------------------------------------------------------------- #
# Legacy framing, reimplemented inline (the pre-consolidation byte layouts)


def legacy_short_string(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def legacy_frame_blobs(blobs: list[bytes]) -> bytes:
    framed = [struct.pack("<I", len(blobs))]
    for blob in blobs:
        framed.append(struct.pack("<Q", len(blob)))
        framed.append(blob)
    return b"".join(framed)


def legacy_ndarray8(arr: np.ndarray) -> bytes:
    arr = np.ascontiguousarray(arr)
    header = struct.pack("<8sB", arr.dtype.str.encode("ascii"), arr.ndim)
    shape = struct.pack(f"<{arr.ndim}Q", *arr.shape)
    raw = arr.tobytes()
    return header + shape + struct.pack("<Q", len(raw)) + raw


def legacy_bool_array(mask: np.ndarray) -> bytes:
    mask = np.asarray(mask, dtype=bool)
    return struct.pack("<Q", len(mask)) + np.packbits(mask).tobytes()


# --------------------------------------------------------------------------- #
# Primitive-level pins


def test_short_string_layout_pinned():
    for text in ("", "x", "columna", "ünïcode"):
        assert codec.pack_short_string(text) == legacy_short_string(text)
        got, end = codec.unpack_short_string(
            memoryview(codec.pack_short_string(text) + b"trailer"), 0
        )
        assert got == text
        assert end == len(codec.pack_short_string(text))


def test_frame_blobs_layout_pinned():
    blobs = [b"", b"a", b"0123456789" * 7]
    assert codec.frame_blobs(blobs) == legacy_frame_blobs(blobs)
    decoded, end = codec.unframe_blobs(codec.frame_blobs(blobs) + b"!!")
    assert decoded == blobs
    assert end == len(codec.frame_blobs(blobs))


def test_ndarray8_layout_pinned():
    arrays = [
        np.arange(7, dtype=np.int64),
        np.arange(6, dtype=np.uint8).reshape(2, 3),
        np.array([], dtype=np.float64),
        np.linspace(0, 1, 5),
    ]
    for arr in arrays:
        framed = codec.pack_ndarray8(arr)
        assert framed == legacy_ndarray8(arr)
        got, end = codec.unpack_ndarray8(memoryview(framed + b"xx"), 0)
        np.testing.assert_array_equal(got, arr)
        assert got.dtype == arr.dtype and end == len(framed)


def test_bool_array_layout_pinned():
    for mask in (np.zeros(0, bool), np.array([True]), np.arange(19) % 3 == 0):
        framed = codec.pack_bool_array(mask)
        assert framed == legacy_bool_array(mask)
        got, end = codec.unpack_bool_array(memoryview(framed + b"x"), 0)
        np.testing.assert_array_equal(got, mask)
        assert end == len(framed)


# --------------------------------------------------------------------------- #
# Format-level pins (the consumers of the shared helpers)


@pytest.fixture(scope="module")
def managed_table():
    table = make_simple_table(rows=1200, seed=9, name="framed")
    database = Database(
        default_params=PairwiseHistParams.with_defaults(sample_size=1200, seed=2),
        partition_size=500,
    )
    return database.register(table)


def test_partition_dump_layout_pinned(managed_table):
    partition = managed_table.store.partitions[0]
    payload = dump_partition(partition)
    split = partition.split
    expected = [b"GDP1"]
    for arr in (
        split.bases,
        split.base_ids,
        split.deviations,
        split.deviation_bits,
        split.total_bits,
    ):
        expected.append(legacy_ndarray8(arr))
    expected.append(struct.pack("<I", len(partition._column_order)))
    for name in partition._column_order:
        expected.append(legacy_short_string(name))
        expected.append(legacy_bool_array(partition.null_masks[name]))
    assert payload == b"".join(expected)

    loaded = load_partition(
        payload, "framed", managed_table.store.schema, managed_table.store.preprocessor
    )
    assert loaded.num_rows == partition.num_rows
    assert dump_partition(loaded) == payload


def test_partitioned_synopsis_framing_pinned(managed_table):
    synopses = list(managed_table.partition_synopses)
    payload = serialize_partitioned(synopses)
    blobs = [serialize(s) for s in synopses]
    assert payload == b"PWHP" + legacy_frame_blobs(blobs)
    # PWHP round trip is the identity on the payload bytes.
    assert serialize_partitioned(deserialize_partitioned(payload)) == payload


def test_catalog_framing_pinned():
    entries = [b"alpha", b"", b"gamma" * 9]
    payload = serialize_catalog(entries)
    assert payload == b"PWHC" + legacy_frame_blobs(entries)
    assert deserialize_catalog(payload) == entries


def test_lazy_partitioned_payload_round_trips_without_decoding(managed_table):
    payload = serialize_partitioned(list(managed_table.partition_synopses))
    lazy = LazyPartitionSynopses(payload)
    assert len(lazy) == managed_table.num_partitions
    assert not lazy.hydrated
    # Re-serializing an untouched lazy sequence is the identity (no decode).
    assert serialize_partitioned(lazy) == payload
    assert not lazy.hydrated
    # First element access hydrates; the decoded synopses round-trip.
    first = lazy[0]
    assert lazy.hydrated
    assert serialize(first) == serialize(managed_table.partition_synopses[0])
    assert serialize_partitioned(list(lazy)) == payload


def test_store_append_unaffected_by_shared_framing(managed_table):
    """Appending after a dump/load cycle still works (framing is faithful)."""
    store = managed_table.store
    dumped = [dump_partition(p) for p in store.partitions]
    loaded = [
        load_partition(b, store.table_name, store.schema, store.preprocessor)
        for b in dumped
    ]
    rebuilt = PartitionedStore(
        table_name=store.table_name,
        schema=store.schema,
        preprocessor=store.preprocessor,
        partition_size=store.partition_size,
        partitions=loaded,
        _column_order=store.column_order,
        _config=store._config,
    )
    extra = make_simple_table(rows=120, seed=10, name="framed")
    affected = rebuilt.append(extra)
    assert affected
    assert rebuilt.num_rows == store.num_rows + 120


# --------------------------------------------------------------------------- #
# Binary wire-protocol pins (repro.service.framing)
#
# Old binary clients keep their connections alive across server upgrades;
# pinning the frame layouts against inline reimplementations keeps the
# wire format stable the same way the on-disk pins above do.


def legacy_string(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


def legacy_optional_string(text) -> bytes:
    if text is None:
        return struct.pack("<I", 0xFFFFFFFF)
    return legacy_string(text)


def legacy_double(value) -> bytes:
    return struct.pack("<d", float("nan") if value is None else float(value))


def legacy_result_list(results) -> bytes:
    parts = [struct.pack("<I", len(results))]
    for result in results:
        parts.append(legacy_string(result["aggregation"]))
        parts.append(legacy_double(result["value"]))
        parts.append(legacy_double(result["lower"]))
        parts.append(legacy_double(result["upper"]))
        parts.append(legacy_optional_string(result.get("group")))
    return b"".join(parts)


def test_wire_frame_header_layout_pinned():
    assert framing.MAGIC == b"AQP1"
    assert framing.HEADER_SIZE == 13
    frame = framing.encode_frame(framing.OP_QUERY, 0x0102030405060708, b"pay")
    assert frame == struct.pack("<BQI", 2, 0x0102030405060708, 3) + b"pay"
    assert framing.decode_header(frame[:13]) == (2, 0x0102030405060708, 3)
    # The op/status numbering is part of the wire contract.
    assert (
        framing.OP_PING,
        framing.OP_QUERY,
        framing.OP_QUERY_BATCH,
        framing.OP_INGEST,
        framing.OP_JSON,
    ) == (1, 2, 3, 4, 5)
    assert (
        framing.STATUS_OK,
        framing.STATUS_ERROR,
        framing.STATUS_OVERLOADED,
    ) == (0, 1, 2)


def test_traced_frame_trailer_layout_pinned():
    """The trace trailer is frozen: flag bit on the op byte, 24 raw bytes
    *after* the payload, and ``payload_len`` counting the payload only —
    an old client that never sets the flag produces (and an old server
    that never sees it receives) byte-identical untraced frames."""
    trace_id = bytes(range(16))
    span_id = bytes(range(16, 24))
    frame = framing.encode_frame(
        framing.OP_QUERY, 0x0102030405060708, b"pay", trace=(trace_id, span_id)
    )
    assert frame == (
        struct.pack("<BQI", 2 | 0x80, 0x0102030405060708, 3)
        + b"pay"
        + trace_id
        + span_id
    )
    assert framing.TRACE_FLAG == 0x80
    assert framing.TRACE_TRAILER_SIZE == 24
    op, request_id, length = framing.decode_header(frame[: framing.HEADER_SIZE])
    assert op & framing.TRACE_FLAG
    assert op & ~framing.TRACE_FLAG == framing.OP_QUERY
    assert length == 3  # payload only — the trailer is not counted
    assert framing.decode_trace_trailer(frame[framing.HEADER_SIZE + 3 :]) == (
        trace_id,
        span_id,
    )
    # No trace, no change: untraced frames are byte-identical to the seed.
    untraced = framing.encode_frame(framing.OP_QUERY, 0x0102030405060708, b"pay")
    assert untraced == struct.pack("<BQI", 2, 0x0102030405060708, 3) + b"pay"
    # No legacy op collides with the flag bit (all < 0x80).
    for op_value in (
        framing.OP_PING,
        framing.OP_QUERY,
        framing.OP_QUERY_BATCH,
        framing.OP_INGEST,
        framing.OP_JSON,
        framing.OP_SUBSCRIBE,
        framing.OP_WAL_ACK,
    ):
        assert op_value < framing.TRACE_FLAG


def test_wire_query_payloads_pinned():
    sql = "SELECT COUNT(*) FROM stream"
    assert framing.encode_query(sql) == legacy_string(sql)
    assert framing.decode_query(framing.encode_query(sql)) == sql

    sqls = ["SELECT AVG(x) FROM t", "SELECT SUM(y) FROM t WHERE x > 1", ""]
    expected = struct.pack("<I", 3) + b"".join(legacy_string(s) for s in sqls)
    assert framing.encode_query_batch(sqls) == expected
    assert framing.decode_query_batch(expected) == sqls


def test_wire_ingest_payload_pinned():
    rows = make_simple_table(rows=40, seed=11, name="stream")
    payload = framing.encode_ingest("stream", rows, coalesce=False)
    assert payload == (
        struct.pack("<B", 0) + legacy_string("stream") + codec.encode_table(rows)
    )
    name, decoded, coalesce = framing.decode_ingest(payload)
    assert name == "stream" and coalesce is False
    assert decoded.num_rows == 40
    assert codec.encode_table(decoded) == codec.encode_table(rows)


def test_wire_result_payloads_pinned():
    scalar = {
        "results": [
            {"aggregation": "AVG(x)", "value": 1.5, "lower": 1.0, "upper": 2.0},
            {"aggregation": "COUNT(*)", "value": None, "lower": None, "upper": None},
        ]
    }
    payload = framing.encode_result(scalar)
    assert payload == struct.pack("<B", 0) + legacy_result_list(scalar["results"])
    decoded = framing.decode_result(payload)
    assert decoded == {
        "results": [
            {**scalar["results"][0], "group": None},
            {**scalar["results"][1], "group": None},
        ]
    }

    grouped = {
        "groups": {
            "alpha": [
                {
                    "aggregation": "SUM(y)",
                    "value": 3.0,
                    "lower": 2.5,
                    "upper": 3.5,
                    "group": "alpha",
                }
            ],
            "beta": [],
        }
    }
    payload = framing.encode_result(grouped)
    expected = struct.pack("<BI", 1, 2)
    for label, results in grouped["groups"].items():
        expected += legacy_string(label) + legacy_result_list(results)
    assert payload == expected
    assert framing.decode_result(payload) == grouped


def test_wire_error_and_batch_response_pinned():
    assert framing.encode_error("KeyError", "no such table") == legacy_string(
        "KeyError"
    ) + legacy_string("no such table")
    assert framing.decode_error(framing.encode_error("A", "b")) == ("A", "b")
    assert framing.OVERLOADED_ERROR_TYPE == "Overloaded"

    ok_result = {
        "results": [
            {
                "aggregation": "AVG(x)",
                "value": 1.0,
                "lower": 0.5,
                "upper": 1.5,
                "group": None,
            }
        ]
    }
    items = [
        {"ok": True, "result": ok_result},
        {"ok": False, "error_type": "ParseError", "error": "bad sql"},
    ]
    payload = framing.encode_batch_response(items)
    ok_block = framing.encode_result(ok_result)
    err_block = framing.encode_error("ParseError", "bad sql")
    assert payload == (
        struct.pack("<I", 2)
        + struct.pack("<BI", 1, len(ok_block))
        + ok_block
        + struct.pack("<BI", 0, len(err_block))
        + err_block
    )
    assert framing.decode_batch_response(payload) == items
