"""Tests for the multi-table query service: registration, routing, ingestion."""

import numpy as np
import pytest

from conftest import make_simple_table

from repro import (
    Database,
    PairwiseHistParams,
    QueryService,
    QueryServiceSystem,
    Table,
    parse_query,
)
from repro.exactdb.executor import ExactQueryEngine
from repro.workload.runner import WorkloadRunner


@pytest.fixture(scope="module")
def service():
    svc = QueryService(partition_size=2000)
    svc.register_table(
        make_simple_table(rows=5000, seed=21),
        params=PairwiseHistParams.with_defaults(sample_size=None, seed=1),
    )
    svc.register_table(
        make_simple_table(rows=3000, seed=22, name="other"),
        params=PairwiseHistParams.with_defaults(sample_size=None, seed=1),
    )
    return svc


class TestCatalog:
    def test_tables_registered(self, service):
        assert set(service.table_names) == {"simple", "other"}
        assert "simple" in service and "missing" not in service
        assert service.table("simple").num_partitions == 3

    def test_duplicate_registration_rejected(self, service):
        with pytest.raises(ValueError):
            service.register_table(make_simple_table(rows=100, seed=0))

    def test_unknown_table_query_raises(self, service):
        with pytest.raises(KeyError):
            service.execute("SELECT COUNT(x) FROM missing WHERE x > 0")

    def test_drop_table(self):
        svc = QueryService(partition_size=1000)
        svc.register_table(make_simple_table(rows=1000, seed=0))
        svc.database.drop("simple")
        assert "simple" not in svc
        with pytest.raises(KeyError):
            svc.database.drop("simple")

    def test_query_service_rejects_database_plus_kwargs(self):
        with pytest.raises(ValueError):
            QueryService(Database(), partition_size=10)


class TestRouting:
    def test_queries_route_by_table_name(self, service):
        # The two tables are different sizes, so COUNT(*) separates them.
        total_simple = service.execute_scalar("SELECT COUNT(*) FROM simple").value
        total_other = service.execute_scalar("SELECT COUNT(*) FROM other").value
        assert total_simple == pytest.approx(5000, rel=0.02)
        assert total_other == pytest.approx(3000, rel=0.02)

    def test_group_by_routes_through_service(self, service):
        results = service.execute("SELECT COUNT(x) FROM simple GROUP BY category")
        assert isinstance(results, dict)
        total = sum(r[0].value for r in results.values())
        assert total == pytest.approx(5000, rel=0.05)


class TestAccuracy:
    @pytest.mark.parametrize(
        "sql,rel",
        [
            ("SELECT COUNT(x) FROM simple WHERE x > 30", 0.05),
            ("SELECT AVG(y) FROM simple WHERE x > 20 AND x < 80", 0.05),
            ("SELECT SUM(z) FROM simple WHERE x < 70", 0.10),
            ("SELECT AVG(x) FROM simple WHERE category = 'alpha'", 0.05),
        ],
    )
    def test_partitioned_estimates_close_to_exact(self, service, sql, rel):
        exact = ExactQueryEngine(service.table("simple").store.reconstruct_rows())
        estimate = service.execute_scalar(sql)
        truth = exact.execute_scalar(parse_query(sql))
        assert estimate.value == pytest.approx(truth, rel=rel)
        assert estimate.lower <= estimate.value <= estimate.upper


class TestIngest:
    def make_service(self, rows=5000):
        svc = QueryService(partition_size=2000)
        svc.register_table(
            make_simple_table(rows=rows, seed=31),
            params=PairwiseHistParams.with_defaults(sample_size=None, seed=1),
        )
        return svc

    def test_ingest_refreshes_only_the_tail(self):
        svc = self.make_service()
        managed = svc.table("simple")
        sealed_synopses = managed.partition_synopses[:2]
        sealed_partitions = managed.store.partitions[:2]
        builds_before = managed.synopsis_builds
        outcome = svc.ingest("simple", make_simple_table(rows=1500, seed=32))
        # Only the tail partition (and any spill) was recompressed and
        # re-summarised; sealed partitions kept their exact objects.
        assert outcome.rebuilt_partitions == [2, 3]
        assert outcome.untouched_partitions == 2
        assert managed.partition_synopses[0] is sealed_synopses[0]
        assert managed.partition_synopses[1] is sealed_synopses[1]
        assert managed.store.partitions[0] is sealed_partitions[0]
        assert managed.store.partitions[1] is sealed_partitions[1]
        assert managed.synopsis_builds == builds_before + 2

    def test_ingest_swaps_the_engine_synopsis(self):
        svc = self.make_service()
        managed = svc.table("simple")
        synopsis_before = managed.engine.synopsis
        svc.ingest("simple", make_simple_table(rows=500, seed=33))
        assert managed.engine.synopsis is not synopsis_before
        assert managed.engine.synopsis.population_rows == 5500

    def test_ingest_preserves_lossless_reconstruction(self):
        svc = self.make_service(rows=3000)
        table = make_simple_table(rows=3000, seed=31)
        extra = make_simple_table(rows=2500, seed=34)
        svc.ingest("simple", extra)
        reconstructed = svc.table("simple").store.reconstruct_rows()
        full = table.concat(extra)
        for name in full.column_names:
            a, b = reconstructed.column(name), full.column(name)
            if full.schema[name].is_categorical:
                assert all(x == y or (x is None and y is None) for x, y in zip(a, b))
            else:
                np.testing.assert_allclose(
                    np.nan_to_num(a, nan=-1.0), np.nan_to_num(b, nan=-1.0)
                )

    def test_estimates_stay_within_bounds_after_ingest(self):
        svc = self.make_service()
        svc.ingest("simple", make_simple_table(rows=2500, seed=35))
        exact = ExactQueryEngine(svc.table("simple").store.reconstruct_rows())
        queries = [
            "SELECT COUNT(x) FROM simple WHERE x > 30",
            "SELECT AVG(y) FROM simple WHERE x > 20 AND x < 80",
            "SELECT COUNT(*) FROM simple",
        ]
        for sql in queries:
            estimate = svc.execute_scalar(sql)
            truth = exact.execute_scalar(parse_query(sql))
            assert estimate.value == pytest.approx(truth, rel=0.08)
            assert estimate.lower <= estimate.value <= estimate.upper

    def test_ingest_into_unknown_table_raises(self, service):
        with pytest.raises(KeyError):
            service.ingest("missing", make_simple_table(rows=10, seed=0))

    def test_ingest_rebuild_scales_bin_budget_to_whole_table(self):
        # The tail rebuild must get a partition-sized share of the table's
        # bin budget, not the full budget (which would regrow the merged
        # union grids toward num_partitions x monolithic granularity).
        svc = self.make_service()
        managed = svc.table("simple")
        svc.ingest("simple", make_simple_table(rows=2500, seed=36))
        whole_table_budget = managed.params.effective_initial_bins
        for synopsis in managed.partition_synopses:
            assert synopsis.params.effective_initial_bins < whole_table_budget


class TestWorkloadIntegration:
    def test_runner_for_service_uses_reconstructed_truth(self, service):
        runner = WorkloadRunner.for_service(service, "simple")
        assert runner.table.num_rows == service.table("simple").num_rows
        system = QueryServiceSystem(service=service, table_name="simple")
        query = parse_query("SELECT COUNT(x) FROM simple WHERE x > 50")
        summary = runner.run(system, [query])
        (record,) = summary.records
        assert record.supported
        assert record.estimate == pytest.approx(record.truth, rel=0.05)

    def test_system_fit_builds_single_table_service(self):
        table = make_simple_table(rows=2000, seed=41)
        system = QueryServiceSystem.fit(table, sample_size=None, partition_size=1000)
        assert system.construction_seconds > 0
        assert system.synopsis_bytes() > 0
        result = system.estimate(parse_query("SELECT COUNT(x) FROM simple WHERE x > 50"))
        assert result.value > 0

    def test_system_rejects_group_by(self, service):
        from repro.baselines.base import UnsupportedQueryError

        system = QueryServiceSystem(service=service, table_name="simple")
        with pytest.raises(UnsupportedQueryError):
            system.estimate(parse_query("SELECT COUNT(x) FROM simple GROUP BY category"))
