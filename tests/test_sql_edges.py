"""SQL-layer fuzz/edge tests through the service front end.

Malformed or hostile input to ``QueryService.query`` must surface as a
clean, typed error raised near the boundary (``ParseError``, ``KeyError``,
``ValueError``, ``TypeError`` with a useful message) — never as an
``AttributeError``/``IndexError`` escaping from deep inside the engine —
and degenerate-but-valid queries (reversed ranges, empty matches) must
return well-formed results rather than raise.
"""

from __future__ import annotations

import pytest

from conftest import make_simple_table

from repro import PairwiseHistParams, QueryService, Table
from repro.sql.parser import ParseError, parse_query

#: Errors the service is allowed to raise at its boundary.
CLEAN_ERRORS = (ParseError, KeyError, ValueError, TypeError)


@pytest.fixture(scope="module")
def service():
    svc = QueryService(partition_size=1000)
    svc.register_table(
        make_simple_table(rows=2000, seed=9),
        params=PairwiseHistParams.with_defaults(sample_size=None, seed=1),
    )
    return svc


class TestMalformedSql:
    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "   ",
            "SELECT",
            "SELECT FROM simple",
            "SELECT COUNT(*) simple",
            "SELECT COUNT(*) FROM",
            "SELECT COUNT(*) FROM simple WHERE",
            "SELECT COUNT(*) FROM simple WHERE x >",
            "SELECT COUNT(*) FROM simple WHERE x 5",
            "SELECT COUNT(*) FROM simple WHERE (x > 5",
            "SELECT COUNT(*) FROM simple WHERE x > 5 AND",
            "SELECT COUNT(*) FROM simple GROUP BY",
            "SELECT COUNT(*) FROM simple trailing garbage",
            "SELECT FROBNICATE(x) FROM simple",
            "SELECT AVG(*) FROM simple",
            "DROP TABLE simple",
        ],
    )
    def test_unparseable_sql_raises_parse_error(self, service, sql):
        with pytest.raises(ParseError):
            service.query(sql)

    def test_parse_error_names_the_position(self):
        with pytest.raises(ParseError, match="position"):
            parse_query("SELECT COUNT(*) FROM simple WHERE x >")


class TestUnknownNames:
    def test_unknown_table_raises_key_error_with_catalog(self, service):
        with pytest.raises(KeyError, match="missing.*simple"):
            service.query("SELECT COUNT(*) FROM missing")

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT COUNT(nope) FROM simple",
            "SELECT COUNT(*) FROM simple WHERE nope > 3",
            "SELECT COUNT(*) FROM simple GROUP BY nope",
            "SELECT AVG(x) FROM simple WHERE x > 1 AND nope < 2",
        ],
    )
    def test_unknown_column_raises_key_error(self, service, sql):
        with pytest.raises(KeyError, match="nope"):
            service.query(sql)


class TestSemanticEdges:
    def test_numeric_aggregate_over_categorical_raises(self, service):
        with pytest.raises(ValueError, match="categorical"):
            service.query("SELECT SUM(category) FROM simple")

    @pytest.mark.parametrize("op", ["<", ">", "<=", ">="])
    def test_range_predicate_on_categorical_raises(self, service, op):
        from repro.sql.ast import UnsupportedQueryError

        # UnsupportedQueryError (a ValueError) so workload runs record the
        # query as unsupported instead of aborting.
        with pytest.raises(UnsupportedQueryError, match="categorical"):
            service.query(f"SELECT COUNT(*) FROM simple WHERE category {op} 5")

    def test_runner_records_categorical_range_as_unsupported(self, service):
        from repro import QueryServiceSystem
        from repro.workload.runner import WorkloadRunner

        runner = WorkloadRunner.for_service(service, "simple")
        system = QueryServiceSystem(service=service, table_name="simple")
        queries = [
            parse_query("SELECT COUNT(x) FROM simple WHERE x > 50"),
            parse_query("SELECT COUNT(*) FROM simple WHERE category > 'm'"),
        ]
        summary = runner.run(system, queries)
        assert [r.supported for r in summary.records] == [True, False]
        concurrent = runner.run_concurrent(system, queries, num_clients=2)
        assert [r.supported for r in concurrent.summary.records] == [True, False]

    def test_execute_scalar_rejects_group_by(self, service):
        with pytest.raises(ValueError, match="GROUP BY"):
            service.query_scalar("SELECT COUNT(x) FROM simple GROUP BY category")

    def test_reversed_range_returns_empty_not_error(self, service):
        results = service.query("SELECT COUNT(x) FROM simple WHERE x > 90 AND x < 10")
        (result,) = results
        assert result.value == pytest.approx(0.0, abs=1e-6)
        assert result.lower <= result.value <= result.upper

    def test_no_matching_rows_yields_nan_average(self, service):
        import math

        (result,) = service.query("SELECT AVG(x) FROM simple WHERE x = 987654")
        assert math.isnan(result.value)

    def test_unseen_category_equality_matches_nothing(self, service):
        (result,) = service.query(
            "SELECT COUNT(*) FROM simple WHERE category = 'zzz'"
        )
        assert result.value == pytest.approx(0.0, abs=1e-6)

    def test_fuzzed_garbage_never_escapes_as_internal_error(self, service):
        import random

        rng = random.Random(1234)
        fragments = [
            "SELECT", "COUNT", "AVG", "(", ")", "*", ",", "FROM", "simple",
            "WHERE", "x", ">", "<", "=", "5", "'alpha'", "AND", "OR",
            "GROUP", "BY", "category", ";", "nope", "-3.5", "!=",
        ]
        for _ in range(300):
            sql = " ".join(
                rng.choice(fragments) for _ in range(rng.randint(1, 12))
            )
            try:
                service.query(sql)
            except CLEAN_ERRORS:
                continue  # a clean boundary error is a pass
            # Reaching here means the query parsed and executed: also fine.


class TestIngestValidation:
    """`Database.ingest` errors are clear and typed (satellite fix)."""

    def make_service(self):
        svc = QueryService(partition_size=500)
        svc.register_table(
            make_simple_table(rows=1000, seed=9),
            params=PairwiseHistParams.with_defaults(sample_size=None, seed=1),
        )
        return svc

    def test_unregistered_table_raises_key_error_naming_it(self):
        svc = self.make_service()
        with pytest.raises(KeyError, match="no table named 'missing'"):
            svc.ingest("missing", make_simple_table(rows=5, seed=0))

    def test_non_table_rows_raise_type_error(self):
        svc = self.make_service()
        with pytest.raises(TypeError, match="needs a Table"):
            svc.ingest("simple", {"x": [1.0, 2.0]})
        with pytest.raises(TypeError, match="needs a Table"):
            svc.ingest("simple", [(1.0, 2.0)])

    def test_schema_mismatch_raises_value_error_with_columns(self):
        svc = self.make_service()
        rows = Table.from_dict({"x": [1.0], "wrong": [2.0]}, name="simple")
        with pytest.raises(ValueError, match="do not match its schema"):
            svc.ingest("simple", rows)

    def test_validation_leaves_the_table_untouched(self):
        svc = self.make_service()
        before = svc.table("simple").num_rows
        with pytest.raises(ValueError):
            svc.ingest(
                "simple", Table.from_dict({"x": [1.0]}, name="simple")
            )
        assert svc.table("simple").num_rows == before

    def test_empty_ingest_is_a_clean_no_op(self):
        svc = self.make_service()
        empty = make_simple_table(rows=1, seed=0).select_rows(slice(0, 0))
        result = svc.ingest("simple", empty)
        assert result.appended_rows == 0
        assert result.rebuilt_partitions == []
