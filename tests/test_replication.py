"""Replication subsystem tests: WAL shipping, fencing, failover.

The invariants pinned here:

* ``truncate_through(retain_after_lsn=...)`` never deletes a segment a
  follower (or an in-flight reader) still needs;
* ``read_records(after_lsn)`` across segment rotation and a torn tail
  returns exactly the suffix of a fresh full scan (property test — the
  segment-skip optimisation must never hide a record);
* the new wire ops (SUBSCRIBE / WAL_ACK / WAL_BATCH / SNAPSHOT_SEED)
  round-trip and their byte layouts are frozen against independent
  inline reimplementations;
* epoch fencing: the file protocol, ``check_fence`` semantics, and the
  wire ``error_type`` a fenced worker raises;
* the primary-side hub: subscriber registry, the k-of-n semi-sync ack
  barrier, retention floors with grace eviction;
* the follower-side applier: replay is bit-identical (same commit path,
  same LSNs) and a stream gap is refused loudly;
* end-to-end (slow): replica catch-up and routing, ``kill -9`` failover
  with promotion + fencing + zero lost acks, snapshot seeding of a
  quarantined follower, and the supervisor's SIGTERM -> SIGKILL
  escalation against a wedged worker.
"""

from __future__ import annotations

import asyncio
import os
import struct
import tempfile
import time
import zlib
from pathlib import Path

import numpy as np
import pytest
from conftest import make_simple_table

from repro import ClusterQueryService, PairwiseHistParams, WriteAheadLog
from repro.cluster.shard import ProcessShard, ReplicatedShard
from repro.cluster.supervisor import ShardSupervisor
from repro.bench.harness import wait_for_replica_catchup
from repro.replication import (
    EpochRecord,
    FencedError,
    ReplicaApplier,
    ReplicationHub,
    ReplicationProtocolError,
    check_fence,
    read_epoch,
    write_epoch,
)
from repro.replication.fence import FENCED_ERROR_TYPE
from repro.service import framing
from repro.service.concurrency import ConcurrentQueryService
from repro.service.database import Database
from repro.storage.cluster import (
    ClusterLayout,
    epoch_file_name,
    replica_dir_name,
    shard_dir_name,
)
from repro.storage.durable import WAL_INGEST

PARAMS = PairwiseHistParams.with_defaults(sample_size=None, seed=1)
PARTITION_SIZE = 200


# --------------------------------------------------------------------------- #
# WAL retention floors (satellite: truncate_through(retain_after_lsn))


class TestWalRetentionFloor:
    def test_retain_after_lsn_lowers_the_truncation_point(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=48)
        for _ in range(9):
            wal.append(1, b"y" * 40)
        # A checkpoint at 8 would normally drop nearly everything; a
        # follower acked only through 3, so records 4.. must survive.
        wal.truncate_through(8, retain_after_lsn=3)
        assert [r.lsn for r in wal.read_records(after_lsn=3)] == [4, 5, 6, 7, 8, 9]
        wal.close()

    def test_segment_containing_the_floor_is_never_deleted(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=48)
        for _ in range(9):
            wal.append(1, b"y" * 40)
        removed = wal.truncate_through(9, retain_after_lsn=5)
        # Record 6 (= floor + 1) must still be readable, so its segment
        # stayed; everything strictly before it could go.
        assert [r.lsn for r in wal.read_records(after_lsn=5)] == [6, 7, 8, 9]
        assert removed  # the fully-covered prefix did get dropped
        wal.close()

    def test_floor_beyond_tail_truncates_everything(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=48)
        for _ in range(6):
            wal.append(1, b"y" * 40)
        wal.truncate_through(6, retain_after_lsn=6)
        assert list(wal.read_records()) == []
        assert wal.append(1, b"after") == 7
        wal.close()

    def test_active_reader_pins_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=48)
        for _ in range(9):
            wal.append(1, b"y" * 40)
        iterator = wal.read_records(after_lsn=2)
        first = next(iterator)
        assert first.lsn == 3
        # While the iterator is live its after_lsn (2) is a floor: the
        # checkpoint must not unlink what it has yet to read.
        wal.truncate_through(9)
        assert [r.lsn for r in iterator] == [4, 5, 6, 7, 8, 9]
        iterator.close()
        # With the reader gone the same truncation proceeds.
        wal.truncate_through(9)
        assert list(wal.read_records()) == []
        wal.close()

    def test_first_lsn_tracks_truncation(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=48)
        for _ in range(9):
            wal.append(1, b"y" * 40)
        assert wal.first_lsn() == 1
        wal.truncate_through(9, retain_after_lsn=5)
        assert wal.first_lsn() <= 6
        assert wal.first_lsn() > 1
        wal.close()


# --------------------------------------------------------------------------- #
# Property test (satellite): read_records(after_lsn) == suffix of fresh scan

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=96), min_size=1, max_size=32),
    segment_max=st.integers(min_value=32, max_value=192),
    torn_bytes=st.integers(min_value=0, max_value=24),
    extra=st.integers(min_value=0, max_value=4),
    after_numerator=st.integers(min_value=0, max_value=8),
)
def test_read_after_lsn_matches_fresh_scan(
    sizes, segment_max, torn_bytes, extra, after_numerator
):
    """Tailing from any position sees exactly the fresh-scan suffix.

    Builds a log with arbitrary segment rotation, tears the tail (crash
    mid-append), reopens, appends more — then checks that for a derived
    ``after_lsn`` the filtered iterator equals the full scan filtered in
    Python.  This is the contract the replication hub's batch collector
    and a resubscribing follower both lean on; the segment-skip fast
    path must never hide a record.
    """
    with tempfile.TemporaryDirectory() as root:
        directory = Path(root) / "wal"
        wal = WriteAheadLog(directory, segment_max_bytes=segment_max)
        for i, size in enumerate(sizes):
            wal.append(1 + (i % 3), bytes([i % 251]) * size)
        wal.close()
        if torn_bytes:
            segment = sorted(directory.glob("*.wal"))[-1]
            data = segment.read_bytes()
            segment.write_bytes(data[: max(0, len(data) - torn_bytes)])
        wal = WriteAheadLog(directory, segment_max_bytes=segment_max)
        for j in range(extra):
            wal.append(2, b"post-crash-%d" % j)
        full = [(r.lsn, r.rtype, r.payload) for r in wal.read_records()]
        assert [lsn for lsn, _, _ in full] == list(
            range(1, len(full) + 1)
        )  # contiguous chain from 1
        last = full[-1][0] if full else 0
        after_lsn = (last * after_numerator) // 8
        tail = [(r.lsn, r.rtype, r.payload) for r in wal.read_records(after_lsn=after_lsn)]
        assert tail == [rec for rec in full if rec[0] > after_lsn]
        wal.close()


# --------------------------------------------------------------------------- #
# Wire framing: replication ops round-trip + frozen byte layouts


class TestReplicationFraming:
    def test_op_codes_pinned(self):
        assert framing.OP_SUBSCRIBE == 6
        assert framing.OP_WAL_ACK == 7
        assert framing.REPL_WAL_BATCH == 1
        assert framing.REPL_SNAPSHOT_SEED == 2

    def test_subscribe_round_trip_and_layout(self):
        payload = framing.encode_subscribe(77, "shard3-r1")
        assert framing.decode_subscribe(payload) == (77, "shard3-r1")
        raw = b"shard3-r1"
        assert payload == struct.pack("<Q", 77) + struct.pack("<I", len(raw)) + raw

    def test_wal_ack_round_trip_and_layout(self):
        payload = framing.encode_wal_ack(2**40 + 5)
        assert framing.decode_wal_ack(payload) == 2**40 + 5
        assert payload == struct.pack("<Q", 2**40 + 5)

    def test_wal_batch_round_trip(self):
        records = [
            (4, 1, b"alpha" * 20),
            (5, 2, b""),
            (6, 1, b"gamma"),
        ]
        assert framing.decode_wal_batch(framing.encode_wal_batch(records)) == records

    def test_wal_batch_layout_pinned(self):
        records = [(9, 3, b"abc"), (10, 1, b"defg")]
        raw = b"".join(
            struct.pack("<QBI", lsn, rtype, len(p)) + p for lsn, rtype, p in records
        )
        expected = (
            struct.pack("<BQQII", 1, 9, 10, 2, len(raw)) + zlib.compress(raw, 1)
        )
        assert framing.encode_wal_batch(records) == expected

    def test_wal_batch_rejects_empty_and_wrong_kind(self):
        with pytest.raises(ValueError):
            framing.encode_wal_batch([])
        seed = framing.encode_snapshot_seed(1, [("snap/x", b"d")])
        with pytest.raises(ValueError):
            framing.decode_wal_batch(seed)

    def test_snapshot_seed_round_trip(self):
        files = [
            ("snapshot-000007/MANIFEST", b"m" * 100),
            ("snapshot-000007/t0.bin", bytes(range(256)) * 4),
        ]
        lsn, decoded = framing.decode_snapshot_seed(
            framing.encode_snapshot_seed(7, files)
        )
        assert lsn == 7
        assert decoded == files

    def test_snapshot_seed_layout_pinned(self):
        name, data = "snap/f", b"payload-bytes"
        compressed = zlib.compress(data, 1)
        expected = (
            struct.pack("<BQI", 2, 3, 1)
            + struct.pack("<I", len(name))
            + name.encode()
            + struct.pack("<II", len(data), len(compressed))
            + compressed
        )
        assert framing.encode_snapshot_seed(3, [(name, data)]) == expected

    def test_stream_kind_discriminator(self):
        batch = framing.encode_wal_batch([(1, 1, b"x")])
        seed = framing.encode_snapshot_seed(0, [("s/f", b"")])
        assert framing.decode_replication_kind(batch) == framing.REPL_WAL_BATCH
        assert framing.decode_replication_kind(seed) == framing.REPL_SNAPSHOT_SEED
        with pytest.raises(ValueError):
            framing.decode_replication_kind(b"")


# --------------------------------------------------------------------------- #
# Epoch fencing


class TestFencing:
    def test_missing_file_reads_as_epoch_zero(self, tmp_path):
        assert read_epoch(tmp_path / "absent.epoch") == EpochRecord(0, None)

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "shard.epoch"
        write_epoch(path, 4, primary="shard-00000-replica-01")
        assert read_epoch(path) == EpochRecord(4, "shard-00000-replica-01")
        # No temp-file litter from the atomic publish.
        assert list(tmp_path.iterdir()) == [path]

    def test_check_fence_only_rejects_older_epochs(self, tmp_path):
        path = tmp_path / "shard.epoch"
        write_epoch(path, 3, primary=shard_dir_name(0))
        check_fence(path, 3)  # current epoch: fine
        check_fence(path, 4)  # newer than the file (we wrote it): fine
        with pytest.raises(FencedError):
            check_fence(path, 2)

    def test_corrupt_epoch_file_raises(self, tmp_path):
        path = tmp_path / "shard.epoch"
        path.write_text("not-json{")
        with pytest.raises(ValueError):
            read_epoch(path)

    def test_wire_error_type_matches_exception_name(self):
        # The server encodes ``type(exc).__name__``; the client-side
        # retry logic matches on this constant.  Keep them glued.
        assert FENCED_ERROR_TYPE == FencedError.__name__


# --------------------------------------------------------------------------- #
# Primary-side hub: registry, semi-sync barrier, retention floors


class _StubWal:
    def __init__(self):
        self.last_lsn = 0


class _StubDatabase:
    def __init__(self):
        self.wal = _StubWal()
        self.retention_floor = None


class TestReplicationHub:
    def test_attach_wires_the_retention_hook(self):
        db = _StubDatabase()
        hub = ReplicationHub(db, ack_replicas=1)
        hub.attach()
        assert db.retention_floor == hub.retention_floor  # bound-method equality

    def test_replicated_lsn_is_kth_highest_ack(self):
        hub = ReplicationHub(_StubDatabase(), ack_replicas=2)
        hub.subscribe("a", 0)
        hub.subscribe("b", 0)
        hub.update_ack("a", 9)
        hub.update_ack("b", 4)
        assert hub.replicated_lsn() == 4  # 2nd highest
        hub.ack_replicas = 1
        assert hub.replicated_lsn() == 9
        hub.ack_replicas = 3  # more acks required than subscribers exist
        assert hub.replicated_lsn() == 0

    def test_acks_are_monotonic(self):
        hub = ReplicationHub(_StubDatabase(), ack_replicas=1)
        hub.subscribe("a", 0)
        hub.update_ack("a", 7)
        hub.update_ack("a", 3)  # a stale, reordered ack must not regress
        assert hub.replicated_lsn() == 7

    def test_zero_ack_replicas_is_synchronous_with_local_wal(self):
        db = _StubDatabase()
        db.wal.last_lsn = 12
        hub = ReplicationHub(db, ack_replicas=0)
        assert hub.replicated_lsn() == 12
        assert asyncio.run(hub.wait_replicated(12)) is True

    def test_resubscribe_resets_position(self):
        hub = ReplicationHub(_StubDatabase(), ack_replicas=1)
        hub.subscribe("a", 10)
        hub.disconnect("a")
        hub.subscribe("a", 2)  # came back from an older checkpoint
        snapshot = hub.subscriber_snapshot()
        assert snapshot["a"]["connected"] is True
        assert snapshot["a"]["acked_lsn"] == 2

    def test_retention_floor_is_min_over_subscribers(self):
        hub = ReplicationHub(_StubDatabase(), ack_replicas=1)
        assert hub.retention_floor() is None  # no followers: no pin
        hub.subscribe("a", 0)
        hub.subscribe("b", 0)
        hub.update_ack("a", 8)
        hub.update_ack("b", 5)
        assert hub.retention_floor() == 5

    def test_disconnected_follower_pins_until_grace_expires(self):
        hub = ReplicationHub(
            _StubDatabase(), ack_replicas=1, retention_grace_seconds=0.05
        )
        hub.subscribe("a", 0)
        hub.subscribe("b", 0)
        hub.update_ack("a", 8)
        hub.update_ack("b", 3)
        hub.disconnect("b")
        # Within the grace window the dead follower still pins the log —
        # it may reconnect and resume from its position.
        assert hub.retention_floor() == 3
        time.sleep(0.1)
        assert hub.retention_floor() == 8  # evicted; only "a" pins now
        assert "b" not in hub.subscriber_snapshot()

    def test_wait_replicated_releases_on_ack(self):
        hub = ReplicationHub(_StubDatabase(), ack_replicas=1)

        async def scenario():
            hub.subscribe("a", 0)
            waiter = asyncio.ensure_future(hub.wait_replicated(3, timeout=5.0))
            await asyncio.sleep(0.02)
            assert not waiter.done()  # barred until the ack arrives
            hub.update_ack("a", 3)
            return await waiter

        assert asyncio.run(scenario()) is True

    def test_wait_replicated_times_out_without_acks(self):
        hub = ReplicationHub(_StubDatabase(), ack_replicas=1)

        async def scenario():
            hub.subscribe("a", 0)
            return await hub.wait_replicated(1, timeout=0.05)

        assert asyncio.run(scenario()) is False


# --------------------------------------------------------------------------- #
# Follower-side applier


def _durable_service(path) -> ConcurrentQueryService:
    return ConcurrentQueryService(database=Database.open(path))


class TestReplicaApplier:
    def test_replay_is_bit_identical(self, tmp_path):
        primary = _durable_service(tmp_path / "primary")
        table = make_simple_table(rows=400, seed=7, name="sensors")
        primary.register_table(table, params=PARAMS, partition_size=PARTITION_SIZE)
        primary.ingest("sensors", make_simple_table(rows=150, seed=8, name="sensors"))

        replica = _durable_service(tmp_path / "replica")
        applier = ReplicaApplier(replica)
        shipped = list(primary.database.wal.read_records())
        for record in shipped:
            applier.apply(record.lsn, record.rtype, record.payload)
        assert applier.applied_lsn == primary.database.wal.last_lsn
        # Same commit path, same LSNs => byte-identical WAL and answers.
        queries = [
            "SELECT COUNT(*) FROM sensors",
            "SELECT AVG(x) FROM sensors WHERE y > 45",
            "SELECT SUM(z) FROM sensors WHERE x < 50",
        ]
        for sql in queries:
            assert (
                replica.execute_scalar(sql).value == primary.execute_scalar(sql).value
            )
        replayed = list(replica.database.wal.read_records())
        assert [(r.lsn, r.rtype, r.payload) for r in replayed] == [
            (r.lsn, r.rtype, r.payload) for r in shipped
        ]

    def test_stream_gap_is_refused(self, tmp_path):
        replica = _durable_service(tmp_path / "replica")
        with pytest.raises(ReplicationProtocolError, match="gap"):
            ReplicaApplier(replica).apply(5, WAL_INGEST, b"")

    def test_unknown_record_type_is_refused(self, tmp_path):
        primary = _durable_service(tmp_path / "primary")
        table = make_simple_table(rows=50, seed=1, name="t")
        primary.register_table(table, params=PARAMS, partition_size=PARTITION_SIZE)
        record = next(iter(primary.database.wal.read_records()))
        replica = _durable_service(tmp_path / "replica")
        with pytest.raises(ReplicationProtocolError, match="record type"):
            ReplicaApplier(replica).apply(record.lsn, 99, record.payload)


# --------------------------------------------------------------------------- #
# Cluster layout: replica directories + epoch files


class TestReplicaLayout:
    def test_directory_and_epoch_names(self):
        assert replica_dir_name(3, 1) == "shard-00003-replica-01"
        assert epoch_file_name(3) == "shard-00003.epoch"

    def test_ensure_creates_and_detect_counts(self, tmp_path):
        layout = ClusterLayout(tmp_path / "cluster")
        layout.ensure(2, replicas=2)
        for i in range(2):
            assert layout.shard_path(i).is_dir()
            for r in range(2):
                assert layout.replica_path(i, r).is_dir()
        assert layout.detect_replicas(2) == 2
        assert ClusterLayout(tmp_path / "cluster").detect_replicas(2) == 2

    def test_detect_replicas_zero_without_dirs(self, tmp_path):
        layout = ClusterLayout(tmp_path / "plain")
        layout.ensure(2)
        assert layout.detect_replicas(2) == 0

    def test_supervisor_argv_carries_epoch_and_acks(self, tmp_path):
        data = tmp_path / shard_dir_name(0)
        replica = tmp_path / replica_dir_name(0, 0)
        epoch = tmp_path / epoch_file_name(0)
        for d in (data, replica):
            d.mkdir()
        write_epoch(epoch, 5, primary=shard_dir_name(0))
        sup = ShardSupervisor(
            data_dirs=[data],
            replicas=1,
            replica_data_dirs=[[replica]],
            epoch_files=[epoch],
        )
        argv = sup._argv(0)
        assert "--epoch-file" in argv and str(epoch) in argv
        # The epoch is read live from the file at spawn time, so a worker
        # restarted after a promotion rejoins at the *current* epoch.
        assert argv[argv.index("--epoch") + 1] == "5"
        assert argv[argv.index("--ack-replicas") + 1] == "1"  # semi-sync default
        with pytest.raises(RuntimeError):
            sup._replica_argv(0, 0)  # primary not spawned yet: no port to follow


# --------------------------------------------------------------------------- #
# End-to-end (subprocess clusters; the CI failover-drill job runs these)


def _boot(path, *, shards=1, replicas=2, **kwargs) -> ClusterQueryService:
    return ClusterQueryService(
        num_shards=shards,
        path=path,
        mode="process",
        partition_size=PARTITION_SIZE,
        replicas=replicas,
        worker_options={"checkpoint_interval": 3600.0, **kwargs.pop("worker", {})},
        **kwargs,
    )


def _scalar(cluster, sql) -> float:
    return cluster.execute_scalar(sql).value


@pytest.mark.slow
class TestReplicationEndToEnd:
    def test_replicas_catch_up_and_serve_reads(self, tmp_path):
        table = make_simple_table(rows=600, seed=3, name="sensors")
        cluster = _boot(tmp_path / "cluster", replicas=2)
        try:
            cluster.register_table(table, params=PARAMS)
            cluster.ingest(
                "sensors", make_simple_table(rows=200, seed=4, name="sensors")
            )
            wait_for_replica_catchup(cluster)
            shard = cluster.shards[0]
            assert isinstance(shard, ReplicatedShard)
            # Both replicas durably applied everything and are eligible.
            primary_status = shard.primary.status()
            assert primary_status["role"] == "primary"
            assert len(primary_status["followers"]) == 2
            durable = primary_status["durable_lsn"]
            for slot in shard.replica_slots():
                status = shard.replicas[slot].status()
                assert status["role"] == "replica"
                assert status["applied_lsn"] == durable
            assert sorted(shard.eligible_slots()) == [0, 1]
            # Reads scatter across primary + replicas bit-identically.
            answers = {
                _scalar(cluster, "SELECT COUNT(*) FROM sensors") for _ in range(6)
            }
            assert answers == {800.0}
        finally:
            cluster.close()

    def test_semi_sync_ack_covers_the_freshest_follower(self, tmp_path):
        """K=1-of-2 semi-sync: every acked write is on >= 1 follower, and
        the freshest follower (promotion's choice) holds *all* of them."""
        table = make_simple_table(rows=300, seed=5, name="sensors")
        cluster = _boot(tmp_path / "cluster", replicas=2)
        try:
            cluster.register_table(table, params=PARAMS)
            for seed in range(6, 9):
                cluster.ingest(
                    "sensors", make_simple_table(rows=100, seed=seed, name="sensors")
                )
            shard = cluster.shards[0]
            acked = shard.primary.status()["replicated_lsn"]
            durable = shard.primary.status()["durable_lsn"]
            assert acked == durable  # every returned ack was replicated
            freshest = max(
                shard.replicas[slot].status()["applied_lsn"]
                for slot in shard.replica_slots()
            )
            assert freshest >= acked
        finally:
            cluster.close()

    def test_kill9_failover_promotes_and_fences(self, tmp_path):
        table = make_simple_table(rows=500, seed=11, name="sensors")
        root = tmp_path / "cluster"
        cluster = _boot(root, replicas=2)
        try:
            cluster.register_table(table, params=PARAMS)
            wait_for_replica_catchup(cluster)
            before = read_epoch(cluster.layout.epoch_path(0))
            assert before == EpochRecord(1, shard_dir_name(0))

            cluster.supervisor.kill(0)  # kill -9 the primary
            # The next ingest trips revival -> promotion, and its ack is
            # the new primary's (fenced-epoch) semi-sync ack.
            cluster.ingest(
                "sensors", make_simple_table(rows=100, seed=12, name="sensors")
            )
            after = read_epoch(cluster.layout.epoch_path(0))
            assert after.epoch == 2
            assert after.primary.startswith("shard-00000-replica-")
            wait_for_replica_catchup(cluster)
            assert _scalar(cluster, "SELECT COUNT(*) FROM sensors") == 600.0
            shard = cluster.shards[0]
            assert shard.primary.status()["role"] == "primary"
            assert shard.primary.status()["epoch"] == 2
            # The deposed primary's slot was reseeded as a fresh follower
            # and its pre-crash state quarantined, not merged.
            assert len(shard.replica_slots()) == 2
        finally:
            cluster.close()

    def test_reopen_after_promotion_serves_promoted_state(self, tmp_path):
        table = make_simple_table(rows=400, seed=13, name="sensors")
        root = tmp_path / "cluster"
        cluster = _boot(root, replicas=1)
        try:
            cluster.register_table(table, params=PARAMS)
            wait_for_replica_catchup(cluster)
            cluster.supervisor.kill(0)
            # Ingest routes to the primary, so it trips revival -> promotion
            # (a read could be served by the surviving replica instead).
            cluster.ingest(
                "sensors", make_simple_table(rows=100, seed=14, name="sensors")
            )
            assert read_epoch(cluster.layout.epoch_path(0)).epoch == 2
        finally:
            cluster.close()
        # Reopen with replicas autodetected from the directory listing;
        # the epoch record maps the primary role to the promoted dir.
        reopened = ClusterQueryService.open(root, mode="process")
        try:
            assert reopened.replicas == 1
            wait_for_replica_catchup(reopened)
            assert _scalar(reopened, "SELECT COUNT(*) FROM sensors") == 500.0
            reopened.ingest(
                "sensors", make_simple_table(rows=100, seed=17, name="sensors")
            )
            wait_for_replica_catchup(reopened)
            assert _scalar(reopened, "SELECT COUNT(*) FROM sensors") == 600.0
        finally:
            reopened.close()

    def test_snapshot_seed_bootstraps_a_quarantined_follower(self, tmp_path):
        table = make_simple_table(rows=500, seed=15, name="sensors")
        cluster = _boot(tmp_path / "cluster", replicas=1)
        try:
            cluster.register_table(table, params=PARAMS)
            wait_for_replica_catchup(cluster)
            # Checkpoint + truncate: the shipped history is now gone, so a
            # from-zero follower can only bootstrap via SNAPSHOT_SEED.
            cluster.checkpoint()
            shard = cluster.shards[0]
            epoch = read_epoch(cluster.layout.epoch_path(0)).epoch
            handle = cluster.supervisor.respawn_replica(0, 0, fresh=True, epoch=epoch)
            shard.attach_replica(
                0, ProcessShard(0, cluster.supervisor.host, handle.port)
            )
            wait_for_replica_catchup(cluster)
            status = shard.replicas[0].status()
            assert status["applied_lsn"] == shard.primary.status()["durable_lsn"]
            assert status["follower"]["seeds"] >= 1
            # The pre-quarantine state was moved aside, not deleted.
            quarantine = cluster.layout.replica_path(0, 0) / f"divergent-{epoch:06d}"
            assert quarantine.is_dir()
            answers = {
                _scalar(cluster, "SELECT COUNT(*) FROM sensors") for _ in range(6)
            }
            assert answers == {500.0}
        finally:
            cluster.close()

    def test_stale_replica_is_routed_around(self, tmp_path):
        """A replica lagging past max_replica_lag drops out of the read
        set; queries keep answering from the primary."""
        table = make_simple_table(rows=300, seed=16, name="sensors")
        cluster = _boot(tmp_path / "cluster", replicas=1, max_replica_lag=256)
        try:
            cluster.register_table(table, params=PARAMS)
            wait_for_replica_catchup(cluster)
            shard = cluster.shards[0]
            cluster.supervisor.kill((0, 0))  # kill -9 the only replica
            time.sleep(0.1)
            # Every read still answers (demote-and-retry on the primary).
            for _ in range(4):
                assert _scalar(cluster, "SELECT COUNT(*) FROM sensors") == 300.0
            shard._refresh_eligible()
            assert shard.eligible_slots() == []
        finally:
            cluster.close()


# --------------------------------------------------------------------------- #
# Failover drill (the CI job): concurrent load, kill -9, zero lost acks


@pytest.mark.slow
def test_failover_drill_no_acked_write_lost(tmp_path):
    """2 shards x 2 replicas under concurrent ingest + query load; kill -9
    one primary mid-stream.  Every *acknowledged* batch must survive the
    promotion, post-failover answers must be bit-identical across the
    routed read set, and the epoch must have advanced exactly once."""
    import threading

    table = make_simple_table(rows=800, seed=21, name="sensors")
    cluster = _boot(tmp_path / "cluster", shards=2, replicas=2)
    try:
        cluster.register_table(table, params=PARAMS)
        wait_for_replica_catchup(cluster)

        acked_rows = [table.num_rows]
        errors: list[BaseException] = []
        stop = threading.Event()

        def ingest_loop():
            seed = 100
            while not stop.is_set():
                batch = make_simple_table(rows=50, seed=seed, name="sensors")
                seed += 1
                try:
                    cluster.ingest("sensors", batch)
                except Exception as exc:  # pragma: no cover - drill failure
                    errors.append(exc)
                    return
                acked_rows[0] += batch.num_rows

        def query_loop():
            while not stop.is_set():
                try:
                    value = _scalar(cluster, "SELECT COUNT(*) FROM sensors")
                except Exception as exc:  # pragma: no cover - drill failure
                    errors.append(exc)
                    return
                assert value >= 800.0

        threads = [
            threading.Thread(target=ingest_loop),
            threading.Thread(target=query_loop),
        ]
        for t in threads:
            t.start()
        time.sleep(1.0)
        cluster.supervisor.kill(0)  # kill -9 shard 0's primary under load
        time.sleep(3.0)
        stop.set()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors, f"drill load failed: {errors[0]!r}"

        record = read_epoch(cluster.layout.epoch_path(0))
        assert record.epoch == 2, "shard 0 was not promoted exactly once"
        assert record.primary.startswith("shard-00000-replica-")
        assert read_epoch(cluster.layout.epoch_path(1)).epoch == 1

        # Zero lost acks: every acknowledged batch is present.
        wait_for_replica_catchup(cluster)
        total = _scalar(cluster, "SELECT COUNT(*) FROM sensors")
        assert total == float(acked_rows[0])

        # Bit-identical answers across the whole routed read set.
        for sql in (
            "SELECT COUNT(*) FROM sensors",
            "SELECT AVG(x) FROM sensors WHERE y > 45",
            "SELECT SUM(z) FROM sensors WHERE x < 50",
        ):
            assert len({_scalar(cluster, sql) for _ in range(8)}) == 1
    finally:
        cluster.close()


# --------------------------------------------------------------------------- #
# Supervisor stop escalation (satellite: wedged-worker drill)


@pytest.mark.slow
def test_stop_escalates_sigterm_to_sigkill_for_wedged_worker(tmp_path):
    """A worker that ignores SIGTERM (REPRO_HANG_ON_SIGTERM=1) must be
    SIGKILLed after the grace window — stop() always terminates."""
    sup = ShardSupervisor(
        data_dirs=[tmp_path / "shard"],
        checkpoint_interval=3600.0,
        stop_grace_timeout=1.5,
        extra_env={"REPRO_HANG_ON_SIGTERM": "1"},
    )
    sup.start()
    process = sup.handles[0].process
    assert sup.ping(0)
    started = time.perf_counter()
    sup.stop(graceful=True)
    elapsed = time.perf_counter() - started
    assert process.poll() is not None, "wedged worker survived stop()"
    assert elapsed >= 1.0, "worker exited before the grace window (not wedged?)"
    assert elapsed < 30.0, f"escalation took {elapsed:.1f}s"
    assert sup.handles == {}
