"""Fast-wire-path tests: negotiation, pipelining, admission, caches.

The contract under test (see ``repro.service.framing`` / ``wire`` /
``server``):

* the server sniffs each connection's first bytes — the binary magic
  selects the pipelined frame protocol, anything else the legacy
  JSON-lines dialect, so old clients keep working unchanged and both
  dialects answer identically;
* :class:`PipelinedClient` keeps many requests in flight on one
  connection and matches responses by request id;
* admission control sheds requests over the in-flight limit with an
  explicit ``Overloaded`` response instead of queueing without bound;
* the SQL parse cache and the synopsis-version-keyed result cache are
  invisible to callers: identical answers, invalidated by ingest.
"""

from __future__ import annotations

import asyncio

import pytest

from conftest import make_simple_table

from repro import (
    AsyncQueryService,
    ConcurrentQueryService,
    PairwiseHistParams,
    QueryServer,
    QueryService,
)
from repro.service.wire import (
    ClusterClient,
    OverloadedError,
    PipelinedClient,
    WireError,
)
from repro.sql import parser as sql_parser
from repro.sql.parser import (
    ParseError,
    clear_parse_cache,
    parse_query,
    parse_query_cached,
)


def exact_params() -> PairwiseHistParams:
    return PairwiseHistParams.with_defaults(sample_size=None, seed=1)


def run_async(coroutine):
    return asyncio.run(coroutine)


async def serve(scenario, **server_kwargs):
    """Boot a one-table server and hand ``scenario`` its address.

    ``scenario(address, server)`` may be a plain function — it runs in a
    worker thread so the blocking wire clients never stall the server's
    event loop.
    """
    async with AsyncQueryService(partition_size=600, max_workers=2) as svc:
        await svc.register_table(
            make_simple_table(rows=1200, seed=50, name="stream"),
            params=exact_params(),
        )
        async with QueryServer(svc, **server_kwargs) as server:
            return await asyncio.to_thread(scenario, server.address, server)


EXTRA_ROW = {
    "x": [1.0],
    "y": [2.0],
    "z": [3.0],
    "w": [4.0],
    "with_nulls": [None],
    "category": ["alpha"],
}


# --------------------------------------------------------------------------- #
# Protocol negotiation


class TestNegotiation:
    def test_old_json_lines_client_works_against_the_new_server(self):
        """A pre-binary client (first byte ``{``) gets correct answers."""

        def scenario(address, server):
            with ClusterClient(*address) as client:
                assert client.ping()
                assert client.tables() == ["stream"]
                payload = client.query("SELECT COUNT(*) FROM stream")
                assert payload["results"][0]["value"] == pytest.approx(
                    1200, rel=1e-9
                )
                assert client.ingest("stream", EXTRA_ROW)["appended_rows"] == 1
                after = client.query("SELECT COUNT(*) FROM stream")
                assert after["results"][0]["value"] == pytest.approx(
                    1201, rel=1e-9
                )
                # Errors still come back as clean JSON frames.
                with pytest.raises(WireError, match="ParseError"):
                    client.query("SELECT FROM")

        run_async(serve(scenario))

    def test_both_dialects_share_a_server_and_answer_identically(self):
        def scenario(address, server):
            sql = "SELECT AVG(x), SUM(y) FROM stream WHERE y > 50"
            grouped = "SELECT COUNT(x) FROM stream GROUP BY category"
            with ClusterClient(*address) as old, PipelinedClient(*address) as new:
                assert old.query(sql) == new.query(sql)
                assert old.query(grouped) == new.query(grouped)
                assert old.tables() == new.tables() == ["stream"]

        run_async(serve(scenario))


# --------------------------------------------------------------------------- #
# Binary pipelined client


class TestPipelinedClient:
    def test_roundtrip_all_ops(self):
        def scenario(address, server):
            with PipelinedClient(*address) as client:
                assert client.ping()
                assert client.tables() == ["stream"]
                assert client.stat("stream")["rows"] == 1200

                payload = client.query("SELECT AVG(x) FROM stream WHERE y > 50")
                (result,) = payload["results"]
                assert result["aggregation"] == "AVG(x)"
                assert result["lower"] <= result["value"] <= result["upper"]

                grouped = client.query(
                    "SELECT COUNT(x) FROM stream GROUP BY category"
                )
                assert set(grouped["groups"]) <= {"alpha", "beta", "gamma", "delta"}

                # Binary ingest: rows travel as the codec table format.
                batch = make_simple_table(rows=80, seed=7, name="stream")
                ingest = client.ingest("stream", batch)
                assert ingest["appended_rows"] == 80
                after = client.query("SELECT COUNT(*) FROM stream")
                assert after["results"][0]["value"] == pytest.approx(
                    1280, rel=1e-9
                )

                # Cold-path JSON ops ride OP_JSON frames: register + drop.
                side = make_simple_table(rows=400, seed=8, name="side")
                assert client.register(side, params=exact_params())["rows"] == 400
                assert sorted(client.tables()) == ["side", "stream"]
                assert client.drop("side")["dropped"]

        run_async(serve(scenario))

    def test_error_frames_raise_wire_error_not_dead_connections(self):
        def scenario(address, server):
            with PipelinedClient(*address) as client:
                with pytest.raises(WireError) as excinfo:
                    client.query("SELECT FROM")
                assert excinfo.value.error_type == "ParseError"
                assert not isinstance(excinfo.value, OverloadedError)
                with pytest.raises(WireError) as excinfo:
                    client.query("SELECT COUNT(*) FROM nope")
                assert excinfo.value.error_type == "KeyError"
                # The connection survives error frames.
                assert client.ping()

        run_async(serve(scenario))

    def test_many_requests_in_flight_resolve_to_their_own_answers(self):
        """Responses are matched by request id, not arrival order."""

        def scenario(address, server):
            sqls = [
                f"SELECT COUNT(*) FROM stream WHERE y > {threshold}"
                for threshold in range(0, 100, 5)
            ]
            with PipelinedClient(*address) as client:
                serial = {sql: client.query(sql) for sql in sqls}
                # Issue everything before reading anything; interleave an
                # error and a ping so non-query frames are in the mix too.
                futures = [(sql, client.submit_query(sql)) for sql in sqls]
                bad = client.submit_query("SELECT FROM")
                pinged = client.submit_ping()
                for sql, future in futures:
                    assert future.result(timeout=30.0) == serial[sql]
                assert pinged.result(timeout=30.0) is True
                with pytest.raises(WireError, match="ParseError"):
                    bad.result(timeout=30.0)

        run_async(serve(scenario))

    def test_query_batch_carries_per_item_outcomes(self):
        def scenario(address, server):
            good = "SELECT AVG(x) FROM stream"
            grouped = "SELECT COUNT(x) FROM stream GROUP BY category"
            with PipelinedClient(*address) as client:
                items = client.query_batch([good, "SELECT FROM", grouped])
                assert [item["ok"] for item in items] == [True, False, True]
                assert items[0]["result"] == client.query(good)
                assert items[1]["error_type"] == "ParseError"
                assert items[2]["result"] == client.query(grouped)
                assert client.query_batch([]) == []

        run_async(serve(scenario))

    def test_submit_after_close_is_a_safe_unsent_error(self):
        from repro.service.wire import UnsentRequestError

        def scenario(address, server):
            client = PipelinedClient(*address).connect()
            client.close()
            with pytest.raises(UnsentRequestError):
                client.submit_ping()

        run_async(serve(scenario))


# --------------------------------------------------------------------------- #
# Admission control


class TestAdmissionControl:
    def test_query_shed_is_an_explicit_overloaded_response(self):
        """``max_inflight_queries=0`` sheds every query on both dialects."""

        def scenario(address, server):
            with PipelinedClient(*address) as binary:
                with pytest.raises(OverloadedError):
                    binary.query("SELECT COUNT(*) FROM stream")
            with ClusterClient(*address) as old:
                response = old.request(
                    {"op": "query", "sql": "SELECT COUNT(*) FROM stream"}
                )
                assert response["ok"] is False
                assert response["error_type"] == "Overloaded"
            assert server.shed_counts["query"] >= 2
            # Ingest has its own limit: it is not collateral damage.
            with ClusterClient(*address) as old:
                assert old.ingest("stream", EXTRA_ROW)["appended_rows"] == 1

        run_async(serve(scenario, max_inflight_queries=0))

    def test_ingest_shed_leaves_queries_unaffected(self):
        def scenario(address, server):
            with PipelinedClient(*address) as client:
                batch = make_simple_table(rows=10, seed=3, name="stream")
                with pytest.raises(OverloadedError):
                    client.ingest("stream", batch)
                # JSON-op ingests classify as ingest too (parsed inline).
                with pytest.raises(OverloadedError):
                    client.ingest("stream", EXTRA_ROW)
                payload = client.query("SELECT COUNT(*) FROM stream")
                assert payload["results"][0]["value"] == pytest.approx(
                    1200, rel=1e-9
                )
            assert server.shed_counts["ingest"] >= 2
            assert server.shed_counts["query"] == 0

        run_async(serve(scenario, max_inflight_ingests=0))

    def test_overloaded_is_a_retryable_refusal(self):
        """A shed happens before any work: retrying with capacity succeeds."""

        def scenario(address, server):
            with PipelinedClient(*address) as client:
                batch = make_simple_table(rows=10, seed=4, name="stream")
                with pytest.raises(OverloadedError):
                    client.ingest("stream", batch)
                server.max_inflight_ingests = 64  # capacity returns
                assert client.ingest("stream", batch)["appended_rows"] == 10

        run_async(serve(scenario, max_inflight_ingests=0))


# --------------------------------------------------------------------------- #
# SQL parse cache


class TestParseCache:
    def setup_method(self):
        clear_parse_cache()

    def test_cached_parse_is_identical_to_a_fresh_parse(self):
        sqls = [
            "SELECT COUNT(*) FROM stream",
            "SELECT AVG(x), SUM(y) FROM stream WHERE y > 50 AND x < 3",
            "SELECT VAR(z) FROM stream WHERE (a = 1 OR b = 2) AND c >= 0.5",
            "SELECT MIN(w) FROM stream GROUP BY category",
        ]
        for sql in sqls:
            assert parse_query_cached(sql) == parse_query(sql)
            # A repeat returns the very same AST object (a cache hit).
            assert parse_query_cached(sql) is parse_query_cached(sql)

    def test_cached_and_fresh_plans_execute_identically(self):
        service = QueryService(partition_size=600)
        service.register_table(
            make_simple_table(rows=1200, seed=50, name="stream"),
            params=exact_params(),
        )
        for sql in (
            "SELECT AVG(x) FROM stream WHERE y > 50",
            "SELECT COUNT(x) FROM stream GROUP BY category",
        ):
            fresh = service.execute(parse_query(sql))  # bypasses the cache
            cached = service.execute(sql)  # parse-cache + result-cache path
            assert cached == fresh

    def test_eviction_keeps_the_cache_bounded(self):
        limit = sql_parser.PARSE_CACHE_SIZE
        for i in range(limit + 50):
            parse_query_cached(f"SELECT COUNT(*) FROM stream WHERE y > {i}")
        assert len(sql_parser._parse_cache) == limit
        # The oldest entries were evicted, the newest survive.
        assert (
            f"SELECT COUNT(*) FROM stream WHERE y > {limit + 49}"
            in sql_parser._parse_cache
        )
        assert "SELECT COUNT(*) FROM stream WHERE y > 0" not in sql_parser._parse_cache

    def test_parse_errors_are_never_cached(self):
        for _ in range(2):
            with pytest.raises(ParseError):
                parse_query_cached("SELECT FROM nowhere")
        assert len(sql_parser._parse_cache) == 0


# --------------------------------------------------------------------------- #
# Synopsis-version result cache


def make_cached_service(service_cls=QueryService, **kwargs):
    service = service_cls(partition_size=600, **kwargs)
    service.register_table(
        make_simple_table(rows=1200, seed=50, name="stream"),
        params=exact_params(),
    )
    return service


class TestResultCache:
    def test_hit_returns_the_identical_result(self):
        service = make_cached_service()
        sql = "SELECT AVG(x) FROM stream WHERE y > 50"
        first = service.execute_scalar(sql)
        second = service.execute_scalar(sql)
        assert second is first  # the exact object, hence bit-identical
        assert service.cache_stats["stream"] == {"hits": 1, "misses": 1}
        # GROUP BY results cache too, and scalar/list paths do not collide.
        grouped = "SELECT COUNT(x) FROM stream GROUP BY category"
        assert service.execute(grouped) is service.execute(grouped)

    def test_ingest_invalidates_through_the_version_key(self):
        service = make_cached_service()
        sql = "SELECT COUNT(*) FROM stream"
        before = service.execute_scalar(sql)
        assert before.value == pytest.approx(1200, rel=1e-9)
        version = service.table("stream").synopsis_version
        service.ingest("stream", make_simple_table(rows=100, seed=9, name="stream"))
        assert service.table("stream").synopsis_version > version
        after = service.execute_scalar(sql)
        assert after.value == pytest.approx(1300, rel=1e-9)
        assert service.cache_stats["stream"]["misses"] == 2

    def test_lru_bound_is_enforced(self):
        service = make_cached_service(result_cache_size=4)
        for i in range(10):
            service.execute_scalar(f"SELECT COUNT(*) FROM stream WHERE y > {i}")
        assert len(service._result_cache) == 4

    def test_drop_purges_entries_and_stats(self):
        service = make_cached_service()
        service.execute_scalar("SELECT COUNT(*) FROM stream")
        assert service._result_cache
        service.drop_table("stream")
        assert not service._result_cache
        assert "stream" not in service.cache_stats

    def test_zero_size_disables_the_cache(self):
        service = make_cached_service(result_cache_size=0)
        sql = "SELECT COUNT(*) FROM stream"
        assert service.execute_scalar(sql).value == pytest.approx(1200, rel=1e-9)
        assert service.execute_scalar(sql).value == pytest.approx(1200, rel=1e-9)
        assert not service._result_cache
        assert not service.cache_stats

    def test_concurrent_service_reuses_the_cache_under_its_read_lock(self):
        service = make_cached_service(service_cls=ConcurrentQueryService)
        sql = "SELECT AVG(y) FROM stream"
        assert service.execute_scalar(sql) is service.execute_scalar(sql)
        assert service.cache_stats["stream"]["hits"] == 1
