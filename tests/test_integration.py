"""Integration tests: the full pipeline on the paper's datasets.

These exercise the complete flow the paper describes in Fig. 2 — raw table
-> GreedyGD compression -> PairwiseHist construction -> SQL queries with
bounds -> results in the original data domain — and check aggregate error
levels in the same spirit as the evaluation (§6), at laptop scale.
"""

import numpy as np
import pytest

from repro import (
    ExactQueryEngine,
    PairwiseHistEngine,
    PairwiseHistParams,
    load_dataset,
    parse_query,
    scale_dataset,
)
from repro.baselines import DeepDBLike, PairwiseHistSystem
from repro.workload import QueryGenerator, WorkloadRunner, WorkloadSpec


class TestEndToEndAccuracy:
    @pytest.mark.parametrize("dataset", ["power", "gas", "light", "temp"])
    def test_median_error_below_five_percent(self, dataset):
        table = load_dataset(dataset, rows=6000, seed=11)
        params = PairwiseHistParams.with_defaults(sample_size=4000, seed=1)
        system = PairwiseHistSystem.fit(table, params=params)
        spec = WorkloadSpec.initial_experiments(num_queries=25, seed=11)
        queries = QueryGenerator(table, spec).generate()
        summary = WorkloadRunner(table).run(system, queries)
        assert summary.median_error_percent() < 5.0

    def test_all_seven_aggregations_on_power(self, power_engine, power_exact):
        sqls = {
            "COUNT": "SELECT COUNT(voltage) FROM power WHERE voltage > 240",
            "SUM": "SELECT SUM(global_active_power) FROM power WHERE hour < 12",
            "AVG": "SELECT AVG(global_intensity) FROM power WHERE voltage < 242",
            "MIN": "SELECT MIN(voltage) FROM power WHERE global_active_power > 1",
            "MAX": "SELECT MAX(voltage) FROM power WHERE global_active_power > 1",
            "MEDIAN": "SELECT MEDIAN(global_active_power) FROM power WHERE hour > 6",
            "VAR": "SELECT VAR(global_active_power) FROM power WHERE hour > 6",
        }
        for name, sql in sqls.items():
            estimate = power_engine.execute_scalar(sql)
            truth = power_exact.execute_scalar(parse_query(sql))
            assert np.isfinite(estimate.value), name
            relative = abs(estimate.value - truth) / max(abs(truth), 1e-9)
            limit = 0.35 if name in ("VAR",) else 0.15
            assert relative < limit, f"{name}: {estimate.value} vs {truth}"

    def test_multi_predicate_and_or_mix(self, power_engine, power_exact):
        sql = (
            "SELECT AVG(global_active_power) FROM power "
            "WHERE voltage > 238 AND voltage < 243 AND hour >= 6 OR hour < 2"
        )
        estimate = power_engine.execute_scalar(sql)
        truth = power_exact.execute_scalar(parse_query(sql))
        assert estimate.value == pytest.approx(truth, rel=0.1)

    def test_flights_dataset_with_categoricals_and_nulls(self, flights_table):
        params = PairwiseHistParams.with_defaults(sample_size=2000, seed=2)
        engine = PairwiseHistEngine.from_table(flights_table, params=params)
        exact = ExactQueryEngine(flights_table)
        sqls = [
            "SELECT COUNT(distance) FROM flights WHERE distance > 500",
            "SELECT AVG(arrival_delay) FROM flights WHERE distance > 300 AND distance < 2000",
            "SELECT COUNT(air_time) FROM flights WHERE airline = 'AA'",
        ]
        for sql in sqls:
            estimate = engine.execute_scalar(sql)
            truth = exact.execute_scalar(parse_query(sql))
            assert estimate.value == pytest.approx(truth, rel=0.2), sql


class TestCompressionIntegration:
    def test_compressed_framework_total_storage_smaller_than_raw(self, power_table):
        params = PairwiseHistParams.with_defaults(sample_size=3000, seed=1)
        engine = PairwiseHistEngine.from_table(power_table, params=params, use_compression=True)
        raw = power_table.memory_bytes()
        total = engine.store.compressed_bytes() + engine.synopsis_bytes()
        assert total < raw

    def test_with_and_without_compression_agree(self, power_table, power_exact):
        params = PairwiseHistParams.with_defaults(sample_size=3000, seed=1)
        compressed = PairwiseHistEngine.from_table(power_table, params=params, use_compression=True)
        standalone = PairwiseHistEngine.from_table(power_table, params=params, use_compression=False)
        sql = "SELECT AVG(voltage) FROM power WHERE global_active_power > 1"
        truth = power_exact.execute_scalar(parse_query(sql))
        for engine in (compressed, standalone):
            assert engine.execute_scalar(sql).value == pytest.approx(truth, rel=0.05)


class TestScaledWorkflow:
    def test_idebench_scaled_pipeline(self, power_table):
        scaled = scale_dataset(power_table, rows=12_000, seed=5, name="power_scaled")
        params = PairwiseHistParams.with_defaults(sample_size=4000, seed=5)
        system = PairwiseHistSystem.fit(scaled, params=params)
        spec = WorkloadSpec.scaled_experiments(num_queries=20, seed=5)
        queries = QueryGenerator(scaled, spec).generate()
        summary = WorkloadRunner(scaled).run(system, queries)
        assert len(summary.supported_records) == len(queries)
        assert summary.median_error_percent() < 10.0

    def test_pairwisehist_beats_deepdb_on_latency(self, power_table):
        params = PairwiseHistParams.with_defaults(sample_size=3000, seed=6)
        ph = PairwiseHistSystem.fit(power_table, params=params)
        dd = DeepDBLike.fit(power_table, sample_size=3000)
        spec = WorkloadSpec.initial_experiments(num_queries=15, seed=6)
        queries = QueryGenerator(power_table, spec).generate()
        runner = WorkloadRunner(power_table)
        ph_summary = runner.run(ph, queries)
        dd_summary = runner.run(dd, queries)
        assert ph_summary.median_latency_ms() < dd_summary.median_latency_ms()

    def test_group_by_pipeline_against_exact(self, flights_table):
        params = PairwiseHistParams.with_defaults(sample_size=2000, seed=7)
        engine = PairwiseHistEngine.from_table(flights_table, params=params)
        exact = ExactQueryEngine(flights_table)
        sql = "SELECT COUNT(distance) FROM flights WHERE distance > 200 GROUP BY airline"
        approx = engine.execute(sql)
        truth = exact.execute(parse_query(sql))
        common = set(approx) & set(truth)
        assert len(common) >= 5
        big_groups = [g for g in common if truth[g][0].value > 100]
        for group in big_groups:
            assert approx[group][0].value == pytest.approx(truth[group][0].value, rel=0.3)
