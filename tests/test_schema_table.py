"""Unit tests for the schema and columnar table substrate."""

import numpy as np
import pytest

from repro.data.schema import ColumnSchema, ColumnType, TableSchema
from repro.data.table import Table


class TestColumnSchema:
    def test_numeric_flags(self):
        col = ColumnSchema("a", ColumnType.NUMERIC)
        assert col.is_numeric and not col.is_categorical

    def test_datetime_counts_as_numeric(self):
        col = ColumnSchema("ts", ColumnType.DATETIME)
        assert col.is_numeric

    def test_categorical_flags(self):
        col = ColumnSchema("c", ColumnType.CATEGORICAL)
        assert col.is_categorical and not col.is_numeric


class TestTableSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TableSchema([ColumnSchema("a"), ColumnSchema("a")])

    def test_lookup_and_membership(self):
        schema = TableSchema([ColumnSchema("a"), ColumnSchema("b", ColumnType.CATEGORICAL)])
        assert "a" in schema
        assert "missing" not in schema
        assert schema["b"].is_categorical
        assert schema.index_of("b") == 1
        with pytest.raises(KeyError):
            schema["missing"]

    def test_name_lists(self):
        schema = TableSchema(
            [
                ColumnSchema("n1"),
                ColumnSchema("c1", ColumnType.CATEGORICAL),
                ColumnSchema("n2", ColumnType.DATETIME),
            ]
        )
        assert schema.names == ["n1", "c1", "n2"]
        assert schema.numeric_names == ["n1", "n2"]
        assert schema.categorical_names == ["c1"]

    def test_add_rejects_duplicates(self):
        schema = TableSchema([ColumnSchema("a")])
        schema.add(ColumnSchema("b"))
        assert len(schema) == 2
        with pytest.raises(ValueError):
            schema.add(ColumnSchema("a"))


class TestTableConstruction:
    def test_from_dict_infers_types(self):
        table = Table.from_dict({"num": [1.5, 2.5, 3.0], "cat": ["a", "b", "a"]})
        assert table.schema["num"].is_numeric
        assert table.schema["cat"].is_categorical
        assert table.num_rows == 3

    def test_from_dict_integer_column_has_zero_decimals(self):
        table = Table.from_dict({"count": [1, 2, 3]})
        assert table.schema["count"].decimals == 0

    def test_from_dict_float_column_gets_decimals(self):
        table = Table.from_dict({"v": [1.25, 2.5]})
        assert table.schema["v"].decimals > 0

    def test_inconsistent_lengths_rejected(self):
        schema = TableSchema([ColumnSchema("a"), ColumnSchema("b")])
        with pytest.raises(ValueError):
            Table(name="t", schema=schema, columns={"a": np.arange(3.0), "b": np.arange(4.0)})

    def test_missing_schema_column_rejected(self):
        schema = TableSchema([ColumnSchema("a"), ColumnSchema("b")])
        with pytest.raises(ValueError):
            Table(name="t", schema=schema, columns={"a": np.arange(3.0)})


class TestTableOperations:
    @pytest.fixture()
    def table(self):
        return Table.from_dict(
            {
                "x": [1.0, 2.0, np.nan, 4.0, 5.0],
                "label": ["a", None, "b", "a", "c"],
            },
            name="ops",
        )

    def test_len_and_columns(self, table):
        assert len(table) == 5
        assert table.num_columns == 2
        assert "x" in table
        assert table.column_names == ["x", "label"]

    def test_column_access_unknown_raises(self, table):
        with pytest.raises(KeyError):
            table.column("nope")

    def test_select_rows_with_mask(self, table):
        mask = np.array([True, False, True, False, False])
        subset = table.select_rows(mask)
        assert subset.num_rows == 2
        assert list(subset.column("x")) == [1.0, 3.0] or np.isnan(subset.column("x")[1])

    def test_sample_smaller_than_table(self, table):
        sampled = table.sample(3, rng=np.random.default_rng(0))
        assert sampled.num_rows == 3

    def test_sample_larger_returns_same_table(self, table):
        assert table.sample(100) is table

    def test_head(self, table):
        assert table.head(2).num_rows == 2

    def test_null_handling(self, table):
        assert table.null_mask("x").sum() == 1
        assert table.null_mask("label").sum() == 1
        assert table.null_fraction("x") == pytest.approx(0.2)

    def test_memory_bytes_positive(self, table):
        assert table.memory_bytes() > 0

    def test_concat(self, table):
        doubled = table.concat(table)
        assert doubled.num_rows == 10

    def test_concat_schema_mismatch(self, table):
        other = Table.from_dict({"y": [1.0]})
        with pytest.raises(ValueError):
            table.concat(other)

    def test_concat_all(self, table):
        tripled = Table.concat_all([table, table, table])
        assert tripled.num_rows == 15
        assert tripled.column_names == table.column_names
        assert Table.concat_all([table]) is table
        with pytest.raises(ValueError):
            Table.concat_all([])
        with pytest.raises(ValueError):
            Table.concat_all([table, Table.from_dict({"y": [1.0]})])

    def test_to_rows(self, table):
        rows = table.to_rows()
        assert len(rows) == 5
        assert len(rows[0]) == 2

    def test_describe(self, table):
        stats = table.describe()
        assert stats["x"]["min"] == 1.0
        assert stats["x"]["max"] == 5.0
        assert stats["label"]["unique"] == 3.0
