"""End-to-end crash-recovery tests for the durable storage subsystem.

The invariant under test everywhere: a database recovered from disk after
a crash answers every query *identically* to a reference database that
executed the same committed operations without ever crashing.  Crashes
are injected at the nastiest points — mid-WAL-append (torn record),
mid-snapshot (partial directory), post-snapshot/pre-truncation (replay
idempotency) — plus a real ``kill -9`` of a ``QueryServer`` subprocess.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest
from conftest import make_simple_table

from repro.core.params import PairwiseHistParams
from repro.service.concurrency import ConcurrentQueryService
from repro.service.database import Database, QueryService
from repro.storage import (
    BackgroundCheckpointer,
    DurableDatabase,
    SimulatedCrash,
    set_crash_hook,
)

QUERIES = [
    "SELECT AVG(x) FROM sensors WHERE y > 45",
    "SELECT COUNT(*) FROM sensors WHERE category = 'alpha'",
    "SELECT SUM(z) FROM sensors WHERE x < 50",
    "SELECT AVG(with_nulls) FROM sensors WHERE z > 5",
    "SELECT COUNT(*) FROM sensors WHERE x > 20 AND y < 60",
]

PARAMS = PairwiseHistParams.with_defaults(sample_size=5_000)
PARTITION_SIZE = 400


@pytest.fixture(autouse=True)
def _clear_crash_hook():
    yield
    set_crash_hook(None)


def batch(seed: int, rows: int = 300):
    return make_simple_table(rows=rows, seed=seed, name="sensors")


def answers(db) -> list[tuple]:
    service = QueryService(database=db)
    out = []
    for query in QUERIES:
        result = service.execute_scalar(query)
        out.append((result.value, result.lower, result.upper))
    return out


def reference_db(ops) -> Database:
    """Replay committed operations on a never-crashed in-memory database."""
    db = Database(default_params=PARAMS, partition_size=PARTITION_SIZE)
    for op, *args in ops:
        getattr(db, op)(*args)
    return db


def durable(tmp_path, **kwargs) -> DurableDatabase:
    kwargs.setdefault("default_params", PARAMS)
    kwargs.setdefault("partition_size", PARTITION_SIZE)
    return DurableDatabase.open(tmp_path / "data", **kwargs)


class TestRecovery:
    def test_pure_wal_replay_no_snapshot(self, tmp_path):
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.ingest("sensors", batch(1))
        expected = answers(db)
        db.close()

        recovered = durable(tmp_path)
        assert recovered.recovery_info.snapshot_lsn == 0
        assert recovered.recovery_info.replayed_records == 2
        assert answers(recovered) == expected
        ref = reference_db(
            [("register", batch(0, rows=900)), ("ingest", "sensors", batch(1))]
        )
        assert answers(recovered) == answers(ref)
        recovered.close()

    def test_snapshot_plus_tail_replay(self, tmp_path):
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.ingest("sensors", batch(1))
        db.checkpoint()
        db.ingest("sensors", batch(2))
        db.ingest("sensors", batch(3))
        expected = answers(db)
        db.close()

        recovered = durable(tmp_path)
        info = recovered.recovery_info
        assert info.snapshot_lsn == 2
        assert info.replayed_records == 2
        # Only the tail partitions touched by replay were rebuilt.
        assert 0 < info.rebuilt_partitions < recovered.table("sensors").num_partitions
        assert answers(recovered) == expected
        recovered.close()

    def test_recovered_matches_uninterrupted_reference_exactly(self, tmp_path):
        ops = [
            ("register", batch(0, rows=900)),
            ("ingest", "sensors", batch(1)),
            ("ingest", "sensors", batch(2, rows=700)),
            ("ingest", "sensors", batch(3, rows=150)),
        ]
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.ingest("sensors", batch(1))
        db.checkpoint()
        db.ingest("sensors", batch(2, rows=700))
        db.ingest("sensors", batch(3, rows=150))
        db.close()

        recovered = durable(tmp_path)
        assert answers(recovered) == answers(reference_db(ops))
        recovered.close()

    def test_multi_table_with_drop_and_reregister(self, tmp_path):
        other = make_simple_table(rows=500, seed=40, name="other")
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.register(other)
        db.checkpoint()
        db.ingest("sensors", batch(1))
        db.drop("other")
        db.register(make_simple_table(rows=350, seed=41, name="other"))
        db.ingest("other", make_simple_table(rows=120, seed=42, name="other"))
        expected = answers(db)
        expected_other = (
            QueryService(database=db).execute_scalar("SELECT AVG(x) FROM other").value
        )
        db.close()

        recovered = durable(tmp_path)
        assert sorted(recovered.table_names) == ["other", "sensors"]
        assert answers(recovered) == expected
        got = (
            QueryService(database=recovered)
            .execute_scalar("SELECT AVG(x) FROM other")
            .value
        )
        assert got == expected_other
        assert recovered.table("other").num_rows == 470
        recovered.close()

    def test_crash_mid_ingest_loses_only_the_unacknowledged_batch(self, tmp_path):
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.ingest("sensors", batch(1))
        expected = answers(db)

        def crash(point):
            if point == "wal.append.mid_write":
                raise SimulatedCrash(point)

        set_crash_hook(crash)
        with pytest.raises(SimulatedCrash):
            db.ingest("sensors", batch(2))
        set_crash_hook(None)
        db.wal.close()  # abandon the crashed process's state

        recovered = durable(tmp_path)
        assert recovered.recovery_info.torn_wal_bytes > 0
        assert recovered.table("sensors").num_rows == 1200
        assert answers(recovered) == expected
        # The recovered database ingests normally afterwards.
        recovered.ingest("sensors", batch(2))
        ref = reference_db(
            [
                ("register", batch(0, rows=900)),
                ("ingest", "sensors", batch(1)),
                ("ingest", "sensors", batch(2)),
            ]
        )
        assert answers(recovered) == answers(ref)
        recovered.close()

    def test_crash_mid_checkpoint_falls_back_to_wal(self, tmp_path):
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.ingest("sensors", batch(1))
        expected = answers(db)

        for point in ("snapshot.mid_write", "snapshot.before_publish"):
            set_crash_hook(
                lambda p, armed=point: (_ for _ in ()).throw(SimulatedCrash(p))
                if p == armed
                else None
            )
            with pytest.raises(SimulatedCrash):
                db.checkpoint()
            set_crash_hook(None)
        db.wal.close()

        recovered = durable(tmp_path)
        assert recovered.recovery_info.snapshot_lsn == 0  # no snapshot survived
        assert answers(recovered) == expected
        recovered.close()

    def test_crash_mid_incremental_checkpoint_falls_back_to_previous(self, tmp_path):
        """Crash an *incremental* checkpoint at every phase boundary — after
        the blobs, after the parts index + links, after the manifest — and
        recovery must land on the previous snapshot plus WAL tail, exactly
        matching a never-crashed reference.  The next checkpoint must then
        succeed and clean up the orphaned temp directory."""
        ops = [("register", batch(0, rows=900)), ("ingest", "sensors", batch(1))]
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.ingest("sensors", batch(1))
        db.checkpoint()  # snapshot at lsn 2: the link source
        for lsn, point in (
            (3, "snapshot.mid_write"),
            (4, "snapshot.before_manifest"),
            (5, "snapshot.before_publish"),
        ):
            db.ingest("sensors", batch(lsn))
            ops.append(("ingest", "sensors", batch(lsn)))
            expected = answers(db)
            set_crash_hook(
                lambda p, armed=point: (_ for _ in ()).throw(SimulatedCrash(p))
                if p == armed
                else None
            )
            with pytest.raises(SimulatedCrash):
                db.checkpoint()
            set_crash_hook(None)
            db.wal.close()

            recovered = durable(tmp_path)
            assert recovered.recovery_info.snapshot_lsn == 2
            assert recovered.recovery_info.replayed_records == lsn - 2
            assert answers(recovered) == expected
            assert answers(recovered) == answers(reference_db(ops))
            recovered.close()
            db = durable(tmp_path)
        # A checkpoint after all that succeeds and leaves no temp litter.
        result = db.checkpoint()
        assert not result.skipped
        snapshots = tmp_path / "data" / "snapshots"
        assert not list(snapshots.glob("tmp-*"))
        expected = answers(db)
        db.close()
        recovered = durable(tmp_path)
        assert recovered.recovery_info.snapshot_lsn == 5
        assert recovered.recovery_info.replayed_records == 0
        assert answers(recovered) == expected
        recovered.close()

    def test_v1_snapshot_recovers_and_next_checkpoint_upgrades(
        self, tmp_path, monkeypatch
    ):
        """A data dir written by the v1 (monolithic) snapshot format must
        recover under the v2 code, and the next checkpoint upgrades it to
        the blob layout without disturbing answers."""
        monkeypatch.setenv("REPRO_SNAPSHOT_FORMAT", "1")
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.ingest("sensors", batch(1))
        db.checkpoint()
        db.ingest("sensors", batch(2))
        expected = answers(db)
        db.close()
        snapshots = tmp_path / "data" / "snapshots"
        newest = sorted(p for p in snapshots.iterdir() if p.name.startswith("snap-"))[-1]
        assert (newest / "table-00000.partitions").is_file()

        monkeypatch.delenv("REPRO_SNAPSHOT_FORMAT")
        recovered = durable(tmp_path)
        assert recovered.recovery_info.snapshot_lsn == 2
        assert answers(recovered) == expected
        recovered.checkpoint()
        newest = sorted(p for p in snapshots.iterdir() if p.name.startswith("snap-"))[-1]
        assert list(newest.glob("part-*.blob"))  # upgraded to v2
        recovered.close()
        again = durable(tmp_path)
        assert again.recovery_info.snapshot_lsn == 3
        assert answers(again) == expected
        again.close()

    def test_commit_after_drop_raises_without_phantom_wal_record(self, tmp_path):
        """Committing a staged ingest against a table dropped in between
        must fail *without* logging: a phantom WAL_INGEST after the
        WAL_DROP would crash recovery outright (replay commits into a
        table that no longer exists)."""
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        staged = db.stage_ingest("sensors", batch(1))
        db.drop("sensors")
        with pytest.raises(KeyError):
            db.commit_ingest(staged)
        assert db.wal.last_lsn == 2  # register + drop, no phantom ingest
        db.close()

        recovered = durable(tmp_path)  # replay must not crash
        assert recovered.recovery_info.replayed_records == 2
        assert recovered.table_names == []
        recovered.close()

    def test_failed_inmemory_commit_rolls_back_wal(self, tmp_path, monkeypatch):
        """If the in-memory publish fails *after* the WAL append, the
        record is rolled back so recovery replays exactly the mutations
        the live run actually applied."""
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        expected = answers(db)
        staged = db.stage_ingest("sensors", batch(1))

        def boom(self, staged):
            raise RuntimeError("publish failed")

        monkeypatch.setattr(Database, "commit_ingest", boom)
        with pytest.raises(RuntimeError, match="publish failed"):
            db.commit_ingest(staged)
        monkeypatch.undo()
        assert db.wal.last_lsn == 1  # the ingest record was scrubbed
        assert answers(db) == expected  # unpublished synopses stay invisible
        db.close()

        # Recovery sees exactly the committed history: the register, not
        # the failed ingest (the scrubbed record must not be replayed).
        recovered = durable(tmp_path)
        assert recovered.recovery_info.replayed_records == 1
        assert answers(recovered) == expected
        # The recovered database ingests normally afterwards.
        recovered.ingest("sensors", batch(2))
        assert answers(recovered) == answers(
            reference_db(
                [("register", batch(0, rows=900)), ("ingest", "sensors", batch(2))]
            )
        )
        recovered.close()

    def test_crash_between_snapshot_and_truncation_is_idempotent(self, tmp_path):
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.ingest("sensors", batch(1))
        expected = answers(db)

        def crash(point):
            if point == "checkpoint.before_truncate":
                raise SimulatedCrash(point)

        set_crash_hook(crash)
        with pytest.raises(SimulatedCrash):
            db.checkpoint()
        set_crash_hook(None)
        db.wal.close()

        # The snapshot was published but the WAL still holds every record:
        # replay must skip records at or below the snapshot's LSN, and
        # repeated recoveries must keep converging to the same state.
        for _ in range(2):
            recovered = durable(tmp_path)
            assert recovered.recovery_info.snapshot_lsn == 2
            assert recovered.recovery_info.replayed_records == 0
            assert answers(recovered) == expected
            recovered.close()

    def test_corrupted_wal_record_recovers_prefix(self, tmp_path):
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.ingest("sensors", batch(1))
        after_first = answers(db)
        db.ingest("sensors", batch(2))
        db.close()

        wal_dir = tmp_path / "data" / "wal"
        segment = sorted(wal_dir.glob("*.wal"))[-1]
        data = bytearray(segment.read_bytes())
        data[-10] ^= 0xFF  # corrupt the last record's payload
        segment.write_bytes(bytes(data))

        recovered = durable(tmp_path)
        assert recovered.table("sensors").num_rows == 1200
        assert answers(recovered) == after_first
        recovered.close()

    def test_segment_truncation_after_checkpoint(self, tmp_path):
        db = durable(tmp_path, segment_max_bytes=4096)
        db.register(batch(0, rows=900))
        for seed in (1, 2, 3):
            db.ingest("sensors", batch(seed))
        assert len(db.wal.segment_paths()) > 1
        db.checkpoint()
        assert len(db.wal.segment_paths()) == 1  # everything covered
        db.ingest("sensors", batch(4))
        expected = answers(db)
        db.close()

        recovered = durable(tmp_path, segment_max_bytes=4096)
        assert recovered.recovery_info.replayed_records == 1
        assert answers(recovered) == expected
        recovered.close()

    def test_wal_corruption_below_stale_snapshot_cannot_shadow_new_commits(
        self, tmp_path
    ):
        """Crash between snapshot publish and WAL truncation, then bit-rot
        in a record *below* the snapshot's LSN: the log scan ends early,
        so recovery must restart the log past the snapshot — otherwise new
        mutations would reuse covered LSNs, the next checkpoint would sort
        below the stale snapshot, and a later restart would silently
        revert the committed data."""
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.ingest("sensors", batch(1))
        db.ingest("sensors", batch(2))

        def crash(point):
            if point == "checkpoint.before_truncate":
                raise SimulatedCrash(point)

        set_crash_hook(crash)
        with pytest.raises(SimulatedCrash):
            db.checkpoint()  # snapshot at lsn 3 published, WAL untouched
        set_crash_hook(None)
        db.wal.close()

        # Corrupt WAL record 2 (below the snapshot's checkpoint LSN 3).
        wal_dir = tmp_path / "data" / "wal"
        segment = sorted(wal_dir.glob("*.wal"))[0]
        data = bytearray(segment.read_bytes())
        data[len(data) // 2] ^= 0xFF
        segment.write_bytes(bytes(data))

        recovered = durable(tmp_path)
        assert recovered.recovery_info.snapshot_lsn == 3
        assert recovered.table("sensors").num_rows == 1500
        recovered.ingest("sensors", batch(3))  # must log at lsn > 3
        assert recovered.wal.last_lsn == 4
        recovered.checkpoint()
        expected = answers(recovered)
        recovered.close()

        again = durable(tmp_path)
        assert again.table("sensors").num_rows == 1800
        assert answers(again) == expected
        again.close()

    def test_replay_keeps_synopsis_build_metric_in_step_with_live_run(
        self, tmp_path
    ):
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.ingest("sensors", batch(1))
        db.ingest("sensors", batch(2, rows=500))
        live_builds = db.table("sensors").synopsis_builds
        db.close()
        recovered = durable(tmp_path)
        assert recovered.table("sensors").synopsis_builds == live_builds
        recovered.close()

    def test_direct_construction_refuses_populated_directory(self, tmp_path):
        """``DurableDatabase(path)`` starts with an empty catalog; on a
        directory holding state it must refuse (its first checkpoint would
        otherwise persist the empty catalog and truncate the old WAL)."""
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.close()
        with pytest.raises(ValueError, match="DurableDatabase.open"):
            DurableDatabase(tmp_path / "data")
        # After a checkpoint (WAL truncated, snapshot only) it still refuses.
        db = durable(tmp_path)
        db.checkpoint()
        db.close()
        with pytest.raises(ValueError, match="DurableDatabase.open"):
            DurableDatabase(tmp_path / "data")
        # A fresh directory is fine.
        empty = DurableDatabase(tmp_path / "fresh")
        empty.close()

    def test_checkpoint_skips_when_nothing_changed(self, tmp_path):
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        first = db.checkpoint()
        assert not first.skipped
        second = db.checkpoint()
        assert second.skipped and second.path is None
        db.ingest("sensors", batch(1))
        third = db.checkpoint()
        assert not third.skipped
        db.close()


class TestCheckpointIntegration:
    def test_background_checkpointer_writes_and_skips(self, tmp_path):
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        service = ConcurrentQueryService(database=db)
        checkpointer = BackgroundCheckpointer(service, interval_seconds=0.05)
        with checkpointer:
            deadline = time.time() + 5.0
            while checkpointer.checkpoints_written < 1 and time.time() < deadline:
                time.sleep(0.01)
            service.ingest("sensors", batch(1))
            checkpointer.trigger()
            deadline = time.time() + 5.0
            while checkpointer.checkpoints_written < 2 and time.time() < deadline:
                time.sleep(0.01)
        assert checkpointer.checkpoints_written >= 2
        assert checkpointer.last_error is None
        expected = answers(db)
        db.close()
        recovered = durable(tmp_path)
        assert recovered.recovery_info.snapshot_lsn >= 2
        assert answers(recovered) == expected
        recovered.close()

    def test_checkpoint_during_concurrent_traffic(self, tmp_path):
        import threading

        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        service = ConcurrentQueryService(database=db)
        stop = threading.Event()
        errors: list[Exception] = []

        def reader():
            while not stop.is_set():
                try:
                    service.execute_scalar(QUERIES[0])
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        def writer():
            seed = 100
            while not stop.is_set():
                try:
                    service.ingest("sensors", batch(seed, rows=60))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return
                seed += 1

        threads = [threading.Thread(target=reader) for _ in range(2)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        try:
            results = [service.checkpoint() for _ in range(3)]
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors
        assert any(not r.skipped for r in results)
        expected = answers(db)
        db.close()
        recovered = durable(tmp_path)
        assert answers(recovered) == expected
        recovered.close()

    def test_restarted_checkpointer_waits_full_interval(self, tmp_path):
        """stop()/trigger() leave the wake event set; a restarted
        checkpointer must not consume that stale flag and fire
        immediately — it waits its full interval again."""
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        checkpointer = BackgroundCheckpointer(db, interval_seconds=30.0)
        checkpointer.start()
        checkpointer.trigger()
        deadline = time.time() + 5.0
        while checkpointer.checkpoints_written < 1 and time.time() < deadline:
            time.sleep(0.01)
        assert checkpointer.checkpoints_written == 1
        checkpointer.stop(final_checkpoint=False)

        db.ingest("sensors", batch(1))  # give a restart something to write
        checkpointer.start()
        time.sleep(0.3)
        total = checkpointer.checkpoints_written + checkpointer.checkpoints_skipped
        assert total == 1  # nothing fired: the stale wake flag was cleared
        checkpointer.stop(final_checkpoint=False)
        db.close()

    def test_stop_reports_final_checkpoint_result(self, tmp_path):
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        db.ingest("sensors", batch(1))
        checkpointer = BackgroundCheckpointer(db, interval_seconds=30.0).start()
        result = checkpointer.stop()
        assert result is not None and not result.skipped
        assert checkpointer.last_error is None
        # Stopping a checkpointer that is not running returns None.
        assert checkpointer.stop() is None
        db.close()

    def test_stop_surfaces_failed_final_checkpoint(self):
        class Boom:
            def checkpoint(self):
                raise RuntimeError("disk full")

        checkpointer = BackgroundCheckpointer(Boom(), interval_seconds=30.0).start()
        assert checkpointer.stop() is None
        assert isinstance(checkpointer.last_error, RuntimeError)

    def test_plain_service_reports_missing_durability(self):
        service = QueryService(default_params=PARAMS)
        with pytest.raises(ValueError, match="durable"):
            service.checkpoint()
        with pytest.raises(ValueError, match="durable"):
            service.persist()

    def test_persist_returns_last_lsn(self, tmp_path):
        db = durable(tmp_path)
        db.register(batch(0, rows=900))
        service = QueryService(database=db)
        assert service.persist() == 1
        db.ingest("sensors", batch(1))
        assert service.persist() == 2
        db.close()


# --------------------------------------------------------------------------- #
# Full-process server kill tests


def _repo_src() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _start_server(data_dir, crash_point: str | None = None):
    env = dict(
        os.environ,
        PYTHONPATH=_repo_src(),
        PYTHONUNBUFFERED="1",
    )
    if crash_point:
        env["REPRO_CRASH_POINT"] = crash_point
    else:
        env.pop("REPRO_CRASH_POINT", None)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--data-dir",
            str(data_dir),
            "--port",
            "0",
            "--checkpoint-interval",
            "600",
            "--partition-size",
            "300",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    port = None
    for line in proc.stdout:
        match = re.search(r"listening on [\d.]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        raise RuntimeError("server never reported its port")
    return proc, port


def _client_run(port, coroutine_factory):
    from repro.service.server import AsyncQueryClient

    async def runner():
        async with AsyncQueryClient("127.0.0.1", port) as client:
            return await coroutine_factory(client)

    return asyncio.run(runner())


def _rows_payload(seed: int, rows: int = 250) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "x": rng.uniform(0, 100, rows).tolist(),
        "y": rng.normal(50, 10, rows).tolist(),
    }


_SQL = "SELECT AVG(x) FROM t WHERE y > 45"


class TestServerKillRecovery:
    def test_kill_dash_nine_and_restart_recovers_identically(self, tmp_path):
        data_dir = tmp_path / "server-data"
        proc, port = _start_server(data_dir)
        try:

            async def setup(client):
                await client.request(
                    {
                        "op": "register",
                        "table": "t",
                        "rows": _rows_payload(0, rows=700),
                        "partition_size": 300,
                    }
                )
                checkpoint = await client.request({"op": "checkpoint"})
                assert checkpoint["ok"] and not checkpoint["result"]["skipped"]
                await client.ingest("t", _rows_payload(1))
                persisted = await client.request({"op": "persist"})
                assert persisted["ok"]
                return await client.query(_SQL)

            before = _client_run(port, setup)
        finally:
            proc.kill()
            proc.wait(timeout=30)

        proc, port = _start_server(data_dir)
        try:
            after = _client_run(port, lambda client: client.query(_SQL))
            assert after == before
            tables = _client_run(
                port, lambda client: client.request({"op": "tables"})
            )
            assert tables["result"]["tables"] == ["t"]
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0

    @pytest.mark.slow
    def test_kill_between_link_and_manifest_recovers(self, tmp_path):
        """kill -9 an incremental checkpoint after the sealed blobs were
        hard-linked into the temp dir but before the manifest was written:
        the unpublished temp dir must not confuse recovery, and the next
        checkpoint succeeds."""
        data_dir = tmp_path / "server-data"
        proc, port = _start_server(data_dir)
        try:

            async def setup(client):
                await client.request(
                    {
                        "op": "register",
                        "table": "t",
                        "rows": _rows_payload(0, rows=700),
                        "partition_size": 300,
                    }
                )
                checkpoint = await client.request({"op": "checkpoint"})
                assert checkpoint["ok"] and not checkpoint["result"]["skipped"]
                await client.ingest("t", _rows_payload(1))
                persisted = await client.request({"op": "persist"})
                assert persisted["ok"]
                return await client.query(_SQL)

            before = _client_run(port, setup)
        finally:
            proc.kill()
            proc.wait(timeout=30)

        # Restart armed to die between the blob links and the manifest.
        proc, port = _start_server(data_dir, crash_point="snapshot.before_manifest")
        try:

            async def doomed(client):
                with pytest.raises(
                    (RuntimeError, ConnectionError, OSError, EOFError)
                ):
                    await client.request({"op": "checkpoint"})

            _client_run(port, doomed)
            assert proc.wait(timeout=30) != 0  # died at the crash point
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        proc, port = _start_server(data_dir)
        try:
            after = _client_run(port, lambda client: client.query(_SQL))
            assert after == before
            checkpoint = _client_run(
                port, lambda client: client.request({"op": "checkpoint"})
            )
            assert checkpoint["ok"] and not checkpoint["result"]["skipped"]
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0

    @pytest.mark.slow
    def test_kill_mid_ingest_recovers_to_last_acknowledged_state(self, tmp_path):
        data_dir = tmp_path / "server-data"
        proc, port = _start_server(data_dir)
        try:

            async def setup(client):
                await client.request(
                    {
                        "op": "register",
                        "table": "t",
                        "rows": _rows_payload(0, rows=700),
                        "partition_size": 300,
                    }
                )
                await client.ingest("t", _rows_payload(1))
                return await client.query(_SQL)

            before = _client_run(port, setup)
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0

        # Restart armed to die halfway through the next ingest's WAL append
        # (a genuine torn record on disk), then ingest into it.
        proc, port = _start_server(data_dir, crash_point="wal.append.mid_write")
        try:

            async def doomed(client):
                with pytest.raises((RuntimeError, ConnectionError, OSError)):
                    await client.ingest("t", _rows_payload(2))

            _client_run(port, doomed)
            assert proc.wait(timeout=30) != 0  # died at the crash point
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        proc, port = _start_server(data_dir)
        try:
            after = _client_run(port, lambda client: client.query(_SQL))
            assert after == before
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
