"""Observability layer tests: registry, tracing, exposition, wire ops.

What is pinned here:

* the metrics registry — counter/gauge/histogram semantics, label
  matching, the ``REPRO_OBS`` kill switch, snapshot shape, and
  ``merge_snapshot``'s sum-counters / last-write-gauges contract (the
  cluster fan-out depends on it);
* tracing — span nesting through ``contextvars``, the ``propagate``
  marking of client-supplied traces, the ring buffer, and the
  threshold-gated slow-query log;
* the Prometheus text exposition (``/metrics`` over stdlib
  ``http.server``) and its content type;
* the ``metrics`` and ``trace`` wire ops in *both* dialects, and the
  byte-compat regression pin for the pre-observability ``status`` payload
  (shed counts and cache stats keep their exact shapes);
* cluster-wide behaviour: the merged metrics fan-out with
  ``shard``/``role`` labels, the cross-process span tree of a traced
  scatter query, the cluster ``status`` now carrying merged worker cache
  stats (the bug this PR fixes), and the kill-one-replica drill in which
  the primary's ack-lag gauge grows while the replica is dead and
  recovers after a respawn.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.request

import pytest
from conftest import make_simple_table

from repro import (
    AsyncQueryService,
    ClusterQueryService,
    PairwiseHistParams,
    QueryServer,
)
from repro.cluster.shard import ProcessShard, ReplicatedShard
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.obs.exposition import CONTENT_TYPE, MetricsHTTPServer, render_prometheus
from repro.obs.metrics import MetricsRegistry, merge_snapshot
from repro.service.wire import ClusterClient, PipelinedClient

PARAMS = PairwiseHistParams.with_defaults(sample_size=None, seed=1)


# --------------------------------------------------------------------------- #
# Registry


class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("c_total", "help text", labelnames=("kind",))
        c.inc(kind="query")
        c.inc(2.0, kind="query")
        c.inc(kind="ingest")
        assert c.value(kind="query") == 3.0
        assert c.value(kind="ingest") == 1.0
        with pytest.raises(ValueError):
            c.inc(-1.0, kind="query")

        g = reg.gauge("g")
        g.set(5.0)
        g.add(-2.0)
        assert g.value() == 3.0

        h = reg.histogram("h_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        snap = reg.snapshot()
        series = snap["h_seconds"]["series"][0]
        assert series["buckets"] == [0.1, 1.0]
        assert series["counts"] == [1, 1, 1]  # one per bucket + overflow
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(2.55)

    def test_labels_must_match_declaration(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            c.inc()  # missing label
        with pytest.raises(ValueError):
            c.inc(kind="x", extra="y")

    def test_registration_is_idempotent_but_kind_conflicts_raise(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter("m") is reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_disabled_registry_drops_writes_but_stays_queryable(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c_total")
        c.inc()
        assert c.value() == 0.0
        assert reg.snapshot()["c_total"]["series"] == [{"labels": {}, "value": 0.0}]

    def test_global_kill_switch_gates_metrics_and_spans(self):
        assert obs_metrics.obs_enabled()  # tests run with obs on
        c = obs_metrics.counter("test_kill_switch_total")
        try:
            obs_metrics.set_enabled(False)
            c.inc()
            assert c.value() == 0.0
            with tracing.root_span("query") as span:
                assert span is None  # spans vanish entirely when off
        finally:
            obs_metrics.set_enabled(True)
        c.inc()
        assert c.value() == 1.0

    def test_collectors_run_before_snapshot_and_die_with_their_owner(self):
        reg = MetricsRegistry(enabled=True)
        g = reg.gauge("lag")

        class Owner:
            def collect(self):
                g.set(42.0)

        owner = Owner()
        reg.add_collector(owner.collect)
        snap = reg.snapshot()
        assert snap["lag"]["series"][0]["value"] == 42.0
        g.set(0.0)
        del owner  # WeakMethod: the dead collector must be pruned silently
        assert reg.snapshot()["lag"]["series"][0]["value"] == 0.0

    def test_merge_snapshot_sums_counters_and_overwrites_gauges(self):
        def worker_snapshot(n):
            reg = MetricsRegistry(enabled=True)
            reg.counter("ops_total", labelnames=("kind",)).inc(n, kind="q")
            reg.gauge("level").set(n)
            h = reg.histogram("lat", buckets=(1.0,))
            h.observe(0.5)
            return reg.snapshot()

        merged: dict = {}
        merge_snapshot(merged, worker_snapshot(1), {"shard": "00000"})
        merge_snapshot(merged, worker_snapshot(2), {"shard": "00001"})
        series = merged["ops_total"]["series"]
        assert {s["labels"]["shard"]: s["value"] for s in series} == {
            "00000": 1.0,
            "00001": 2.0,
        }
        # Same labels twice: counters sum, gauges last-write, hist cells add.
        merge_snapshot(merged, worker_snapshot(5), {"shard": "00001"})
        by_shard = {s["labels"]["shard"]: s for s in merged["ops_total"]["series"]}
        assert by_shard["00001"]["value"] == 7.0
        gauges = {s["labels"]["shard"]: s["value"] for s in merged["level"]["series"]}
        assert gauges["00001"] == 5.0
        hist = {
            s["labels"]["shard"]: s for s in merged["lat"]["series"]
        }["00001"]
        assert hist["count"] == 2 and hist["counts"] == [2, 0]


# --------------------------------------------------------------------------- #
# Tracing


class TestTracing:
    def test_child_spans_nest_and_land_in_the_ring_buffer(self):
        with tracing.root_span("query", attrs={"sql": "SELECT 1"}) as root:
            assert tracing.current_span() is root
            assert root.root and not root.propagate  # server-allocated ids
            with tracing.child_span("parse") as parse:
                assert parse.trace_id == root.trace_id
                assert parse.parent_id == root.span_id
            with tracing.child_span("execute"):
                pass
        assert tracing.current_span() is None
        spans = tracing.spans_for(root.trace_id)
        assert [s["name"] for s in spans] == ["parse", "execute", "query"]
        assert all(s["duration"] is not None for s in spans)
        by_name = {s["name"]: s for s in spans}
        assert by_name["query"]["parent_id"] is None
        assert by_name["parse"]["parent_id"] == root.span_id

    def test_client_supplied_trace_is_marked_for_wire_propagation(self):
        tid, sid = tracing.new_trace_id(), tracing.new_span_id()
        with tracing.root_span("query", trace_id=tid, parent_id=sid) as root:
            assert root.trace_id == tid and root.parent_id == sid
            assert root.propagate
            with tracing.child_span("scatter") as child:
                assert child.propagate  # inherited by the whole subtree
        assert len(tid) == 2 * tracing.TRACE_ID_BYTES
        assert len(root.span_id) == 2 * tracing.SPAN_ID_BYTES

    def test_child_span_without_a_parent_is_a_noop(self):
        with tracing.child_span("orphan") as span:
            assert span is None

    def test_slow_watch_synthesises_a_root_span_only_when_slow(self, capsys):
        tracer = tracing.TRACER
        previous = tracer.slow_threshold_seconds
        try:
            # No threshold: the watch is the shared no-op context.
            tracer.slow_threshold_seconds = None
            with tracing.slow_watch("query") as span:
                assert span is None
            # Generous threshold: a fast request records nothing.
            tracer.slow_threshold_seconds = 10.0
            before = len(tracer._finished)
            with tracing.slow_watch("query", lambda: {"sql": "fast"}):
                pass
            assert len(tracer._finished) == before
            # Zero threshold: a completed root span is synthesised
            # post-hoc, lands in the ring, and hits the slow-query log.
            tracer.slow_threshold_seconds = 0.0
            with tracing.slow_watch("query", lambda: {"sql": "slow"}):
                time.sleep(0.001)
        finally:
            tracer.slow_threshold_seconds = previous
        lines = [
            json.loads(line)
            for line in capsys.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        slow = [l for l in lines if l.get("event") == "slow_query"]
        assert slow and slow[-1]["attrs"] == {"sql": "slow"}
        spans = tracing.spans_for(slow[-1]["trace_id"])
        assert len(spans) == 1
        assert spans[0]["name"] == "query"
        assert spans[0]["parent_id"] is None
        assert spans[0]["duration"] >= 0.001

    def test_slow_query_log_fires_on_threshold(self, capsys):
        tracer = tracing.TRACER
        previous = tracer.slow_threshold_seconds
        tracer.slow_threshold_seconds = 0.0  # everything is "slow"
        try:
            with tracing.root_span("query", attrs={"sql": "SELECT 1"}) as root:
                pass
        finally:
            tracer.slow_threshold_seconds = previous
        lines = [
            json.loads(line)
            for line in capsys.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        slow = [l for l in lines if l.get("event") == "slow_query"]
        assert slow and slow[-1]["trace_id"] == root.trace_id
        assert slow[-1]["component"] == "slow_query"
        assert slow[-1]["duration_seconds"] >= 0.0


# --------------------------------------------------------------------------- #
# Structured logging


class TestJsonLog:
    def test_log_lines_are_json_with_component_and_level(self, capsys):
        logger = obs_log.get_logger("test_component")
        logger.warning("something_happened", detail=7)
        line = capsys.readouterr().err.strip().splitlines()[-1]
        entry = json.loads(line)
        assert entry["component"] == "test_component"
        assert entry["level"] == "warning"
        assert entry["event"] == "something_happened"
        assert entry["detail"] == 7
        assert "ts" in entry

    def test_level_threshold_filters(self, capsys):
        logger = obs_log.get_logger("test_component")
        previous = obs_log.set_level("error")
        try:
            logger.info("dropped")
        finally:
            obs_log.set_level(previous)
        assert "dropped" not in capsys.readouterr().err

    def test_active_span_stamps_trace_id(self, capsys):
        logger = obs_log.get_logger("test_component")
        with tracing.root_span("query") as root:
            logger.info("inside")
        entry = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert entry["trace_id"] == root.trace_id


# --------------------------------------------------------------------------- #
# Exposition


class TestExposition:
    def test_prometheus_text_rendering(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("aqp_ops_total", "Operations.", labelnames=("kind",)).inc(
            3, kind='we"ird\\'
        )
        reg.gauge("aqp_level", "Level.").set(1.5)
        h = reg.histogram("aqp_lat_seconds", "Latency.", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = render_prometheus(reg.snapshot())
        assert "# HELP aqp_ops_total Operations.\n# TYPE aqp_ops_total counter" in text
        assert 'aqp_ops_total{kind="we\\"ird\\\\"} 3' in text
        assert "aqp_level 1.5" in text
        # Cumulative buckets with the +Inf terminal, plus _sum/_count.
        assert 'aqp_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'aqp_lat_seconds_bucket{le="1"} 1' in text
        assert 'aqp_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "aqp_lat_seconds_count 2" in text

    def test_http_endpoint_serves_the_live_registry(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("aqp_scrapes_total").inc(9)
        endpoint = MetricsHTTPServer(reg.snapshot, host="127.0.0.1", port=0)
        endpoint.start()
        try:
            url = f"http://127.0.0.1:{endpoint.port}/metrics"
            with urllib.request.urlopen(url, timeout=10) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
            assert "aqp_scrapes_total 9" in body
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{endpoint.port}/nope", timeout=10
                )
            assert err.value.code == 404
        finally:
            endpoint.stop()


# --------------------------------------------------------------------------- #
# Wire ops, single node (both dialects)


def run_async(coroutine):
    return asyncio.run(coroutine)


async def serve(scenario, **server_kwargs):
    async with AsyncQueryService(partition_size=600, max_workers=2) as svc:
        await svc.register_table(
            make_simple_table(rows=1200, seed=50, name="stream"), params=PARAMS
        )
        async with QueryServer(svc, **server_kwargs) as server:
            return await asyncio.to_thread(scenario, server.address, server)


class TestWireOps:
    def test_metrics_op_in_both_dialects(self):
        def scenario(address, server):
            with ClusterClient(*address) as old, PipelinedClient(*address) as new:
                old.query("SELECT COUNT(*) FROM stream")
                for client in (old, new):
                    snapshot = client.metrics()
                    assert "aqp_request_latency_seconds" in snapshot
                    latency = snapshot["aqp_request_latency_seconds"]
                    assert latency["type"] == "histogram"
                    kinds = {
                        s["labels"]["kind"]
                        for s in latency["series"]
                        if s["count"] > 0
                    }
                    assert "query" in kinds
                    assert "aqp_requests_shed_total" in snapshot
                    assert "aqp_result_cache_lookups_total" in snapshot

        run_async(serve(scenario))

    def test_traced_query_span_tree_in_both_dialects(self):
        def scenario(address, server):
            # JSON dialect: the "trace" request key.
            tid = tracing.new_trace_id()
            sid = tracing.new_span_id()
            with ClusterClient(*address) as old:
                old.query("SELECT AVG(x) FROM stream", trace=(tid, sid))
                spans = old.trace(tid)
            names = {s["name"] for s in spans}
            assert "query" in names and "parse" in names and "execute" in names
            root = next(s for s in spans if s["name"] == "query")
            assert root["trace_id"] == tid
            assert root["parent_id"] == sid  # the client's span is the parent
            children = [s for s in spans if s["parent_id"] == root["span_id"]]
            assert children and all(c["trace_id"] == tid for c in children)
            # Child work happens within the root's wall time.
            assert sum(c["duration"] for c in children) <= root["duration"] * 1.5

            # Binary dialect: the frame trailer.
            tid2 = tracing.new_trace_id()
            sid2 = tracing.new_span_id()
            with PipelinedClient(*address) as new:
                new.query(
                    "SELECT SUM(y) FROM stream",
                    trace=(bytes.fromhex(tid2), bytes.fromhex(sid2)),
                )
                spans2 = new.trace(tid2)
            root2 = next(s for s in spans2 if s["name"] == "query")
            assert root2["parent_id"] == sid2
            assert {s["name"] for s in spans2} >= {"query", "parse"}

        run_async(serve(scenario))

    def test_untraced_queries_do_not_leak_into_foreign_traces(self):
        def scenario(address, server):
            with ClusterClient(*address) as client:
                client.query("SELECT COUNT(*) FROM stream")
                assert client.trace(tracing.new_trace_id()) == []

        run_async(serve(scenario))

    def test_status_payload_shape_is_byte_compatible(self):
        """Regression pin: migrating shed/cache counters onto the registry
        must not change the ``status`` op payload one old clients parse."""

        def scenario(address, server):
            with ClusterClient(*address) as client:
                client.query("SELECT COUNT(*) FROM stream")
                client.query("SELECT COUNT(*) FROM stream")  # cache hit
                status = client.status()
            assert status["role"] == "standalone"
            assert status["epoch"] == 0
            # The exact pre-observability shapes: plain int dicts.
            assert status["shed_counts"] == {"query": 0, "ingest": 0}
            assert status["cache_stats"] == {"stream": {"hits": 1, "misses": 1}}
            # Per-instance attributes remain the source of truth.
            assert server.shed_counts == {"query": 0, "ingest": 0}

        run_async(serve(scenario))


# --------------------------------------------------------------------------- #
# Cluster (local mode: fast)


class TestClusterObservabilityLocal:
    def test_local_cluster_metrics_and_scatter_spans(self):
        cluster = ClusterQueryService(num_shards=2, mode="local")
        try:
            cluster.register_table(
                make_simple_table(rows=800, seed=7, name="sensors"), params=PARAMS
            )
            tid = tracing.new_trace_id()
            with tracing.root_span(
                "query", trace_id=tid, attrs={"sql": "count"}
            ) as root:
                cluster.execute("SELECT COUNT(*) FROM sensors")
            spans = cluster.trace(tid)
            names = [s["name"] for s in spans]
            assert "scatter" in names and "gather" in names
            executes = [s for s in spans if s["name"] == "shard_execute"]
            assert len(executes) == 2  # one per shard
            scatter = next(s for s in spans if s["name"] == "scatter")
            assert scatter["attrs"]["fanout"] == 2
            assert all(s["parent_id"] == scatter["span_id"] for s in executes)
            # Children complete inside the root span's wall time.
            root_span = next(s for s in spans if s["span_id"] == root.span_id)
            assert all(s["duration"] <= root_span["duration"] for s in executes)

            snapshot = cluster.metrics()
            fanout = snapshot["aqp_scatter_fanout"]["series"][0]
            assert fanout["count"] >= 1
            assert "aqp_shard_roundtrip_seconds" in snapshot
        finally:
            cluster.close()

    def test_local_cluster_status_extra_merges_worker_cache_stats(self):
        cluster = ClusterQueryService(num_shards=2, mode="local")
        try:
            cluster.register_table(
                make_simple_table(rows=800, seed=7, name="sensors"), params=PARAMS
            )
            cluster.execute("SELECT COUNT(*) FROM sensors")
            cluster.execute("SELECT COUNT(*) FROM sensors")
            extra = cluster.status_extra()
            stats = extra["cache_stats"]["sensors"]
            # 2 shards x (1 miss + 1 hit) summed across the fleet.
            assert stats["misses"] == 2
            assert stats["hits"] == 2
        finally:
            cluster.close()


# --------------------------------------------------------------------------- #
# Cluster end-to-end (subprocess workers; slow)


def _await_lag(shard, predicate, timeout=30.0, message=""):
    """Poll the primary's registry until the ack-lag gauge satisfies
    ``predicate``; returns the last observed per-follower lag mapping."""
    deadline = time.perf_counter() + timeout
    lags: dict[str, float] = {}
    while time.perf_counter() < deadline:
        snapshot = shard.primary.metrics()
        series = snapshot.get("aqp_replication_ack_lag_records", {}).get(
            "series", []
        )
        lags = {s["labels"]["follower"]: s["value"] for s in series}
        if lags and predicate(lags):
            return lags
        time.sleep(0.2)
    raise TimeoutError(f"lag gauge never satisfied: {message} (last: {lags})")


@pytest.mark.slow
class TestClusterObservabilityEndToEnd:
    def test_metrics_fanout_carries_every_workers_series(self, tmp_path):
        cluster = ClusterQueryService(
            num_shards=2,
            path=tmp_path / "cluster",
            mode="process",
            partition_size=200,
            worker_options={"checkpoint_interval": 3600.0},
        )
        try:
            cluster.register_table(
                make_simple_table(rows=600, seed=3, name="sensors"), params=PARAMS
            )
            cluster.ingest(
                "sensors", make_simple_table(rows=200, seed=4, name="sensors")
            )
            cluster.execute("SELECT COUNT(*) FROM sensors")
            cluster.execute("SELECT COUNT(*) FROM sensors")
            for i in range(cluster.num_shards):
                cluster.shards[i].checkpoint()
            snapshot = cluster.metrics()

            def shards_with(name):
                return {
                    s["labels"].get("shard")
                    for s in snapshot.get(name, {}).get("series", [])
                    if s["labels"].get("role") == "primary"
                }

            every = {"00000", "00001"}
            # WAL, checkpoint, cache series from every worker...
            assert shards_with("aqp_wal_appends_total") == every
            assert shards_with("aqp_checkpoints_total") >= every
            assert shards_with("aqp_result_cache_lookups_total") == every
            assert shards_with("aqp_request_latency_seconds") == every
            assert shards_with("aqp_requests_shed_total") == every
            # ... and the scatters land in the front end's own series
            # (workers export the pre-bound cell at zero, nothing more).
            by_role: dict = {}
            for s in snapshot["aqp_scatter_fanout"]["series"]:
                by_role[s["labels"].get("role")] = s["count"]
            assert by_role["frontend"] >= 2
            assert all(count == 0 for role, count in by_role.items() if role != "frontend")
            blobs = snapshot.get("aqp_checkpoint_blobs_total", {}).get("series", [])
            assert {s["labels"]["disposition"] for s in blobs} <= {
                "linked",
                "rewritten",
            }
            assert sum(s["value"] for s in blobs) > 0
        finally:
            cluster.close()

    def test_traced_scatter_query_joins_worker_spans(self, tmp_path):
        cluster = ClusterQueryService(
            num_shards=2,
            path=tmp_path / "cluster",
            mode="process",
            partition_size=200,
            worker_options={"checkpoint_interval": 3600.0},
        )
        try:
            cluster.register_table(
                make_simple_table(rows=600, seed=3, name="sensors"), params=PARAMS
            )
            tid = tracing.new_trace_id()
            with tracing.root_span("query", trace_id=tid) as root:
                cluster.execute("SELECT AVG(x) FROM sensors")
            spans = cluster.trace(tid)
            assert all(s["trace_id"] == tid for s in spans)
            executes = [s for s in spans if s["name"] == "shard_execute"]
            assert len(executes) == 2
            # Each worker's own root joins the tree under its shard_execute
            # span — propagated over the binary frame trailer.
            worker_roots = [
                s
                for s in spans
                if s["name"] == "query"
                and s["parent_id"] in {e["span_id"] for e in executes}
            ]
            assert len(worker_roots) == 2
            # Consistency: every worker execute fits inside its parent's
            # round trip, which fits inside the client root span.
            root_entry = next(s for s in spans if s["span_id"] == root.span_id)
            for worker_root in worker_roots:
                parent = next(
                    e for e in executes if e["span_id"] == worker_root["parent_id"]
                )
                assert worker_root["duration"] <= parent["duration"]
                assert parent["duration"] <= root_entry["duration"]
            assert sum(e["duration"] for e in executes) <= (
                2 * root_entry["duration"]
            )
        finally:
            cluster.close()

    def test_kill_one_replica_lag_grows_then_recovers(self, tmp_path):
        cluster = ClusterQueryService(
            num_shards=1,
            path=tmp_path / "cluster",
            mode="process",
            partition_size=200,
            replicas=1,
            worker_options={
                "checkpoint_interval": 3600.0,
                # Async replication: ingest acks must not block on the
                # dead replica during the drill.
                "ack_replicas": 0,
            },
        )
        try:
            cluster.register_table(
                make_simple_table(rows=400, seed=3, name="sensors"), params=PARAMS
            )
            shard = cluster.shards[0]
            assert isinstance(shard, ReplicatedShard)
            _await_lag(
                shard, lambda lags: all(v == 0 for v in lags.values()),
                message="initial catch-up",
            )

            cluster.supervisor.kill((0, 0))
            for seed in (4, 5):
                cluster.ingest(
                    "sensors",
                    make_simple_table(rows=100, seed=seed, name="sensors"),
                )
            # The dead replica stops acking: its lag gauge must grow even
            # though no ack ever arrives (computed at snapshot time).
            grown = _await_lag(
                shard, lambda lags: any(v > 0 for v in lags.values()),
                message="lag growth after replica kill",
            )
            follower_id = max(grown, key=grown.get)
            assert grown[follower_id] >= 2  # two un-acked ingest records

            handle = cluster.supervisor.respawn_replica(0, 0)
            shard.attach_replica(
                0, ProcessShard(0, cluster.supervisor.host, handle.port)
            )
            recovered = _await_lag(
                shard,
                lambda lags: lags.get(follower_id) == 0,
                message="lag recovery after respawn",
            )
            assert recovered[follower_id] == 0
            # The respawned replica reports its own applied position too.
            merged = cluster.metrics()
            applied = merged.get("aqp_replication_applied_lsn", {}).get(
                "series", []
            )
            assert any(s["labels"].get("role") == "replica" for s in applied)
        finally:
            cluster.close()
