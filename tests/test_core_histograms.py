"""Tests for the 1-d / 2-d histogram data structures and bin refinement."""

import numpy as np
import pytest

from repro.core.histogram1d import Histogram1D, bin_indices
from repro.core.histogram2d import Histogram2D
from repro.core.refine import refine_bin_1d, refine_bin_2d


class TestBinIndices:
    def test_half_open_bins(self):
        edges = np.array([0.0, 1.0, 2.0, 3.0])
        values = np.array([0.0, 0.5, 1.0, 2.9, 3.0])
        assert bin_indices(edges, values).tolist() == [0, 0, 1, 2, 2]

    def test_out_of_range_clipped(self):
        edges = np.array([0.0, 1.0, 2.0])
        assert bin_indices(edges, np.array([-5.0, 10.0])).tolist() == [0, 1]


class TestHistogram1D:
    @pytest.fixture(scope="class")
    def hist(self):
        rng = np.random.default_rng(0)
        values = np.round(rng.uniform(0, 1000, 5000))
        return Histogram1D.from_refinement(
            column="v",
            values=values,
            edges=np.linspace(0, 1000, 11),
            v_minus=np.linspace(0, 900, 10),
            v_plus=np.linspace(100, 1000, 10),
            unique=np.full(10, 90),
            min_points=100,
            alpha=0.001,
        )

    def test_counts_sum_to_total(self, hist):
        assert hist.total_count == 5000

    def test_num_bins(self, hist):
        assert hist.num_bins == 10
        assert len(hist.counts) == 10

    def test_midpoints_are_rederived(self, hist):
        np.testing.assert_allclose(hist.midpoints, (hist.v_minus + hist.v_plus) / 2)

    def test_centre_bounds_within_extrema(self, hist):
        assert (hist.centre_lower >= hist.v_minus).all()
        assert (hist.centre_upper <= hist.v_plus).all()
        assert (hist.centre_lower <= hist.centre_upper).all()

    def test_find_bin(self, hist):
        assert hist.find_bin(0.0) == 0
        assert hist.find_bin(999.0) == 9
        assert hist.find_bin(250.0) == 2

    def test_widths(self, hist):
        assert (hist.widths >= 0).all()

    def test_storage_entries_exclude_rederivable(self, hist):
        entries = hist.storage_entries()
        assert "edges" in entries and "counts" in entries
        assert "midpoints" not in entries and "centre_lower" not in entries

    def test_mismatched_metadata_length_rejected(self):
        with pytest.raises(ValueError):
            Histogram1D(
                column="bad",
                edges=np.array([0.0, 1.0, 2.0]),
                counts=np.array([1.0]),
                v_minus=np.array([0.0, 1.0]),
                v_plus=np.array([1.0, 2.0]),
                unique=np.array([1.0, 1.0]),
            )


class TestRefine1D:
    def test_uniform_data_is_not_split(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 100, 5000)
        result = refine_bin_1d(0.0, 100.0, values, min_points=100, alpha=0.001)
        assert result.num_bins == 1

    def test_bimodal_data_is_split(self):
        rng = np.random.default_rng(1)
        values = np.concatenate([rng.normal(10, 1, 3000), rng.normal(90, 1, 3000)])
        values = np.clip(values, 0, 100)
        result = refine_bin_1d(0.0, 100.0, values, min_points=100, alpha=0.001)
        assert result.num_bins > 1

    def test_empty_bin(self):
        result = refine_bin_1d(0.0, 10.0, np.array([]), 10, 0.01)
        assert result.num_bins == 1
        assert result.unique == [0]
        assert result.v_minus == [0.0]
        assert result.v_plus == [10.0]

    def test_single_value_bin(self):
        result = refine_bin_1d(0.0, 10.0, np.full(50, 7.0), 10, 0.01)
        assert result.num_bins == 1
        assert result.v_minus == [7.0] and result.v_plus == [7.0]
        assert result.unique == [1]

    def test_too_few_points_not_split(self):
        rng = np.random.default_rng(2)
        values = np.concatenate([rng.normal(10, 1, 20), rng.normal(90, 1, 20)])
        result = refine_bin_1d(0.0, 100.0, values, min_points=1000, alpha=0.001)
        assert result.num_bins == 1

    def test_edges_are_increasing_and_end_at_upper(self):
        rng = np.random.default_rng(3)
        values = np.clip(np.concatenate([rng.normal(20, 2, 2000), rng.uniform(0, 100, 500)]), 0, 100)
        result = refine_bin_1d(0.0, 100.0, values, min_points=50, alpha=0.01)
        edges = result.upper_edges
        assert edges == sorted(edges)
        assert edges[-1] == 100.0

    def test_metadata_consistency(self):
        rng = np.random.default_rng(4)
        values = np.clip(rng.exponential(10, 3000), 0, 100)
        result = refine_bin_1d(0.0, 100.0, values, min_points=100, alpha=0.001)
        for v_min, v_max, unique in zip(result.v_minus, result.v_plus, result.unique):
            assert v_min <= v_max
            assert unique >= 0

    def test_max_depth_limits_recursion(self):
        rng = np.random.default_rng(5)
        values = np.clip(rng.lognormal(0, 2, 5000), 0, 1000)
        shallow = refine_bin_1d(0.0, 1000.0, values, 50, 0.001, max_depth=1)
        deep = refine_bin_1d(0.0, 1000.0, values, 50, 0.001, max_depth=10)
        assert shallow.num_bins <= deep.num_bins
        assert shallow.num_bins <= 2


class TestRefine2D:
    def test_uniform_cell_not_split(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, 3000)
        y = rng.uniform(0, 10, 3000)
        result = refine_bin_2d(0, 10, 0, 10, x, y, min_points=100, alpha=0.001)
        assert not result.has_splits

    def test_clustered_cell_splits_at_least_one_dimension(self):
        rng = np.random.default_rng(1)
        x = np.concatenate([rng.normal(2, 0.2, 2000), rng.normal(8, 0.2, 2000)])
        y = rng.uniform(0, 10, 4000)
        result = refine_bin_2d(0, 10, 0, 10, np.clip(x, 0, 10), y, min_points=100, alpha=0.001)
        assert result.has_splits
        assert len(result.new_edges_i) >= 1

    def test_splits_are_inside_the_cell(self):
        rng = np.random.default_rng(2)
        x = np.clip(rng.exponential(1, 3000), 0, 10)
        y = np.clip(rng.exponential(2, 3000), 0, 10)
        result = refine_bin_2d(0, 10, 0, 10, x, y, min_points=100, alpha=0.001)
        assert all(0 < e < 10 for e in result.new_edges_i)
        assert all(0 < e < 10 for e in result.new_edges_j)

    def test_small_cell_not_split(self):
        rng = np.random.default_rng(3)
        x = rng.normal(2, 0.1, 50)
        y = rng.normal(8, 0.1, 50)
        result = refine_bin_2d(0, 10, 0, 10, x, y, min_points=100, alpha=0.001)
        assert not result.has_splits


class TestHistogram2D:
    @pytest.fixture(scope="class")
    def pair(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 100, 4000)
        y = 0.5 * x + rng.normal(0, 5, 4000)
        hist_x = Histogram1D.from_refinement(
            "x", x, np.linspace(0, 100, 6), np.linspace(0, 80, 5), np.linspace(20, 100, 5),
            np.full(5, 100), 100, 0.001,
        )
        hist_y = Histogram1D.from_refinement(
            "y", y, np.linspace(y.min(), y.max(), 5),
            np.linspace(y.min(), y.max(), 5)[:-1], np.linspace(y.min(), y.max(), 5)[1:],
            np.full(4, 100), 100, 0.001,
        )
        pair = Histogram2D.build("x", "y", x, y, hist_x.edges, hist_y.edges, hist_x, hist_y)
        return pair, hist_x, hist_y, x, y

    def test_total_count(self, pair):
        hist2d, *_ = pair
        assert hist2d.total_count == 4000

    def test_marginals_match_axis_sums(self, pair):
        hist2d, *_ = pair
        np.testing.assert_allclose(hist2d.row.marginal_counts, hist2d.counts.sum(axis=1))
        np.testing.assert_allclose(hist2d.col.marginal_counts, hist2d.counts.sum(axis=0))

    def test_oriented_both_ways(self, pair):
        hist2d, *_ = pair
        counts_x, agg_axis, pred_axis = hist2d.oriented("x")
        assert counts_x.shape == (hist2d.row.num_bins, hist2d.col.num_bins)
        assert agg_axis.column == "x"
        counts_y, agg_axis_y, _ = hist2d.oriented("y")
        assert counts_y.shape == (hist2d.col.num_bins, hist2d.row.num_bins)
        assert agg_axis_y.column == "y"
        np.testing.assert_allclose(counts_y, counts_x.T)

    def test_oriented_unknown_column_raises(self, pair):
        hist2d, *_ = pair
        with pytest.raises(KeyError):
            hist2d.oriented("unknown")

    def test_axis_extrema_bracket_data(self, pair):
        hist2d, _, _, x, _ = pair
        assert hist2d.row.v_minus.min() >= x.min() - 1e-9
        assert hist2d.row.v_plus.max() <= x.max() + 1e-9

    def test_parent_maps_point_into_containing_1d_bin(self, pair):
        hist2d, hist_x, _, _, _ = pair
        for t in range(hist2d.row.num_bins):
            midpoint = (hist2d.row.edges[t] + hist2d.row.edges[t + 1]) / 2
            assert hist2d.row.parent[t] == hist_x.find_bin(midpoint)

    def test_non_zero_count(self, pair):
        hist2d, *_ = pair
        assert 0 < hist2d.non_zero_count() <= hist2d.counts.size

    def test_shape_mismatch_rejected(self, pair):
        hist2d, *_ = pair
        with pytest.raises(ValueError):
            Histogram2D(row=hist2d.row, col=hist2d.col, counts=np.zeros((2, 2)))
