"""Tests for the SQL tokenizer."""

import pytest

from repro.sql.tokenizer import Token, TokenType, TokenizeError, tokenize


def kinds(sql: str) -> list[TokenType]:
    return [t.type for t in tokenize(sql)]


def values(sql: str) -> list[str]:
    return [t.value for t in tokenize(sql)[:-1]]


class TestTokenizer:
    def test_empty_input_yields_end_token(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.END

    def test_keywords_are_recognised(self):
        tokens = tokenize("SELECT FROM WHERE GROUP BY AND OR")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select from where")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers(self):
        tokens = tokenize("avg delay air_time table.column")
        assert all(t.type is TokenType.IDENTIFIER for t in tokens[:-1])

    def test_numbers_integer_and_float(self):
        assert values("42 3.14 1e5 -7") == ["42", "3.14", "1e5", "-7"]
        assert kinds("42 3.14")[:2] == [TokenType.NUMBER, TokenType.NUMBER]

    def test_negative_exponent(self):
        assert values("1.5e-3") == ["1.5e-3"]

    def test_string_literals(self):
        tokens = tokenize("'hello world' \"quoted\"")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello world"
        assert tokens[1].value == "quoted"

    def test_unterminated_string_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("'oops")

    def test_operators_single_and_double(self):
        assert values("< > = <= >= != <>") == ["<", ">", "=", "<=", ">=", "!=", "<>"]

    def test_punctuation(self):
        assert values("( ) , * ;") == ["(", ")", ",", "*", ";"]

    def test_positions_recorded(self):
        tokens = tokenize("a < 5")
        assert [t.position for t in tokens[:-1]] == [0, 2, 4]

    def test_unexpected_character_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("a @ b")

    def test_matches_helper(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.matches(TokenType.KEYWORD, "select")
        assert not token.matches(TokenType.IDENTIFIER)

    def test_full_query_token_count(self):
        sql = "SELECT AVG(delay) FROM flights WHERE dist > 150 AND dist < 300;"
        tokens = tokenize(sql)
        assert tokens[-1].type is TokenType.END
        # SELECT AVG ( delay ) FROM flights WHERE dist > 150 AND dist < 300 ; END
        assert len(tokens) == 17
