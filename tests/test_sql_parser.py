"""Tests for the SQL parser and the query / predicate AST."""

import pytest

from repro.sql.ast import (
    AggregateFunction,
    Aggregation,
    ComparisonOp,
    Condition,
    LogicalOp,
    PredicateNode,
    Query,
    predicate_columns,
    predicate_conditions,
)
from repro.sql.parser import ParseError, parse_predicate, parse_query


class TestBasicQueries:
    def test_simple_avg(self):
        query = parse_query("SELECT AVG(delay) FROM flights")
        assert query.aggregation.func is AggregateFunction.AVG
        assert query.aggregation.column == "delay"
        assert query.table == "flights"
        assert query.predicate is None
        assert query.group_by is None

    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM flights")
        assert query.aggregation.func is AggregateFunction.COUNT
        assert query.aggregation.column is None

    def test_star_only_allowed_for_count(self):
        with pytest.raises(ParseError):
            parse_query("SELECT AVG(*) FROM flights")

    @pytest.mark.parametrize(
        "name,func",
        [
            ("COUNT", AggregateFunction.COUNT),
            ("SUM", AggregateFunction.SUM),
            ("AVG", AggregateFunction.AVG),
            ("MIN", AggregateFunction.MIN),
            ("MAX", AggregateFunction.MAX),
            ("MEDIAN", AggregateFunction.MEDIAN),
            ("VAR", AggregateFunction.VAR),
            ("VARIANCE", AggregateFunction.VAR),
        ],
    )
    def test_all_aggregation_functions(self, name, func):
        query = parse_query(f"SELECT {name}(x) FROM t")
        assert query.aggregation.func is func

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT FANCY(x) FROM t")

    def test_multiple_aggregations(self):
        query = parse_query("SELECT COUNT(x), AVG(y) FROM t")
        assert len(query.aggregations) == 2
        assert query.aggregations[1] == Aggregation(AggregateFunction.AVG, "y")

    def test_trailing_semicolon_optional(self):
        assert parse_query("SELECT AVG(x) FROM t;").table == "t"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT AVG(x) FROM t extra")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT AVG(x) WHERE y > 1")


class TestPredicates:
    def test_single_condition(self):
        query = parse_query("SELECT AVG(x) FROM t WHERE y > 10")
        assert isinstance(query.predicate, Condition)
        assert query.predicate == Condition("y", ComparisonOp.GT, 10)

    @pytest.mark.parametrize(
        "op_text,op",
        [
            ("<", ComparisonOp.LT),
            (">", ComparisonOp.GT),
            ("<=", ComparisonOp.LE),
            (">=", ComparisonOp.GE),
            ("=", ComparisonOp.EQ),
            ("!=", ComparisonOp.NE),
            ("<>", ComparisonOp.NE),
        ],
    )
    def test_all_operators(self, op_text, op):
        predicate = parse_predicate(f"x {op_text} 5")
        assert predicate.op is op

    def test_float_and_int_literals(self):
        assert parse_predicate("x > 1.5").literal == pytest.approx(1.5)
        assert parse_predicate("x > 3").literal == 3
        assert isinstance(parse_predicate("x > 3").literal, int)

    def test_string_literal(self):
        predicate = parse_predicate("airline = 'AA'")
        assert predicate.literal == "AA"

    def test_bare_word_literal(self):
        predicate = parse_predicate("airline = AA")
        assert predicate.literal == "AA"

    def test_and_precedence_over_or(self):
        predicate = parse_predicate("a > 1 AND b < 2 OR c = 3")
        assert isinstance(predicate, PredicateNode)
        assert predicate.op is LogicalOp.OR
        left, right = predicate.children
        assert isinstance(left, PredicateNode) and left.op is LogicalOp.AND
        assert isinstance(right, Condition)

    def test_parentheses_override_precedence(self):
        predicate = parse_predicate("a > 1 AND (b < 2 OR c = 3)")
        assert isinstance(predicate, PredicateNode)
        assert predicate.op is LogicalOp.AND
        assert isinstance(predicate.children[1], PredicateNode)
        assert predicate.children[1].op is LogicalOp.OR

    def test_figure7_query_shape(self):
        # The Fig. 7 example: (P1 AND P2 OR P3) AND P4 with precedence applied.
        sql = (
            "SELECT AVG(delay) FROM flights WHERE "
            "dist > 150 AND dist < 300 OR dist < 450 AND air_time > 90.5"
        )
        query = parse_query(sql)
        assert isinstance(query.predicate, PredicateNode)
        assert query.predicate.op is LogicalOp.OR
        assert len(predicate_conditions(query.predicate)) == 4
        assert predicate_columns(query.predicate) == ["dist", "air_time"]

    def test_group_by(self):
        query = parse_query("SELECT COUNT(x) FROM t WHERE x > 0 GROUP BY category")
        assert query.group_by == "category"

    def test_group_requires_by(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNT(x) FROM t GROUP category")

    def test_missing_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNT(x) FROM t WHERE x >")


class TestAstHelpers:
    def test_query_str_round_trips_through_parser(self):
        sql = "SELECT SUM(fare) FROM taxis WHERE trip_miles > 2 AND payment_type = 'Cash'"
        query = parse_query(sql)
        reparsed = parse_query(str(query))
        assert str(reparsed) == str(query)

    def test_condition_str(self):
        assert str(Condition("x", ComparisonOp.LE, 5)) == "x <= 5"
        assert str(Condition("c", ComparisonOp.EQ, "abc")) == "c = 'abc'"

    def test_predicate_conditions_of_none(self):
        assert predicate_conditions(None) == []
        assert predicate_columns(None) == []

    def test_query_columns(self):
        query = parse_query("SELECT AVG(a) FROM t WHERE b > 1 AND c < 2 GROUP BY d")
        assert query.columns == ["a", "b", "c", "d"]

    def test_operator_negation(self):
        assert ComparisonOp.LT.negate() is ComparisonOp.GE
        assert ComparisonOp.EQ.negate() is ComparisonOp.NE
        assert ComparisonOp.NE.negate() is ComparisonOp.EQ

    def test_aggregation_str(self):
        assert str(Aggregation(AggregateFunction.COUNT, None)) == "COUNT(*)"
        assert str(Aggregation(AggregateFunction.AVG, "x")) == "AVG(x)"

    def test_query_str_contains_group_by(self):
        query = Query(
            aggregations=[Aggregation(AggregateFunction.COUNT, "x")],
            table="t",
            group_by="g",
        )
        assert "GROUP BY g" in str(query)
