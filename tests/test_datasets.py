"""Tests for the synthetic dataset generators and the IDEBench-style scaler."""

import numpy as np
import pytest

from repro.data.datasets import available_datasets, load_dataset
from repro.data.idebench import IdeBenchScaler, scale_dataset
from repro.data.sampling import stratified_sample, uniform_sample

# Column counts from Table 4 of the paper.
EXPECTED_COLUMNS = {
    "aqua": 13,
    "basement": 12,
    "build": 7,
    "current": 24,
    "flights": 32,
    "furnace": 12,
    "gas": 12,
    "light": 9,
    "power": 10,
    "taxis": 23,
    "temp": 5,
}


class TestDatasetRegistry:
    def test_all_eleven_datasets_available(self):
        assert sorted(EXPECTED_COLUMNS) == available_datasets()

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("does_not_exist")

    @pytest.mark.parametrize("name", sorted(EXPECTED_COLUMNS))
    def test_column_counts_match_table4(self, name):
        table = load_dataset(name, rows=300, seed=0)
        assert table.num_columns == EXPECTED_COLUMNS[name]

    @pytest.mark.parametrize("name", sorted(EXPECTED_COLUMNS))
    def test_row_count_respected(self, name):
        table = load_dataset(name, rows=250, seed=0)
        assert table.num_rows == 250

    def test_generation_is_deterministic(self):
        a = load_dataset("power", rows=200, seed=5)
        b = load_dataset("power", rows=200, seed=5)
        np.testing.assert_allclose(a.column("voltage"), b.column("voltage"))

    def test_different_seeds_differ(self):
        a = load_dataset("power", rows=200, seed=1)
        b = load_dataset("power", rows=200, seed=2)
        assert not np.allclose(a.column("voltage"), b.column("voltage"))


class TestDatasetProperties:
    def test_aqua_has_many_nulls(self):
        table = load_dataset("aqua", rows=2000, seed=0)
        fractions = [table.null_fraction(c) for c in table.schema.numeric_names if c != "timestamp"]
        assert max(fractions) > 0.15

    def test_build_has_many_nulls(self):
        table = load_dataset("build", rows=2000, seed=0)
        assert table.null_fraction("co2") > 0.15

    def test_flights_has_categorical_columns(self):
        table = load_dataset("flights", rows=500, seed=0)
        assert "airline" in table.schema.categorical_names
        assert "origin_airport" in table.schema.categorical_names

    def test_flights_delay_components_null_for_on_time(self):
        table = load_dataset("flights", rows=3000, seed=0)
        assert table.null_fraction("airline_delay") > 0.3

    def test_taxis_fare_correlates_with_miles(self):
        table = load_dataset("taxis", rows=5000, seed=0)
        fare = table.column("fare")
        miles = table.column("trip_miles")
        mask = np.isfinite(fare) & np.isfinite(miles)
        corr = np.corrcoef(fare[mask], miles[mask])[0, 1]
        assert corr > 0.7

    def test_power_submeters_do_not_exceed_total(self):
        table = load_dataset("power", rows=2000, seed=0)
        total = table.column("global_active_power")
        parts = (
            table.column("sub_metering_1")
            + table.column("sub_metering_2")
            + table.column("sub_metering_3")
        )
        # Sub-meters are rounded to 2 decimals, so allow rounding slack.
        assert (parts <= total + 0.02).mean() > 0.95

    def test_meter_channels_are_non_negative(self):
        table = load_dataset("current", rows=1000, seed=0)
        for name in table.schema.numeric_names:
            if name.startswith("channel"):
                assert np.nanmin(table.column(name)) >= 0


class TestIdeBenchScaler:
    def test_scaled_rows_and_schema(self, power_table):
        scaled = scale_dataset(power_table, rows=2000, seed=1)
        assert scaled.num_rows == 2000
        assert scaled.column_names == power_table.column_names

    def test_scaled_values_within_source_range(self, power_table):
        scaled = scale_dataset(power_table, rows=1500, seed=1)
        source = power_table.column("voltage")
        generated = scaled.column("voltage")
        finite = generated[np.isfinite(generated)]
        assert finite.min() >= np.nanmin(source) - 1e-9
        assert finite.max() <= np.nanmax(source) + 1e-9

    def test_scaled_preserves_correlation_sign(self, power_table):
        scaled = scale_dataset(power_table, rows=4000, seed=1)
        a = scaled.column("global_active_power")
        b = scaled.column("global_intensity")
        mask = np.isfinite(a) & np.isfinite(b)
        assert np.corrcoef(a[mask], b[mask])[0, 1] > 0.5

    def test_scaler_preserves_null_fraction(self):
        table = load_dataset("aqua", rows=3000, seed=0)
        scaled = scale_dataset(table, rows=3000, seed=0)
        original = table.null_fraction("ph")
        generated = scaled.null_fraction("ph")
        assert abs(original - generated) < 0.1

    def test_scaler_preserves_categorical_labels(self, flights_table):
        scaled = scale_dataset(flights_table, rows=1000, seed=2)
        source_labels = {v for v in flights_table.column("airline") if v is not None}
        scaled_labels = {v for v in scaled.column("airline") if v is not None}
        assert scaled_labels <= source_labels

    def test_generate_is_deterministic_per_seed(self, power_table):
        scaler = IdeBenchScaler(power_table, seed=4)
        a = scaler.generate(500, seed=9)
        b = scaler.generate(500, seed=9)
        np.testing.assert_allclose(a.column("voltage"), b.column("voltage"))


class TestSampling:
    def test_uniform_sample_info(self, power_table):
        sample, info = uniform_sample(power_table, 1000, seed=0)
        assert sample.num_rows == 1000
        assert info.population_rows == power_table.num_rows
        assert info.ratio == pytest.approx(1000 / power_table.num_rows)
        assert not info.is_full_scan

    def test_uniform_sample_full_scan(self, power_table):
        sample, info = uniform_sample(power_table, None)
        assert sample is power_table
        assert info.is_full_scan
        assert info.ratio == 1.0

    def test_stratified_sample_caps_per_stratum(self, simple_table):
        sample, info = stratified_sample(simple_table, "category", per_stratum=50, seed=0)
        labels, counts = np.unique(
            np.asarray([v for v in sample.column("category")], dtype=object), return_counts=True
        )
        assert counts.max() <= 50
        assert info.population_rows == simple_table.num_rows

    def test_stratified_sample_requires_categorical(self, simple_table):
        with pytest.raises(ValueError):
            stratified_sample(simple_table, "x", per_stratum=10)
