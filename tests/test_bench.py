"""Smoke tests for the benchmark harness and experiment classes (tiny scale)."""

import pytest

from repro.bench import (
    AblationGDSeeding,
    AblationStorageEncoding,
    ExperimentScale,
    Fig9ParameterSensitivity,
    Fig10RealVsIdebench,
    Table1Qualitative,
    build_suite,
    format_table,
    generate_workload,
    load_scaled_dataset,
    workload_templates,
)
from repro.data.datasets import load_dataset
from repro.workload import WorkloadSpec
from repro.workload.generator import QueryGenerator


@pytest.fixture(scope="module")
def tiny_scale():
    return ExperimentScale(
        dataset_rows=2_500,
        scaled_rows=3_000,
        sample_large=1_200,
        sample_small=800,
        sample_tiny=400,
        queries=8,
        seed=3,
    )


class TestHarness:
    def test_scales_available(self):
        assert ExperimentScale.smoke().dataset_rows < ExperimentScale.default().dataset_rows
        assert ExperimentScale.paper().dataset_rows > ExperimentScale.default().dataset_rows

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        # Title + header + separator + two data rows.
        assert len(lines) == 5
        assert all(len(line) == len(lines[1]) for line in lines[2:])

    def test_workload_templates_extracted(self, power_table):
        spec = WorkloadSpec.initial_experiments(num_queries=10, seed=1)
        queries = QueryGenerator(power_table, spec).generate()
        templates = workload_templates(queries)
        for agg, pred in templates:
            assert agg != pred
            assert agg in power_table.column_names
            assert pred in power_table.column_names

    def test_generate_workload_and_scaled_dataset(self, tiny_scale):
        table = load_scaled_dataset("power", tiny_scale)
        assert table.num_rows == tiny_scale.scaled_rows
        queries = generate_workload(table, tiny_scale)
        assert len(queries) == tiny_scale.queries

    def test_build_suite_contains_three_systems(self, tiny_scale):
        table = load_dataset("power", rows=tiny_scale.dataset_rows, seed=tiny_scale.seed)
        queries = generate_workload(table, tiny_scale)
        suite = build_suite(table, tiny_scale, queries)
        assert suite.names == ["PairwiseHist", "DeepDB", "DBEst++"]
        assert suite.by_name("DeepDB").synopsis_bytes() > 0
        with pytest.raises(KeyError):
            suite.by_name("nope")


class TestExperimentsSmoke:
    def test_table1_qualitative(self, tiny_scale):
        experiment = Table1Qualitative(scale=tiny_scale)
        text = experiment.render()
        assert "PairwiseHist (measured)" in text
        assert "DeepDB" in text

    def test_ablation_storage_encoding(self, tiny_scale):
        experiment = AblationStorageEncoding(scale=tiny_scale, dataset="power")
        results = experiment.run()
        assert results["adaptive_mb"] <= results["dense_only_mb"]
        assert "savings" in experiment.render()

    def test_ablation_gd_seeding(self, tiny_scale):
        experiment = AblationGDSeeding(scale=tiny_scale, dataset="gas")
        results = experiment.run()
        assert set(results) == {"GD-seeded (with compression)", "Min/max seeded (stand-alone)"}
        for values in results.values():
            assert values["median_error_percent"] < 50.0

    def test_fig9_sensitivity_structure(self, tiny_scale):
        experiment = Fig9ParameterSensitivity(
            scale=tiny_scale,
            dataset="power",
            min_points_fractions=(0.02, 0.1),
            series=(("small, alpha=0.01", "small", 0.01),),
        )
        results = experiment.run()
        assert len(results) == 1
        points = next(iter(results.values()))
        assert len(points) == 2
        # Larger M must not produce a larger synopsis.
        assert points[1]["synopsis_mb"] <= points[0]["synopsis_mb"] + 1e-6

    def test_fig10_real_vs_idebench(self, tiny_scale):
        experiment = Fig10RealVsIdebench(scale=tiny_scale, datasets=("power",))
        results = experiment.run()
        row = results["power"]
        assert set(row) == {
            "PairwiseHist Real", "PairwiseHist IDEBench", "DeepDB Real", "DeepDB IDEBench"}
        assert all(v < 100 for v in row.values())
