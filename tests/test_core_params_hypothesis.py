"""Tests for construction parameters, the Terrell–Scott rule and the uniformity test."""

import numpy as np
import pytest

from repro.core.hypothesis import (
    chi2_critical_value,
    is_uniform,
    terrell_scott_bins,
    uniformity_test,
)
from repro.core.params import PairwiseHistParams


class TestParams:
    def test_paper_defaults_m_is_one_percent_of_ns(self):
        params = PairwiseHistParams.with_defaults(sample_size=100_000)
        assert params.min_points == 1_000
        assert params.alpha == pytest.approx(0.001)

    def test_small_sample_keeps_minimum_m(self):
        params = PairwiseHistParams.with_defaults(sample_size=200)
        assert params.min_points == 10

    def test_full_scan_defaults(self):
        params = PairwiseHistParams.with_defaults(sample_size=None)
        assert params.sample_size is None

    def test_scaled_to(self):
        params = PairwiseHistParams.with_defaults(sample_size=10_000)
        rescaled = params.scaled_to(50_000)
        assert rescaled.sample_size == 50_000
        assert rescaled.min_points == 500

    def test_effective_initial_bins_is_ns_over_m(self):
        params = PairwiseHistParams(sample_size=10_000, min_points=100)
        assert params.effective_initial_bins == 100

    def test_invalid_min_points(self):
        with pytest.raises(ValueError):
            PairwiseHistParams(sample_size=100, min_points=1)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            PairwiseHistParams(sample_size=100, min_points=10, alpha=1.5)

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            PairwiseHistParams(sample_size=0, min_points=10)


class TestTerrellScott:
    @pytest.mark.parametrize("unique,expected", [(1, 2), (4, 2), (13, 3), (32, 4), (500, 10)])
    def test_known_values(self, unique, expected):
        # ceil((2u)^(1/3))
        assert terrell_scott_bins(unique) == expected

    def test_non_positive_unique(self):
        assert terrell_scott_bins(0) == 1
        assert terrell_scott_bins(-5) == 1

    def test_monotone_in_unique_count(self):
        values = [terrell_scott_bins(u) for u in range(1, 2000, 50)]
        assert values == sorted(values)


class TestChiSquaredCritical:
    def test_matches_scipy(self):
        from scipy import stats

        assert chi2_critical_value(0.05, 10) == pytest.approx(stats.chi2.ppf(0.95, 9))

    def test_smaller_alpha_means_larger_critical_value(self):
        assert chi2_critical_value(0.001, 5) > chi2_critical_value(0.1, 5)

    def test_minimum_one_degree_of_freedom(self):
        assert chi2_critical_value(0.05, 1) == chi2_critical_value(0.05, 2)


class TestUniformityTest:
    def test_uniform_data_passes(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 100, size=5000)
        assert is_uniform(values, 0, 100, len(np.unique(values)), alpha=0.001)

    def test_heavily_clustered_data_fails(self):
        rng = np.random.default_rng(1)
        values = np.concatenate([rng.normal(10, 0.5, 4000), rng.uniform(0, 100, 100)])
        values = np.clip(values, 0, 100)
        assert not is_uniform(values, 0, 100, len(np.unique(values)), alpha=0.001)

    def test_empty_bin_counts_as_uniform(self):
        assert is_uniform(np.array([]), 0, 10, 0, alpha=0.01)

    def test_single_unique_value_counts_as_uniform(self):
        values = np.full(100, 3.0)
        assert is_uniform(values, 0, 10, 1, alpha=0.01)

    def test_result_exposes_statistic_and_critical_value(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(0, 1, 1000)
        result = uniformity_test(values, 0, 1, 500, alpha=0.01)
        assert result.sub_bins == terrell_scott_bins(500)
        assert result.statistic >= 0
        assert result.critical_value > 0
        assert result.is_uniform == (result.statistic <= result.critical_value)

    def test_degenerate_range_is_uniform(self):
        values = np.full(50, 5.0)
        assert uniformity_test(values, 5.0, 5.0, 1, 0.01).is_uniform

    def test_alpha_controls_sensitivity(self):
        rng = np.random.default_rng(3)
        # Mildly non-uniform data: a small linear trend.
        values = rng.uniform(0, 1, 3000) ** 1.15
        strict = uniformity_test(values, 0, 1, 2500, alpha=0.2)
        lenient = uniformity_test(values, 0, 1, 2500, alpha=1e-12)
        # The lenient (tiny alpha -> huge critical value) test should accept.
        assert lenient.critical_value > strict.critical_value
