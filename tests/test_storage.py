"""Unit tests for the durable-storage building blocks.

WAL framing (checksums, rotation, torn tails, truncation), the binary
codecs (tables, schemas, preprocessors, params), partition-level GD
dump/load and atomic snapshot write/load.  End-to-end crash recovery
lives in ``test_recovery.py``.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import numpy as np
import pytest
from conftest import make_simple_table

from repro.core.params import PairwiseHistParams
from repro.core.serialization import (
    deserialize_catalog,
    deserialize_manifest,
    deserialize_params,
    serialize_catalog,
    serialize_manifest,
    serialize_params,
)
from repro.gd.greedygd import GreedyGDConfig
from repro.gd.partitioned import PartitionedStore, dump_partition, load_partition
from repro.gd.preprocessor import Preprocessor
from repro.storage import (
    SimulatedCrash,
    WriteAheadLog,
    load_latest_snapshot,
    set_crash_hook,
    write_snapshot,
)
from repro.storage import codec
from repro.storage.snapshot import SnapshotState, TableSnapshotState


@pytest.fixture(autouse=True)
def _clear_crash_hook():
    yield
    set_crash_hook(None)


@pytest.fixture(autouse=True)
def _default_snapshot_format(monkeypatch):
    """These unit tests pin the default (v2) layout; don't let an ambient
    REPRO_SNAPSHOT_FORMAT (e.g. the CI v1-compat job) flip it."""
    monkeypatch.delenv("REPRO_SNAPSHOT_FORMAT", raising=False)


# --------------------------------------------------------------------------- #
# Write-ahead log


class TestWriteAheadLog:
    def test_append_read_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        payloads = [bytes([i]) * (i + 1) for i in range(5)]
        lsns = [wal.append(1, p) for p in payloads]
        assert lsns == [1, 2, 3, 4, 5]
        records = list(wal.read_records())
        assert [r.lsn for r in records] == lsns
        assert [r.payload for r in records] == payloads
        assert wal.last_lsn == 5
        wal.close()

    def test_read_after_lsn_filters(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        for i in range(6):
            wal.append(2, b"x%d" % i)
        assert [r.lsn for r in wal.read_records(after_lsn=4)] == [5, 6]
        wal.close()

    def test_reopen_continues_lsn_sequence(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(1, b"one")
        wal.close()
        wal = WriteAheadLog(tmp_path / "wal")
        assert wal.last_lsn == 1
        assert wal.append(1, b"two") == 2
        assert [r.payload for r in wal.read_records()] == [b"one", b"two"]
        wal.close()

    def test_segment_rotation(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=64)
        for i in range(10):
            wal.append(1, b"p" * 32)
        assert len(wal.segment_paths()) > 1
        assert [r.lsn for r in wal.read_records()] == list(range(1, 11))
        wal.close()

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(1, b"good")
        wal.append(1, b"also-good")
        wal.close()
        # Simulate a crash mid-append: chop bytes off the last record.
        segment = wal.segment_paths()[-1]
        data = segment.read_bytes()
        segment.write_bytes(data[:-3])
        wal = WriteAheadLog(tmp_path / "wal")
        assert wal.last_scan.torn_bytes > 0
        assert [r.payload for r in wal.read_records()] == [b"good"]
        # Appending after truncation re-uses the freed LSN cleanly.
        assert wal.append(1, b"replacement") == 2
        assert [r.payload for r in wal.read_records()] == [b"good", b"replacement"]
        wal.close()

    def test_corrupted_record_ends_the_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        for i in range(3):
            wal.append(1, b"payload-%d" % i)
        wal.close()
        segment = wal.segment_paths()[-1]
        data = bytearray(segment.read_bytes())
        # Flip a bit inside the second record's payload.
        first_len = 17 + len(b"payload-0")
        data[first_len + 17 + 2] ^= 0xFF
        segment.write_bytes(bytes(data))
        wal = WriteAheadLog(tmp_path / "wal")
        assert [r.payload for r in wal.read_records()] == [b"payload-0"]
        assert wal.last_lsn == 1
        wal.close()

    def test_corruption_in_middle_segment_drops_later_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=48)
        for i in range(8):
            wal.append(1, b"x" * 40)
        segments = wal.segment_paths()
        assert len(segments) >= 3
        wal.close()
        data = bytearray(segments[1].read_bytes())
        data[-1] ^= 0xFF
        segments[1].write_bytes(bytes(data))
        wal = WriteAheadLog(tmp_path / "wal")
        records = list(wal.read_records())
        # Only the prefix before the corruption survives; later segments
        # were unlinked because the LSN chain is broken.
        assert records == sorted(records, key=lambda r: r.lsn)
        assert wal.last_lsn == records[-1].lsn < 8
        assert len(wal.segment_paths()) <= 2
        wal.close()

    def test_truncate_through_drops_covered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=48)
        for i in range(9):
            wal.append(1, b"y" * 40)
        before = len(wal.segment_paths())
        wal.truncate_through(6)
        after = len(wal.segment_paths())
        assert after < before
        assert [r.lsn for r in wal.read_records(after_lsn=6)] == [7, 8, 9]
        wal.close()

    def test_truncate_everything_then_reopen_continues_numbering(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        for i in range(4):
            wal.append(1, b"z")
        wal.truncate_through(4)
        assert list(wal.read_records()) == []
        assert wal.append(1, b"after") == 5
        wal.close()
        wal = WriteAheadLog(tmp_path / "wal")
        assert wal.last_lsn == 5
        wal.close()

    def test_truncate_everything_close_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        for i in range(4):
            wal.append(1, b"z")
        wal.truncate_through(4)
        wal.close()
        wal = WriteAheadLog(tmp_path / "wal")
        assert wal.last_lsn == 4
        assert wal.append(1, b"next") == 5
        wal.close()

    def test_crash_mid_write_leaves_recoverable_torn_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(1, b"committed")

        def crash(point):
            if point == "wal.append.mid_write":
                raise SimulatedCrash(point)

        set_crash_hook(crash)
        with pytest.raises(SimulatedCrash):
            wal.append(1, b"torn-away")
        set_crash_hook(None)
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal")
        assert reopened.last_scan.torn_bytes > 0
        assert [r.payload for r in reopened.read_records()] == [b"committed"]
        reopened.close()


# --------------------------------------------------------------------------- #
# Codecs


class TestCodecs:
    def test_table_round_trip_exact(self):
        table = make_simple_table(rows=257, seed=3, name="round")
        payload = codec.encode_table(table)
        decoded, _ = codec.decode_table(memoryview(payload))
        assert decoded.name == table.name
        assert decoded.schema.names == table.schema.names
        for name in table.column_names:
            original = table.column(name)
            restored = decoded.column(name)
            if table.schema[name].is_categorical:
                assert list(original) == list(restored)
            else:
                # Bit-exact floats, NaNs aligned.
                assert np.array_equal(original, restored, equal_nan=True)

    def test_empty_and_null_categoricals(self):
        from repro.data.table import Table

        table = Table.from_dict(
            {"c": ["", None, "x", ""], "v": [1.0, float("nan"), 3.0, 4.0]},
            name="edge",
        )
        decoded, _ = codec.decode_table(memoryview(codec.encode_table(table)))
        assert list(decoded.column("c")) == ["", None, "x", ""]
        assert np.array_equal(decoded.column("v"), table.column("v"), equal_nan=True)

    def test_preprocessor_round_trip(self):
        table = make_simple_table(rows=500, seed=5)
        pre = Preprocessor.fit(table)
        decoded, _ = codec.decode_preprocessor(
            memoryview(codec.encode_preprocessor(pre))
        )
        assert decoded.column_names == pre.column_names
        for name in pre.column_names:
            a, b = pre[name], decoded[name]
            assert (a.is_categorical, a.scale, a.offset, a.categories) == (
                b.is_categorical,
                b.scale,
                b.offset,
                b.categories,
            )
            assert (a.missing_code, a.max_code) == (b.missing_code, b.max_code)

    def test_params_round_trip_all_fields(self):
        params = PairwiseHistParams(
            sample_size=None,
            min_points=77,
            alpha=0.025,
            min_spacing=0.5,
            max_initial_bins=99,
            max_refine_depth=7,
            seed=13,
            max_merged_cells=4096,
        )
        decoded, _ = deserialize_params(serialize_params(params))
        assert decoded == params

    def test_gd_config_round_trip(self):
        config = GreedyGDConfig(
            search_rows=123, max_deviation_bits=7, early_stop=False,
            warm_start_appends=False,
        )
        decoded, _ = codec.decode_gd_config(memoryview(codec.encode_gd_config(config)))
        assert decoded == config

    def test_catalog_and_manifest_framing(self):
        entries = [b"alpha", b"", b"gamma" * 100]
        assert deserialize_catalog(serialize_catalog(entries)) == entries
        files = [("CATALOG", 12, zlib.crc32(b"x")), ("t-0.partitions", 0, 0)]
        lsn, decoded = deserialize_manifest(serialize_manifest(42, files))
        assert lsn == 42 and decoded == files
        with pytest.raises(ValueError):
            deserialize_catalog(b"XXXX....")
        with pytest.raises(ValueError):
            deserialize_manifest(b"YYYY....")


# --------------------------------------------------------------------------- #
# Partition dump / load


class TestPartitionDumpLoad:
    def test_round_trip_reconstructs_rows(self):
        table = make_simple_table(rows=900, seed=9, name="dump")
        store = PartitionedStore.compress(table, partition_size=300)
        for partition in store.partitions:
            blob = dump_partition(partition)
            loaded = load_partition(
                blob, store.table_name, store.schema, store.preprocessor
            )
            original = partition.reconstruct_rows()
            restored = loaded.reconstruct_rows()
            for name in table.column_names:
                a, b = original.column(name), restored.column(name)
                if table.schema[name].is_categorical:
                    assert list(a) == list(b)
                else:
                    assert np.array_equal(a, b, equal_nan=True)
            assert loaded.num_rows == partition.num_rows
            assert loaded.compressed_bytes() == partition.compressed_bytes()

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            load_partition(b"NOPE", "t", None, None)


# --------------------------------------------------------------------------- #
# Snapshots


def _make_state(checkpoint_lsn: int, seed: int = 0) -> SnapshotState:
    from repro.core.builder import build_partition_synopses, snapshot_partition_input

    table = make_simple_table(rows=600, seed=seed, name="snap")
    store = PartitionedStore.compress(table, partition_size=200)
    params = PairwiseHistParams.with_defaults(sample_size=600)
    synopses = build_partition_synopses(
        [snapshot_partition_input(store, p) for p in store.partitions],
        params,
        columns=store.column_order,
        executor="serial",
    )
    return SnapshotState(
        checkpoint_lsn=checkpoint_lsn,
        tables=[
            TableSnapshotState(
                name="snap",
                schema=store.schema,
                preprocessor=store.preprocessor,
                partition_size=store.partition_size,
                params=params,
                gd_config=GreedyGDConfig(),
                partitions=store.partitions,
                partition_synopses=synopses,
                synopsis_builds=len(synopses),
            )
        ],
    )


class TestSnapshots:
    def test_write_and_load(self, tmp_path):
        state = _make_state(checkpoint_lsn=7)
        path = write_snapshot(tmp_path, state)
        assert path.name == "snap-00000000000000000007"
        loaded = load_latest_snapshot(tmp_path)
        assert loaded is not None
        assert loaded.checkpoint_lsn == 7
        (table,) = loaded.tables
        assert table.name == "snap"
        assert len(table.partitions) == 3
        assert len(table.partition_synopses) == 3
        assert table.to_store().num_rows == 600

    def test_latest_valid_snapshot_wins(self, tmp_path):
        write_snapshot(tmp_path, _make_state(checkpoint_lsn=3), keep=5)
        write_snapshot(tmp_path, _make_state(checkpoint_lsn=9, seed=1), keep=5)
        assert load_latest_snapshot(tmp_path).checkpoint_lsn == 9

    def test_corrupted_snapshot_falls_back_to_previous(self, tmp_path):
        write_snapshot(tmp_path, _make_state(checkpoint_lsn=3), keep=5)
        newest = write_snapshot(tmp_path, _make_state(checkpoint_lsn=9, seed=1), keep=5)
        victim = sorted(newest.glob("part-*.blob"))[0]
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        assert load_latest_snapshot(tmp_path).checkpoint_lsn == 3

    def test_crash_before_publish_leaves_no_snapshot(self, tmp_path):
        def crash(point):
            if point == "snapshot.before_publish":
                raise SimulatedCrash(point)

        set_crash_hook(crash)
        with pytest.raises(SimulatedCrash):
            write_snapshot(tmp_path, _make_state(checkpoint_lsn=5))
        set_crash_hook(None)
        assert load_latest_snapshot(tmp_path) is None
        # The orphaned temp directory is cleaned up by the next checkpoint.
        write_snapshot(tmp_path, _make_state(checkpoint_lsn=6))
        assert load_latest_snapshot(tmp_path).checkpoint_lsn == 6
        assert not list(tmp_path.glob("tmp-*"))

    def test_crash_mid_write_leaves_no_snapshot(self, tmp_path):
        def crash(point):
            if point == "snapshot.mid_write":
                raise SimulatedCrash(point)

        set_crash_hook(crash)
        with pytest.raises(SimulatedCrash):
            write_snapshot(tmp_path, _make_state(checkpoint_lsn=5))
        set_crash_hook(None)
        assert load_latest_snapshot(tmp_path) is None

    def test_old_snapshots_are_garbage_collected(self, tmp_path):
        for lsn in (1, 2, 3, 4):
            write_snapshot(tmp_path, _make_state(checkpoint_lsn=lsn), keep=2)
        names = sorted(p.name for p in tmp_path.iterdir() if p.name.startswith("snap-"))
        assert len(names) == 2
        assert names[-1].endswith("4")

    def test_same_lsn_redundant_temp_is_discarded(self, tmp_path):
        """A second snapshot at an already-published LSN hits the
        redundant-temp branch: the fresh copy is dropped, the published
        directory stays, and no temp dirs leak."""
        for fmt in (2, 1):
            target = tmp_path / f"v{fmt}"
            state = _make_state(checkpoint_lsn=7)
            first = write_snapshot(target, state, format_version=fmt)
            second = write_snapshot(target, state, format_version=fmt)
            assert first == second
            assert not list(target.glob("tmp-*"))
            loaded = load_latest_snapshot(target)
            assert loaded.checkpoint_lsn == 7
            assert loaded.tables[0].to_store().num_rows == 600

    def test_fsync_covers_current_pointer_and_skips_linked_blobs(
        self, tmp_path, monkeypatch
    ):
        import repro.storage.snapshot as snapshot_mod

        synced: list[str] = []
        monkeypatch.setattr(
            snapshot_mod, "_fsync_path", lambda p: synced.append(Path(p).name)
        )
        store, params = _make_store()
        write_snapshot(tmp_path, _state_from_store(store, params, lsn=1), fsync=True)
        # The CURRENT tmp file is synced before its rename and the
        # snapshots directory after it (satellite: torn-pointer footgun).
        assert "CURRENT.tmp" in synced
        assert synced.count(tmp_path.name) >= 2
        synced.clear()
        store.append(make_simple_table(rows=200, seed=9, name="snap"))
        write_snapshot(tmp_path, _state_from_store(store, params, lsn=2), fsync=True)
        # Hard-linked sealed blobs are not re-fsynced: only newly written
        # files (tail blob, parts index, synopses, catalog, manifest,
        # CURRENT.tmp) and the directories appear.
        linked = [name for name in synced if name.startswith("part-")]
        assert len(linked) == 1  # just the new tail blob
        # And with fsync off, nothing at all is synced.
        synced.clear()
        store.append(make_simple_table(rows=200, seed=10, name="snap"))
        write_snapshot(tmp_path, _state_from_store(store, params, lsn=3), fsync=False)
        assert synced == []


# --------------------------------------------------------------------------- #
# Incremental (v2) snapshots: hard-linked sealed blobs


def _make_store(rows: int = 600, seed: int = 0):
    table = make_simple_table(rows=rows, seed=seed, name="snap")
    store = PartitionedStore.compress(table, partition_size=200)
    params = PairwiseHistParams.with_defaults(sample_size=600)
    return store, params


def _state_from_store(store, params, lsn: int) -> SnapshotState:
    from repro.core.builder import build_partition_synopses, snapshot_partition_input

    synopses = build_partition_synopses(
        [snapshot_partition_input(store, p) for p in store.partitions],
        params,
        columns=store.column_order,
        executor="serial",
    )
    return SnapshotState(
        checkpoint_lsn=lsn,
        tables=[
            TableSnapshotState(
                name=store.table_name,
                schema=store.schema,
                preprocessor=store.preprocessor,
                partition_size=store.partition_size,
                params=params,
                gd_config=GreedyGDConfig(),
                partitions=list(store.partitions),
                partition_synopses=synopses,
                synopsis_builds=len(synopses),
            )
        ],
    )


def _blob_names(path) -> set[str]:
    return {p.name for p in path.glob("part-*.blob")}


class TestIncrementalSnapshots:
    def test_sealed_blobs_are_hard_linked_tail_rewritten(self, tmp_path):
        store, params = _make_store()  # 3 sealed partitions of 200
        snap1 = write_snapshot(tmp_path, _state_from_store(store, params, 1), keep=5)
        store.append(make_simple_table(rows=200, seed=1, name="snap"))
        snap2 = write_snapshot(tmp_path, _state_from_store(store, params, 2), keep=5)
        shared = _blob_names(snap1) & _blob_names(snap2)
        assert len(shared) == 3  # every sealed partition reused
        assert len(_blob_names(snap2) - _blob_names(snap1)) == 1  # the new tail
        for name in shared:
            a, b = (snap1 / name).stat(), (snap2 / name).stat()
            assert a.st_ino == b.st_ino and b.st_nlink >= 2
        loaded = load_latest_snapshot(tmp_path)
        assert loaded.checkpoint_lsn == 2
        assert loaded.tables[0].to_store().num_rows == 800

    def test_unsealed_tail_blob_is_relinked_when_unchanged(self, tmp_path):
        """A half-full tail that no ingest touched between checkpoints has
        identical content, so even it is reused (content addressing)."""
        store, params = _make_store(rows=500)  # 200/200/100: unsealed tail
        snap1 = write_snapshot(tmp_path, _state_from_store(store, params, 1), keep=5)
        snap2 = write_snapshot(tmp_path, _state_from_store(store, params, 2), keep=5)
        assert _blob_names(snap1) == _blob_names(snap2)
        for name in _blob_names(snap2):
            assert (snap2 / name).stat().st_nlink >= 2

    def test_topped_up_tail_is_rewritten_not_linked(self, tmp_path):
        store, params = _make_store(rows=500)  # tail holds 100 of 200
        snap1 = write_snapshot(tmp_path, _state_from_store(store, params, 1), keep=5)
        store.append(make_simple_table(rows=50, seed=2, name="snap"))
        snap2 = write_snapshot(tmp_path, _state_from_store(store, params, 2), keep=5)
        assert len(_blob_names(snap1) & _blob_names(snap2)) == 2  # sealed pair
        assert len(_blob_names(snap2) - _blob_names(snap1)) == 1  # new tail content
        loaded = load_latest_snapshot(tmp_path)
        assert loaded.tables[0].to_store().num_rows == 550

    def test_loaded_snapshot_links_on_next_checkpoint(self, tmp_path):
        """Recovery stamps each loaded partition with its blob identity, so
        the first checkpoint after a warm restart links instead of
        rewriting — the O(tail) property survives restarts."""
        store, params = _make_store()
        snap1 = write_snapshot(tmp_path, _state_from_store(store, params, 1), keep=5)
        loaded = load_latest_snapshot(tmp_path)
        restored = loaded.tables[0].to_store()
        snap2 = write_snapshot(
            tmp_path, _state_from_store(restored, params, 2), keep=5
        )
        assert _blob_names(snap2) == _blob_names(snap1)
        for name in _blob_names(snap2):
            assert (snap2 / name).stat().st_nlink >= 2

    def test_gc_keeps_linked_blobs_alive(self, tmp_path):
        """Deleting the oldest snapshots of an incremental chain must not
        invalidate newer ones: hard links survive unlinking their source
        directory (satellite: GC-vs-links safety)."""
        from repro.storage.snapshot import _snapshot_paths, _validate

        store, params = _make_store()
        write_snapshot(tmp_path, _state_from_store(store, params, 1), keep=10)
        for lsn, seed in ((2, 21), (3, 22)):
            store.append(make_simple_table(rows=200, seed=seed, name="snap"))
            write_snapshot(tmp_path, _state_from_store(store, params, lsn), keep=10)
        assert len(_snapshot_paths(tmp_path)) == 3
        newest = _snapshot_paths(tmp_path)[0]
        before = {name: (newest / name).read_bytes() for name in _blob_names(newest)}
        before_loaded = load_latest_snapshot(tmp_path)
        # Drop the two oldest snapshots (the link sources) via keep.
        store.append(make_simple_table(rows=200, seed=23, name="snap"))
        write_snapshot(tmp_path, _state_from_store(store, params, 4), keep=2)
        remaining = _snapshot_paths(tmp_path)
        assert [p.name for p in remaining] == [
            "snap-00000000000000000004",
            "snap-00000000000000000003",
        ]
        # Every remaining snapshot still validates checksum-clean...
        for path in remaining:
            assert _validate(path) is not None
        # ...and the chain's blobs are bit-identical to before the GC.
        after = {name: (newest / name).read_bytes() for name in _blob_names(newest)}
        assert after == before
        loaded = load_latest_snapshot(tmp_path)
        assert loaded.checkpoint_lsn == 4
        assert loaded.tables[0].to_store().num_rows == 1200
        assert before_loaded.tables[0].to_store().num_rows == 1000

    def test_crash_before_manifest_falls_back_to_previous(self, tmp_path):
        """A crash after the blobs are linked but before the manifest is
        written leaves an unpublished temp dir; recovery falls back to the
        previous snapshot and the next checkpoint cleans up."""
        store, params = _make_store()
        write_snapshot(tmp_path, _state_from_store(store, params, 1), keep=5)
        store.append(make_simple_table(rows=200, seed=5, name="snap"))

        def crash(point):
            if point == "snapshot.before_manifest":
                raise SimulatedCrash(point)

        set_crash_hook(crash)
        with pytest.raises(SimulatedCrash):
            write_snapshot(tmp_path, _state_from_store(store, params, 2), keep=5)
        set_crash_hook(None)
        assert load_latest_snapshot(tmp_path).checkpoint_lsn == 1
        write_snapshot(tmp_path, _state_from_store(store, params, 2), keep=5)
        assert load_latest_snapshot(tmp_path).checkpoint_lsn == 2
        assert not list(tmp_path.glob("tmp-*"))

    def test_v1_format_written_and_loaded(self, tmp_path):
        path = write_snapshot(
            tmp_path, _make_state(checkpoint_lsn=7), format_version=1
        )
        assert (path / "table-00000.partitions").is_file()
        assert not _blob_names(path)
        loaded = load_latest_snapshot(tmp_path)
        assert loaded.checkpoint_lsn == 7
        assert loaded.tables[0].to_store().num_rows == 600

    def test_v1_chain_upgrades_to_v2_on_next_write(self, tmp_path):
        store, params = _make_store()
        write_snapshot(
            tmp_path, _state_from_store(store, params, 1), keep=5, format_version=1
        )
        loaded = load_latest_snapshot(tmp_path)
        restored = loaded.tables[0].to_store()
        snap2 = write_snapshot(tmp_path, _state_from_store(restored, params, 2), keep=5)
        assert _blob_names(snap2)  # v2 layout now
        assert load_latest_snapshot(tmp_path).checkpoint_lsn == 2
        # The v2 blobs are brand new files (nothing to link from a v1 dir).
        for name in _blob_names(snap2):
            assert (snap2 / name).stat().st_nlink == 1
