"""Tests for GreedyGD pre-processing (transforms, inverses, missing values)."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.gd.preprocessor import Preprocessor


@pytest.fixture(scope="module")
def preprocessor(simple_table):
    return Preprocessor.fit(simple_table)


class TestNumericTransforms:
    def test_offset_is_column_minimum(self, simple_table, preprocessor):
        x = simple_table.column("x")
        assert preprocessor["x"].offset == pytest.approx(float(np.nanmin(x)))

    def test_scale_from_decimals(self, preprocessor):
        assert preprocessor["x"].scale == pytest.approx(100.0)
        assert preprocessor["w"].scale == pytest.approx(1.0)

    def test_transform_value_round_trip(self, preprocessor):
        transform = preprocessor["x"]
        for value in [0.25, 10.5, 99.17]:
            code = transform.transform_value(value)
            assert transform.inverse_value(code) == pytest.approx(value, abs=1e-9)

    def test_transform_array_produces_non_negative_codes(self, simple_table, preprocessor):
        codes, nulls = preprocessor["x"].transform_array(simple_table.column("x"))
        assert codes.dtype == np.int64
        assert codes[~nulls].min() >= 0

    def test_array_round_trip(self, simple_table, preprocessor):
        transform = preprocessor["x"]
        values = simple_table.column("x")
        codes, nulls = transform.transform_array(values)
        recovered = transform.inverse_array(codes, nulls)
        np.testing.assert_allclose(recovered, values, atol=1e-6)

    def test_missing_values_have_reserved_code_and_mask(self, simple_table, preprocessor):
        transform = preprocessor["with_nulls"]
        values = simple_table.column("with_nulls")
        codes, nulls = transform.transform_array(values)
        assert nulls.sum() == np.isnan(values).sum()
        assert (codes[nulls] == transform.missing_code).all()
        assert transform.missing_code > transform.max_code


class TestCategoricalTransforms:
    def test_frequency_ranked_codes(self, simple_table, preprocessor):
        transform = preprocessor["category"]
        # "alpha" is the most frequent label in the fixture, so it gets code 0.
        assert transform.categories[0] == "alpha"
        assert transform.transform_value("alpha") == 0.0

    def test_unknown_label_maps_outside_range(self, preprocessor):
        assert preprocessor["category"].transform_value("unknown") == -1.0

    def test_inverse_of_code(self, preprocessor):
        transform = preprocessor["category"]
        assert transform.inverse_value(0) == "alpha"
        assert transform.inverse_value(999) == "<unknown>"

    def test_categorical_array_round_trip(self, simple_table, preprocessor):
        transform = preprocessor["category"]
        values = simple_table.column("category")
        codes, nulls = transform.transform_array(values)
        recovered = transform.inverse_array(codes, nulls)
        assert list(recovered) == list(values)


class TestPreprocessorTable:
    def test_transform_table_covers_all_columns(self, simple_table, preprocessor):
        codes, nulls = preprocessor.transform_table(simple_table)
        assert set(codes) == set(simple_table.column_names)
        assert set(nulls) == set(simple_table.column_names)

    def test_bits_per_column_sufficient(self, simple_table, preprocessor):
        bits = preprocessor.bits_per_column()
        codes, _ = preprocessor.transform_table(simple_table)
        for name, width in bits.items():
            assert codes[name].max() < (1 << width)

    def test_contains_and_names(self, preprocessor, simple_table):
        assert "x" in preprocessor
        assert set(preprocessor.column_names) == set(simple_table.column_names)

    def test_transform_literal_matches_transform_value(self, preprocessor):
        assert preprocessor.transform_literal("x", 12.0) == preprocessor["x"].transform_value(12.0)

    def test_all_null_numeric_column(self):
        table = Table.from_dict({"v": [np.nan, np.nan], "w": [1.0, 2.0]})
        pre = Preprocessor.fit(table)
        codes, nulls = pre["v"].transform_array(table.column("v"))
        assert nulls.all()

    def test_empty_categorical_column(self):
        table = Table.from_dict({"c": [None, None], "w": [1.0, 2.0]})
        # Force categorical inference by providing a string elsewhere
        pre = Preprocessor.fit(table)
        assert "c" in pre
