"""Tests for vectorised predicate evaluation and the exact query engine."""

import numpy as np
import pytest

from repro.exactdb.executor import ExactQueryEngine
from repro.sql.ast import AggregateFunction
from repro.sql.parser import parse_predicate, parse_query
from repro.sql.predicate import condition_mask, predicate_mask, selectivity


@pytest.fixture(scope="module")
def columns():
    return {
        "x": np.array([1.0, 2.0, 3.0, 4.0, np.nan]),
        "y": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
        "label": np.array(["a", "b", "a", None, "c"], dtype=object),
    }


class TestConditionMask:
    def test_numeric_comparisons(self, columns):
        assert condition_mask(parse_predicate("x > 2"), columns).tolist() == [
            False, False, True, True, False]
        assert condition_mask(parse_predicate("x <= 2"), columns).tolist() == [
            True, True, False, False, False]

    def test_nan_never_matches(self, columns):
        for text in ["x > 0", "x < 100", "x != 3"]:
            assert not condition_mask(parse_predicate(text), columns)[4]

    def test_categorical_equality(self, columns):
        assert condition_mask(parse_predicate("label = 'a'"), columns).tolist() == [
            True, False, True, False, False]

    def test_categorical_inequality_excludes_null(self, columns):
        mask = condition_mask(parse_predicate("label != 'a'"), columns)
        assert mask.tolist() == [False, True, False, False, True]

    def test_unknown_column_raises(self, columns):
        with pytest.raises(KeyError):
            condition_mask(parse_predicate("missing > 1"), columns)


class TestPredicateMask:
    def test_and(self, columns):
        mask = predicate_mask(parse_predicate("x > 1 AND y < 40"), columns)
        assert mask.tolist() == [False, True, True, False, False]

    def test_or(self, columns):
        mask = predicate_mask(parse_predicate("x < 2 OR y >= 50"), columns)
        assert mask.tolist() == [True, False, False, False, True]

    def test_nested_precedence(self, columns):
        mask = predicate_mask(parse_predicate("x > 3 OR x < 2 AND y < 15"), columns)
        assert mask.tolist() == [True, False, False, True, False]

    def test_none_predicate_matches_all(self, columns):
        assert predicate_mask(None, columns).all()

    def test_selectivity(self, columns):
        assert selectivity(parse_predicate("x > 2"), columns) == pytest.approx(0.4)
        assert selectivity(None, columns) == 1.0


class TestExactEngine:
    @pytest.fixture(scope="class")
    def engine(self, simple_table):
        return ExactQueryEngine(simple_table)

    def test_count_matches_numpy(self, engine, simple_table):
        result = engine.execute_scalar(parse_query("SELECT COUNT(x) FROM simple WHERE x > 50"))
        expected = float((simple_table.column("x") > 50).sum())
        assert result == expected

    def test_count_star_includes_all_matching_rows(self, engine, simple_table):
        result = engine.execute_scalar(parse_query("SELECT COUNT(*) FROM simple WHERE x > 50"))
        assert result == float((simple_table.column("x") > 50).sum())

    def test_avg(self, engine, simple_table):
        result = engine.execute_scalar(parse_query("SELECT AVG(y) FROM simple WHERE x <= 25"))
        mask = simple_table.column("x") <= 25
        assert result == pytest.approx(simple_table.column("y")[mask].mean())

    def test_sum_ignores_nulls(self, engine, simple_table):
        result = engine.execute_scalar(parse_query("SELECT SUM(with_nulls) FROM simple WHERE x > 0"))
        expected = np.nansum(simple_table.column("with_nulls"))
        assert result == pytest.approx(expected)

    @pytest.mark.parametrize("func,npfunc", [
        ("MIN", np.min), ("MAX", np.max), ("MEDIAN", np.median), ("VAR", np.var),
    ])
    def test_order_statistics(self, engine, simple_table, func, npfunc):
        result = engine.execute_scalar(parse_query(f"SELECT {func}(z) FROM simple WHERE x > 10"))
        mask = simple_table.column("x") > 10
        assert result == pytest.approx(npfunc(simple_table.column("z")[mask]))

    def test_empty_predicate_returns_nan(self, engine):
        result = engine.execute_scalar(parse_query("SELECT AVG(x) FROM simple WHERE x > 1e9"))
        assert np.isnan(result)

    def test_empty_count_is_zero(self, engine):
        assert engine.execute_scalar(parse_query("SELECT COUNT(x) FROM simple WHERE x > 1e9")) == 0.0

    def test_group_by(self, engine, simple_table):
        results = engine.execute(parse_query("SELECT COUNT(x) FROM simple GROUP BY category"))
        assert isinstance(results, dict)
        total = sum(r[0].value for r in results.values())
        assert total == simple_table.num_rows
        assert set(results) == {"alpha", "beta", "gamma", "delta"}

    def test_group_by_rejected_by_execute_scalar(self, engine):
        with pytest.raises(ValueError):
            engine.execute_scalar(parse_query("SELECT COUNT(x) FROM simple GROUP BY category"))

    def test_categorical_aggregation_other_than_count_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.execute(parse_query("SELECT AVG(category) FROM simple"))

    def test_count_on_categorical_allowed(self, engine, simple_table):
        result = engine.execute_scalar(parse_query("SELECT COUNT(category) FROM simple"))
        assert result == simple_table.num_rows

    def test_unknown_table_raises(self, simple_table, power_table):
        # With several tables registered there is no unambiguous fallback,
        # so an unknown table name must raise.
        engine = ExactQueryEngine({"simple": simple_table, "power": power_table})
        with pytest.raises(KeyError):
            engine.execute(parse_query("SELECT COUNT(x) FROM unknown_table"))

    def test_single_table_engine_is_lenient_about_table_name(self, simple_table):
        engine = ExactQueryEngine(simple_table)
        value = engine.execute_scalar(parse_query("SELECT COUNT(x) FROM any_name"))
        assert value == simple_table.num_rows

    def test_multiple_aggregations(self, engine):
        results = engine.execute(parse_query("SELECT COUNT(x), AVG(x) FROM simple WHERE x > 50"))
        assert len(results) == 2
        assert results[0].value > 0
        assert results[0].rows_matched == int(results[0].value)

    def test_register_additional_table(self, engine, power_table):
        engine.register(power_table)
        assert "power" in engine.table_names
        value = engine.execute_scalar(parse_query("SELECT COUNT(voltage) FROM power"))
        assert value == power_table.num_rows
