"""Tests for the compact synopsis storage encoding (§4.3)."""

import numpy as np
import pytest

from repro.core.serialization import deserialize, serialize, synopsis_size_bytes
from repro.sql.ast import ComparisonOp, Condition
from repro.core.weightings import PredicateEvaluator


@pytest.fixture(scope="module")
def synopsis(simple_engine):
    return simple_engine.synopsis


class TestRoundTrip:
    def test_magic_rejected_for_garbage(self):
        with pytest.raises(ValueError):
            deserialize(b"NOTApayload")

    def test_round_trip_preserves_structure(self, synopsis):
        restored = deserialize(serialize(synopsis))
        assert restored.columns == synopsis.columns
        assert set(restored.hist1d) == set(synopsis.hist1d)
        assert set(restored.hist2d) == set(synopsis.hist2d)
        assert restored.population_rows == synopsis.population_rows
        assert restored.sample_rows == synopsis.sample_rows

    def test_round_trip_preserves_1d_histograms(self, synopsis):
        restored = deserialize(serialize(synopsis))
        for column, hist in synopsis.hist1d.items():
            other = restored.hist1d[column]
            np.testing.assert_allclose(other.edges, hist.edges)
            np.testing.assert_allclose(other.counts, hist.counts)
            np.testing.assert_allclose(other.v_minus, hist.v_minus)
            np.testing.assert_allclose(other.v_plus, hist.v_plus)
            np.testing.assert_allclose(other.unique, hist.unique)

    def test_round_trip_preserves_2d_counts_and_metadata(self, synopsis):
        restored = deserialize(serialize(synopsis))
        for key, hist in synopsis.hist2d.items():
            other = restored.hist2d[key]
            np.testing.assert_allclose(other.counts, hist.counts)
            np.testing.assert_allclose(other.row.edges, hist.row.edges)
            np.testing.assert_allclose(other.col.v_plus, hist.col.v_plus)
            np.testing.assert_allclose(other.row.parent, hist.row.parent)
            np.testing.assert_allclose(other.row.marginal_counts, hist.row.marginal_counts)

    def test_round_trip_preserves_params(self, synopsis):
        restored = deserialize(serialize(synopsis))
        assert restored.params.min_points == synopsis.params.min_points
        assert restored.params.alpha == pytest.approx(synopsis.params.alpha)

    def test_centre_bounds_recomputed_after_load(self, synopsis):
        restored = deserialize(serialize(synopsis))
        for column, hist in synopsis.hist1d.items():
            np.testing.assert_allclose(
                restored.hist1d[column].centre_lower, hist.centre_lower, rtol=1e-9
            )

    def test_queries_identical_after_round_trip(self, synopsis):
        restored = deserialize(serialize(synopsis))
        condition = Condition("y", ComparisonOp.GT, synopsis.hist1d["y"].midpoints.mean())
        original = PredicateEvaluator(synopsis, "x").weightings(condition)
        reloaded = PredicateEvaluator(restored, "x").weightings(condition)
        np.testing.assert_allclose(reloaded.estimate, original.estimate)
        np.testing.assert_allclose(reloaded.lower, original.lower)


class TestSizeAccounting:
    def test_size_matches_payload_length(self, synopsis):
        assert synopsis_size_bytes(synopsis) == len(serialize(synopsis))

    def test_synopsis_size_grows_sublinearly_with_data(self, synopsis, simple_table):
        # The synopsis summarises a fixed-size sample, so tripling the data
        # must not triple the synopsis (its size is driven by M, not N).
        from repro import PairwiseHistEngine, PairwiseHistParams

        bigger = simple_table.concat(simple_table).concat(simple_table)
        params = PairwiseHistParams(
            sample_size=synopsis.sample_rows,
            min_points=synopsis.params.min_points,
            alpha=synopsis.params.alpha,
            seed=0,
        )
        bigger_engine = PairwiseHistEngine.from_table(bigger, params=params)
        ratio = bigger_engine.synopsis_bytes() / synopsis_size_bytes(synopsis)
        assert ratio < 2.0

    def test_adaptive_encoding_not_larger_than_dense(self, synopsis):
        adaptive = synopsis_size_bytes(synopsis)
        dense = synopsis_size_bytes(synopsis, force_dense=True)
        assert adaptive <= dense

    def test_dense_payload_still_round_trips(self, synopsis):
        restored = deserialize(serialize(synopsis, force_dense=True))
        for key, hist in synopsis.hist2d.items():
            np.testing.assert_allclose(restored.hist2d[key].counts, hist.counts)
