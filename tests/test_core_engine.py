"""Tests for the end-to-end PairwiseHist engine (SQL in, bounded estimates out)."""

import numpy as np
import pytest

from repro import PairwiseHistEngine, PairwiseHistParams, parse_query
from repro.sql.ast import AggregateFunction


class TestEngineConstruction:
    def test_construction_records_time_and_store(self, simple_engine):
        assert simple_engine.construction_seconds > 0
        assert simple_engine.store is not None
        assert simple_engine.sampling_ratio <= 1.0

    def test_without_compression(self, simple_table):
        params = PairwiseHistParams.with_defaults(sample_size=1500, seed=0)
        engine = PairwiseHistEngine.from_table(simple_table, params=params, use_compression=False)
        assert engine.store is None
        result = engine.execute_scalar("SELECT COUNT(x) FROM simple WHERE x > 50")
        assert result.value > 0

    def test_from_compressed_store(self, simple_engine, simple_table):
        engine = PairwiseHistEngine.from_compressed(simple_engine.store,
                                                    PairwiseHistParams.with_defaults(1500))
        result = engine.execute_scalar("SELECT AVG(x) FROM simple")
        assert result.value == pytest.approx(simple_table.column("x").mean(), rel=0.05)

    def test_synopsis_bytes_positive_and_serialisable(self, simple_engine):
        payload = simple_engine.serialize_synopsis()
        assert simple_engine.synopsis_bytes() == len(payload)


class TestQueryValidation:
    def test_unknown_column_rejected(self, simple_engine):
        with pytest.raises(KeyError):
            simple_engine.execute("SELECT AVG(missing) FROM simple")

    def test_non_count_on_categorical_rejected(self, simple_engine):
        with pytest.raises(ValueError):
            simple_engine.execute("SELECT AVG(category) FROM simple")

    def test_group_by_rejected_in_execute_scalar(self, simple_engine):
        with pytest.raises(ValueError):
            simple_engine.execute_scalar("SELECT COUNT(x) FROM simple GROUP BY category")

    def test_accepts_query_objects(self, simple_engine):
        query = parse_query("SELECT COUNT(x) FROM simple WHERE x >= 0")
        results = simple_engine.execute(query)
        assert results[0].aggregation.func is AggregateFunction.COUNT


class TestAccuracyAgainstExact:
    @pytest.mark.parametrize(
        "sql,rel",
        [
            ("SELECT COUNT(x) FROM simple WHERE x > 30", 0.05),
            ("SELECT COUNT(x) FROM simple WHERE x > 30 AND y < 150", 0.08),
            ("SELECT AVG(y) FROM simple WHERE x > 20 AND x < 80", 0.05),
            ("SELECT SUM(z) FROM simple WHERE x < 70", 0.10),
            ("SELECT AVG(x) FROM simple WHERE category = 'alpha'", 0.05),
            ("SELECT MEDIAN(x) FROM simple WHERE z < 20", 0.10),
            ("SELECT AVG(y) FROM simple WHERE x < 20 OR x > 80", 0.08),
        ],
    )
    def test_estimates_close_to_truth(self, simple_engine, simple_exact, sql, rel):
        estimate = simple_engine.execute_scalar(sql)
        truth = simple_exact.execute_scalar(parse_query(sql))
        assert estimate.value == pytest.approx(truth, rel=rel)

    def test_min_max_reasonable(self, simple_engine, simple_exact):
        for func in ("MIN", "MAX"):
            sql = f"SELECT {func}(x) FROM simple WHERE z < 30"
            estimate = simple_engine.execute_scalar(sql)
            truth = simple_exact.execute_scalar(parse_query(sql))
            spread = 100.0  # x spans [0, 100]
            assert abs(estimate.value - truth) < 0.15 * spread

    def test_null_heavy_column_count(self, simple_engine, simple_exact):
        sql = "SELECT COUNT(with_nulls) FROM simple WHERE with_nulls > 10"
        estimate = simple_engine.execute_scalar(sql)
        truth = simple_exact.execute_scalar(parse_query(sql))
        assert estimate.value == pytest.approx(truth, rel=0.1)

    def test_inverse_transform_restores_original_domain(self, power_engine, power_exact):
        sql = "SELECT AVG(voltage) FROM power WHERE global_active_power > 1"
        estimate = power_engine.execute_scalar(sql)
        truth = power_exact.execute_scalar(parse_query(sql))
        # Voltage is around 240; a result in the compressed domain would be
        # off by orders of magnitude.
        assert estimate.value == pytest.approx(truth, rel=0.02)

    def test_sum_inverse_transform_with_offset(self, power_engine, power_exact):
        sql = "SELECT SUM(voltage) FROM power WHERE hour < 12"
        estimate = power_engine.execute_scalar(sql)
        truth = power_exact.execute_scalar(parse_query(sql))
        assert estimate.value == pytest.approx(truth, rel=0.1)

    def test_relative_error_helper(self, simple_engine):
        result = simple_engine.execute_scalar("SELECT COUNT(x) FROM simple WHERE x > 50")
        assert result.relative_error(result.value) == 0.0
        assert result.relative_error(result.value * 2) == pytest.approx(0.5)


class TestBounds:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT COUNT(x) FROM simple WHERE x > 25 AND y < 120",
            "SELECT AVG(y) FROM simple WHERE x > 10",
            "SELECT SUM(x) FROM simple WHERE z < 15",
            "SELECT MEDIAN(x) FROM simple WHERE x > 10 AND x < 90",
        ],
    )
    def test_bounds_bracket_estimate(self, simple_engine, sql):
        result = simple_engine.execute_scalar(sql)
        assert result.lower <= result.value <= result.upper

    def test_bounds_usually_contain_truth(self, simple_engine, simple_exact):
        queries = [
            "SELECT COUNT(x) FROM simple WHERE x > 20",
            "SELECT COUNT(x) FROM simple WHERE y < 100",
            "SELECT AVG(x) FROM simple WHERE y > 50",
            "SELECT AVG(z) FROM simple WHERE x < 60",
            "SELECT SUM(x) FROM simple WHERE z > 5",
            "SELECT COUNT(x) FROM simple WHERE category = 'beta'",
        ]
        hits = 0
        for sql in queries:
            result = simple_engine.execute_scalar(sql)
            truth = simple_exact.execute_scalar(parse_query(sql))
            hits += int(result.lower <= truth <= result.upper)
        assert hits >= len(queries) * 0.6


class TestGroupBy:
    def test_group_by_count_sums_to_total(self, simple_engine, simple_table):
        results = simple_engine.execute("SELECT COUNT(x) FROM simple GROUP BY category")
        assert set(results) == {"alpha", "beta", "gamma", "delta"}
        total = sum(r[0].value for r in results.values())
        assert total == pytest.approx(simple_table.num_rows, rel=0.05)

    def test_group_by_avg_close_to_exact(self, simple_engine, simple_exact):
        sql = "SELECT AVG(x) FROM simple WHERE z < 30 GROUP BY category"
        approx = simple_engine.execute(sql)
        exact = simple_exact.execute(parse_query(sql))
        for label, exact_results in exact.items():
            if exact_results[0].rows_matched < 30:
                continue
            assert approx[label][0].value == pytest.approx(exact_results[0].value, rel=0.15)

    def test_group_by_requires_categorical(self, simple_engine):
        with pytest.raises(ValueError):
            simple_engine.execute("SELECT COUNT(x) FROM simple GROUP BY x")

    def test_group_results_carry_group_label(self, simple_engine):
        results = simple_engine.execute("SELECT COUNT(x) FROM simple GROUP BY category")
        for label, group_results in results.items():
            assert group_results[0].group == label


class TestEmptyGroupFilter:
    """Regression tests: GROUP BY must drop groups with zero estimated count."""

    @pytest.fixture(scope="class")
    def separated_engine(self):
        # Only category "rare" lives in the high-x range, so a predicate on
        # x can empty out the other groups entirely.  Skewed category counts
        # make the category histogram refine into per-category bins.
        import numpy as np

        rng = np.random.default_rng(0)
        x = np.concatenate(
            [rng.uniform(0, 10, 700), rng.uniform(0, 10, 400), rng.uniform(100, 110, 100)]
        )
        category = np.array(["common"] * 700 + ["medium"] * 400 + ["rare"] * 100, dtype=object)
        from repro import Table

        table = Table.from_dict({"x": np.round(x, 2), "category": category}, name="sep")
        # Fine-grained bins (min_points well below the group sizes) so the
        # synopsis can actually tell the categories apart.
        params = PairwiseHistParams(sample_size=None, min_points=30, seed=0)
        return PairwiseHistEngine.from_table(table, params=params)

    def test_empty_group_dropped_with_count(self, separated_engine):
        results = separated_engine.execute(
            "SELECT COUNT(x) FROM sep WHERE x > 50 GROUP BY category"
        )
        assert "rare" in results
        assert "common" not in results
        assert "medium" not in results

    def test_empty_group_dropped_without_count_aggregation(self, separated_engine):
        # No COUNT in the SELECT list: the engine estimates COUNT(*) over
        # the group's predicate to decide whether the group is empty.
        results = separated_engine.execute(
            "SELECT AVG(x) FROM sep WHERE x > 50 GROUP BY category"
        )
        assert "rare" in results
        assert "common" not in results
        assert "medium" not in results

    def test_non_empty_groups_survive(self, separated_engine):
        results = separated_engine.execute("SELECT COUNT(x) FROM sep GROUP BY category")
        assert set(results) == {"common", "medium", "rare"}


class TestCountStar:
    def test_count_star_no_predicate(self, simple_engine, simple_table):
        result = simple_engine.execute_scalar("SELECT COUNT(*) FROM simple")
        assert result.value == pytest.approx(simple_table.num_rows, rel=0.02)

    def test_count_star_with_predicate(self, simple_engine, simple_exact):
        sql = "SELECT COUNT(*) FROM simple WHERE x > 40"
        result = simple_engine.execute_scalar(sql)
        truth = simple_exact.execute_scalar(parse_query(sql))
        assert result.value == pytest.approx(truth, rel=0.05)

    def test_multiple_aggregations_in_one_query(self, simple_engine):
        results = simple_engine.execute("SELECT COUNT(x), AVG(x), SUM(x) FROM simple WHERE x > 50")
        assert len(results) == 3
        count, avg, total = (r.value for r in results)
        assert total == pytest.approx(count * avg, rel=0.05)
