"""Tests for Algorithm 1 (synopsis construction) and the PairwiseHist container."""

import numpy as np
import pytest

from repro.core.builder import build_pairwise_hist
from repro.core.histogram1d import bin_indices
from repro.core.params import PairwiseHistParams


@pytest.fixture(scope="module")
def codes():
    rng = np.random.default_rng(0)
    rows = 6000
    x = np.round(rng.uniform(0, 1000, rows))
    y = np.round(0.7 * x + rng.normal(0, 30, rows))
    z = np.round(np.clip(rng.exponential(50, rows), 0, 2000))
    return {"x": x, "y": np.clip(y, 0, None), "z": z}


@pytest.fixture(scope="module")
def params():
    return PairwiseHistParams(sample_size=4000, min_points=80, alpha=0.001, seed=0)


@pytest.fixture(scope="module")
def synopsis(codes, params):
    return build_pairwise_hist(codes, params)


class TestConstruction:
    def test_one_histogram_per_column(self, synopsis, codes):
        assert set(synopsis.hist1d) == set(codes)

    def test_one_histogram_per_pair(self, synopsis, codes):
        d = len(codes)
        assert len(synopsis.hist2d) == d * (d - 1) // 2

    def test_sample_rows_respected(self, synopsis, params):
        assert synopsis.sample_rows == params.sample_size
        assert synopsis.population_rows == 6000
        assert synopsis.sampling_ratio == pytest.approx(4000 / 6000)

    def test_1d_counts_sum_to_sample(self, synopsis, params):
        for hist in synopsis.hist1d.values():
            assert hist.total_count == params.sample_size

    def test_2d_counts_sum_to_sample(self, synopsis, params):
        for hist in synopsis.hist2d.values():
            assert hist.total_count == params.sample_size

    def test_bins_have_at_least_m_or_pass_uniformity(self, synopsis, codes, params):
        # Refinement stops below M, so no bin should have been produced by a
        # split that left fewer than M points on a side AND kept splitting.
        for hist in synopsis.hist1d.values():
            assert hist.num_bins >= 1
            assert (hist.counts >= 0).all()

    def test_v_bounds_ordered_and_within_edges(self, synopsis):
        for hist in synopsis.hist1d.values():
            occupied = hist.counts > 0
            assert (hist.v_minus[occupied] <= hist.v_plus[occupied]).all()
            assert (hist.v_minus[occupied] >= hist.edges[0] - 1e-9).all()
            assert (hist.v_plus[occupied] <= hist.edges[-1] + 1e-9).all()

    def test_correlated_pair_is_refined_more_than_independent(self, synopsis):
        correlated = synopsis.pair("x", "y")
        independent = synopsis.pair("x", "z")
        assert correlated.counts.size >= independent.counts.size

    def test_parent_maps_are_valid_indices(self, synopsis):
        for (col_a, col_b), hist in synopsis.hist2d.items():
            assert hist.row.parent.max() < synopsis.hist1d[col_a].num_bins
            assert hist.col.parent.max() < synopsis.hist1d[col_b].num_bins

    def test_build_without_pairs(self, codes, params):
        synopsis = build_pairwise_hist(codes, params, build_pairs=False)
        assert synopsis.hist2d == {}
        assert len(synopsis.hist1d) == len(codes)

    def test_null_masks_exclude_rows(self, params):
        rng = np.random.default_rng(1)
        values = np.round(rng.uniform(0, 100, 3000))
        nulls = rng.random(3000) < 0.2
        synopsis = build_pairwise_hist(
            {"a": values, "b": values[::-1]},
            params.scaled_to(3000),
            null_masks={"a": nulls, "b": np.zeros(3000, dtype=bool)},
        )
        assert synopsis.hist1d["a"].total_count == pytest.approx(float((~nulls).sum()))
        assert synopsis.hist1d["b"].total_count == 3000

    def test_initial_edges_seeding(self, codes, params):
        seeds = {"x": np.array([100.0, 400.0, 700.0])}
        seeded = build_pairwise_hist(codes, params, initial_edges=seeds)
        unseeded = build_pairwise_hist(codes, params)
        # The seeded histogram contains the seed edges (possibly among others).
        assert {100.0, 400.0, 700.0} <= set(np.round(seeded.hist1d["x"].edges, 6))
        assert seeded.hist1d["x"].num_bins >= unseeded.hist1d["x"].num_bins - 1

    def test_empty_columns_rejected(self, params):
        with pytest.raises(ValueError):
            build_pairwise_hist({}, params)

    def test_constant_column_single_bin(self, params):
        synopsis = build_pairwise_hist(
            {"c": np.full(2000, 42.0), "x": np.round(np.arange(2000.0))},
            params.scaled_to(2000),
        )
        hist = synopsis.hist1d["c"]
        assert hist.num_bins == 1
        assert hist.unique[0] == 1

    def test_skewed_column_gets_more_bins_than_uniform(self, params):
        rng = np.random.default_rng(2)
        uniform = np.round(rng.uniform(0, 1000, 5000))
        skewed = np.round(np.clip(rng.lognormal(3, 1.5, 5000), 0, 1000))
        synopsis = build_pairwise_hist(
            {"uniform": uniform, "skewed": skewed}, params.scaled_to(5000)
        )
        assert synopsis.hist1d["skewed"].num_bins >= synopsis.hist1d["uniform"].num_bins


class TestSynopsisContainer:
    def test_pair_lookup_is_order_insensitive(self, synopsis):
        assert synopsis.pair("x", "y") is synopsis.pair("y", "x")

    def test_pair_requires_distinct_columns(self, synopsis):
        with pytest.raises(ValueError):
            synopsis.pair_key("x", "x")

    def test_missing_pair_raises(self, codes, params):
        synopsis = build_pairwise_hist(codes, params, build_pairs=False)
        assert not synopsis.has_pair("x", "y")
        with pytest.raises(KeyError):
            synopsis.pair("x", "y")

    def test_missing_histogram_raises(self, synopsis):
        with pytest.raises(KeyError):
            synopsis.histogram("missing")

    def test_summary_fields(self, synopsis):
        summary = synopsis.summary()
        assert summary["columns"] == 3.0
        assert summary["total_1d_bins"] == synopsis.total_bins_1d()
        assert summary["total_2d_cells"] == synopsis.total_cells_2d()
        assert summary["sample_rows"] == 4000.0

    def test_column_index(self, synopsis):
        assert synopsis.column_index("x") == 0
        assert synopsis.columns[synopsis.column_index("z")] == "z"


class TestHistogramApproximatesDistribution:
    def test_counts_match_empirical_distribution(self, codes, params):
        synopsis = build_pairwise_hist(codes, params.scaled_to(None))
        hist = synopsis.hist1d["x"]
        values = codes["x"]
        idx = bin_indices(hist.edges, values)
        empirical = np.bincount(idx, minlength=hist.num_bins)
        np.testing.assert_allclose(hist.counts, empirical)


class TestDefaultExecutor:
    """The dynamic executor choice (multi-core + enough partitions -> process)."""

    def test_single_core_always_threads(self, monkeypatch):
        import repro.core.builder as builder

        monkeypatch.setattr(builder.os, "cpu_count", lambda: 1)
        assert builder.default_executor(100) == "thread"

    def test_multi_core_needs_enough_partitions(self, monkeypatch):
        import repro.core.builder as builder

        monkeypatch.setattr(builder.os, "cpu_count", lambda: 8)
        monkeypatch.setattr(builder.threading, "active_count", lambda: 1)
        threshold = builder.PROCESS_EXECUTOR_MIN_PARTITIONS
        assert builder.default_executor(threshold - 1) == "thread"
        assert builder.default_executor(threshold) == "process"

    def test_threaded_process_stays_on_thread_pool(self, monkeypatch):
        """Never auto-fork a process pool out of a multi-threaded service."""
        import repro.core.builder as builder

        monkeypatch.setattr(builder.os, "cpu_count", lambda: 8)
        monkeypatch.setattr(builder.threading, "active_count", lambda: 3)
        assert builder.default_executor(100) == "thread"

    def test_explicit_override_respected(self, codes, params, monkeypatch):
        """executor="thread"/"serial"/"process" are never second-guessed."""
        import repro.core.builder as builder
        from repro.core.builder import PartitionInput, build_partition_synopses

        monkeypatch.setattr(builder.os, "cpu_count", lambda: 8)
        parts = [
            PartitionInput(codes={k: v[i::3] for k, v in codes.items()})
            for i in range(3)
        ]
        built = build_partition_synopses(parts, params.scaled_to(1000), executor="serial")
        assert len(built) == 3
        with pytest.raises(ValueError, match="unknown executor"):
            build_partition_synopses(parts, params, executor="fibers")
