"""Tests for the baseline AQP systems (DeepDB-like, DBEst++-like, sampling, adapter)."""

import numpy as np
import pytest

from repro import parse_query
from repro.baselines import (
    BaselineResult,
    BinnedRegression,
    DBEstPlusPlusLike,
    DeepDBLike,
    GaussianMixture1D,
    PairwiseHistSystem,
    SamplingAQP,
    UnsupportedQueryError,
)
from repro.baselines.spn import HistogramLeaf, SumProductNetwork
from repro.exactdb.executor import ExactQueryEngine


# --------------------------------------------------------------------------- #
# Density building blocks


class TestGaussianMixture:
    def test_fits_bimodal_data(self):
        rng = np.random.default_rng(0)
        values = np.concatenate([rng.normal(-5, 1, 2000), rng.normal(5, 1, 2000)])
        gmm = GaussianMixture1D(num_components=2, seed=0).fit(values)
        assert sorted(np.round(gmm.means)) == pytest.approx([-5, 5], abs=1)

    def test_probability_of_full_range_is_one(self):
        rng = np.random.default_rng(1)
        gmm = GaussianMixture1D(num_components=3).fit(rng.normal(0, 1, 1000))
        assert gmm.probability(-100, 100) == pytest.approx(1.0, abs=1e-3)

    def test_probability_monotone_in_range(self):
        rng = np.random.default_rng(2)
        gmm = GaussianMixture1D(num_components=3).fit(rng.normal(0, 1, 1000))
        assert gmm.probability(-1, 1) <= gmm.probability(-2, 2)

    def test_empty_range_probability_zero(self):
        gmm = GaussianMixture1D().fit(np.arange(100.0))
        assert gmm.probability(10, 5) == 0.0

    def test_handles_constant_data(self):
        gmm = GaussianMixture1D(num_components=4).fit(np.full(100, 3.0))
        assert gmm.probability(2.9, 3.1) > 0.9

    def test_storage_bytes_scale_with_components(self):
        small = GaussianMixture1D(num_components=2).fit(np.arange(50.0))
        large = GaussianMixture1D(num_components=8).fit(np.arange(400.0))
        assert large.storage_bytes() > small.storage_bytes()


class TestBinnedRegression:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, 5000)
        y = 3 * x + rng.normal(0, 0.5, 5000)
        reg = BinnedRegression(num_bins=32).fit(x, y)
        assert reg.predict(2.0) == pytest.approx(6.0, abs=0.5)
        assert reg.predict(8.0) == pytest.approx(24.0, abs=0.5)

    def test_handles_empty_input(self):
        reg = BinnedRegression().fit(np.array([]), np.array([]))
        assert reg.predict(1.0) == 0.0

    def test_bin_centres_length(self):
        reg = BinnedRegression(num_bins=16).fit(np.arange(100.0), np.arange(100.0))
        assert len(reg.bin_centres()) == 16


# --------------------------------------------------------------------------- #
# SPN


class TestSpn:
    @pytest.fixture(scope="class")
    def spn(self, simple_table):
        columns = {name: simple_table.column(name) for name in simple_table.column_names}
        return SumProductNetwork.learn(
            columns, categorical={"category"}, population_rows=simple_table.num_rows
        )

    def test_probability_of_true_predicate_is_one(self, spn):
        assert spn.expectation({}, {}) == pytest.approx(1.0, abs=0.05)

    def test_probability_matches_marginal(self, spn, simple_table):
        from repro.sql.ast import ComparisonOp, Condition

        condition = Condition("x", ComparisonOp.LT, 50.0)
        probability = spn.expectation({}, {"x": [condition]})
        truth = float((simple_table.column("x") < 50).mean())
        assert probability == pytest.approx(truth, abs=0.05)

    def test_mean_expectation_close_to_truth(self, spn, simple_table):
        mean_mass = spn.expectation({"x": "mean"}, {})
        assert mean_mass == pytest.approx(simple_table.column("x").mean(), rel=0.1)

    def test_storage_accounting_positive(self, spn):
        assert spn.storage_bytes() > 0

    def test_leaf_categorical_probabilities(self, simple_table):
        leaf = HistogramLeaf.fit_categorical("category", simple_table.column("category"))
        from repro.sql.ast import ComparisonOp, Condition

        prob = leaf.expectation("prob", Condition("category", ComparisonOp.EQ, "alpha"))
        truth = float(np.mean([v == "alpha" for v in simple_table.column("category")]))
        assert prob == pytest.approx(truth, abs=0.02)


# --------------------------------------------------------------------------- #
# System-level behaviour


@pytest.fixture(scope="module")
def deepdb(simple_table):
    return DeepDBLike.fit(simple_table, sample_size=1500)


@pytest.fixture(scope="module")
def dbest(simple_table):
    return DBEstPlusPlusLike.fit(
        simple_table, sample_size=800, templates=[("y", "x"), ("x", "z")]
    )


@pytest.fixture(scope="module")
def sampling(simple_table):
    return SamplingAQP.fit(simple_table, sample_size=1000)


@pytest.fixture(scope="module")
def adapter(simple_engine):
    return PairwiseHistSystem(engine=simple_engine)


class TestDeepDBLike:
    def test_count_accuracy(self, deepdb, simple_table):
        query = parse_query("SELECT COUNT(x) FROM simple WHERE x > 40")
        result = deepdb.estimate(query)
        truth = float((simple_table.column("x") > 40).sum())
        assert result.value == pytest.approx(truth, rel=0.1)

    def test_avg_accuracy(self, deepdb, simple_table):
        query = parse_query("SELECT AVG(y) FROM simple WHERE x < 60")
        result = deepdb.estimate(query)
        mask = simple_table.column("x") < 60
        assert result.value == pytest.approx(simple_table.column("y")[mask].mean(), rel=0.15)

    def test_rejects_or_predicates(self, deepdb):
        with pytest.raises(UnsupportedQueryError):
            deepdb.estimate(parse_query("SELECT COUNT(x) FROM simple WHERE x < 10 OR x > 90"))

    @pytest.mark.parametrize("func", ["MIN", "MAX", "MEDIAN", "VAR"])
    def test_rejects_unsupported_aggregations(self, deepdb, func):
        with pytest.raises(UnsupportedQueryError):
            deepdb.estimate(parse_query(f"SELECT {func}(x) FROM simple WHERE x > 10"))

    def test_provides_bounds(self, deepdb):
        result = deepdb.estimate(parse_query("SELECT COUNT(x) FROM simple WHERE x > 40"))
        assert result.has_bounds
        assert result.lower <= result.value <= result.upper

    def test_reports_construction_and_size(self, deepdb):
        assert deepdb.construction_seconds > 0
        assert deepdb.synopsis_bytes() > 0


class TestDBEstPlusPlusLike:
    def test_count_accuracy(self, dbest, simple_table):
        query = parse_query("SELECT COUNT(y) FROM simple WHERE x > 30 AND x < 70")
        result = dbest.estimate(query)
        x = simple_table.column("x")
        truth = float(((x > 30) & (x < 70)).sum())
        assert result.value == pytest.approx(truth, rel=0.25)

    def test_avg_accuracy(self, dbest, simple_table):
        query = parse_query("SELECT AVG(y) FROM simple WHERE x > 30 AND x < 70")
        result = dbest.estimate(query)
        x = simple_table.column("x")
        mask = (x > 30) & (x < 70)
        assert result.value == pytest.approx(simple_table.column("y")[mask].mean(), rel=0.2)

    def test_rejects_multi_column_predicates(self, dbest):
        with pytest.raises(UnsupportedQueryError):
            dbest.estimate(parse_query("SELECT AVG(y) FROM simple WHERE x > 10 AND z < 5"))

    def test_rejects_missing_template(self, dbest):
        with pytest.raises(UnsupportedQueryError):
            dbest.estimate(parse_query("SELECT AVG(z) FROM simple WHERE y > 10"))

    def test_rejects_or_and_unsupported_functions(self, dbest):
        with pytest.raises(UnsupportedQueryError):
            dbest.estimate(parse_query("SELECT AVG(y) FROM simple WHERE x < 10 OR x > 90"))
        with pytest.raises(UnsupportedQueryError):
            dbest.estimate(parse_query("SELECT MEDIAN(y) FROM simple WHERE x > 10"))

    def test_no_bounds_provided(self, dbest):
        result = dbest.estimate(parse_query("SELECT COUNT(y) FROM simple WHERE x > 50"))
        assert not result.has_bounds

    def test_template_count_and_size(self, dbest):
        assert dbest.num_templates == 2
        assert dbest.synopsis_bytes() > 0

    def test_default_templates_cover_all_numeric_pairs(self, simple_table):
        system = DBEstPlusPlusLike.fit(simple_table.head(400), sample_size=300)
        numeric = len(simple_table.schema.numeric_names)
        assert system.num_templates == numeric * (numeric - 1)


class TestSamplingAQP:
    def test_count_scales_to_population(self, sampling, simple_table):
        query = parse_query("SELECT COUNT(x) FROM simple WHERE x > 50")
        result = sampling.estimate(query)
        truth = float((simple_table.column("x") > 50).sum())
        assert result.value == pytest.approx(truth, rel=0.15)

    def test_supports_all_aggregations(self, sampling):
        for func in ("COUNT", "SUM", "AVG", "MIN", "MAX", "MEDIAN", "VAR"):
            result = sampling.estimate(parse_query(f"SELECT {func}(x) FROM simple WHERE x > 10"))
            assert np.isfinite(result.value)

    def test_synopsis_is_the_sample(self, sampling):
        assert sampling.synopsis_bytes() > 0
        assert sampling.scale == pytest.approx(2.0, rel=0.01)


class TestPairwiseHistAdapter:
    def test_estimate_matches_engine(self, adapter, simple_engine):
        query = parse_query("SELECT AVG(x) FROM simple WHERE y > 100")
        adapted = adapter.estimate(query)
        direct = simple_engine.execute_scalar(query)
        assert adapted.value == pytest.approx(direct.value)
        assert adapted.lower == pytest.approx(direct.lower)

    def test_reports_size_and_time(self, adapter):
        assert adapter.synopsis_bytes() > 0
        assert adapter.construction_seconds > 0

    def test_group_by_unsupported_through_adapter(self, adapter):
        with pytest.raises(UnsupportedQueryError):
            adapter.estimate(parse_query("SELECT COUNT(x) FROM simple GROUP BY category"))

    def test_fit_classmethod(self, simple_table):
        system = PairwiseHistSystem.fit(simple_table, sample_size=800, name="PH-small")
        assert system.name == "PH-small"
        result = system.estimate(parse_query("SELECT COUNT(x) FROM simple WHERE x > 0"))
        assert result.value > 0


class TestBaselineResult:
    def test_has_bounds(self):
        assert BaselineResult(1.0, 0.0, 2.0).has_bounds
        assert not BaselineResult(1.0).has_bounds

    def test_baselines_vs_exact_on_shared_queries(self, deepdb, sampling, adapter, simple_table):
        exact = ExactQueryEngine(simple_table)
        queries = [
            "SELECT COUNT(x) FROM simple WHERE y > 80",
            "SELECT AVG(x) FROM simple WHERE y > 80",
        ]
        for sql in queries:
            query = parse_query(sql)
            truth = exact.execute_scalar(query)
            for system in (deepdb, sampling, adapter):
                estimate = system.estimate(query).value
                assert estimate == pytest.approx(truth, rel=0.25)
