"""Golden accuracy regression: frozen dataset, 20 queries, frozen error bars.

The paper's headline result (Fig. 8) is PairwiseHist's relative error at
a given synopsis size.  This test freezes a deterministic dataset and 20
representative queries through the partitioned service stack, with a
per-query relative-error ceiling ~2.5-3x the error measured when the
bound was frozen — so a future refactor of the builder, merge, or service
layers cannot silently degrade accuracy.  Exact truths are recomputed at
runtime (they are a property of the frozen dataset, not of the engine).

Known weakness, frozen as-is: merged categorical histograms smear counts
across small categories (see ROADMAP "per-category marginal sketch"), so
the two categorical-equality queries carry deliberately loose ceilings —
they still catch *further* degradation.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_simple_table

from repro import PairwiseHistParams, QueryService, parse_query
from repro.exactdb.executor import ExactQueryEngine

ROWS = 4_000
SEED = 77
PARTITION_SIZE = 1_000

#: (sql, max relative error). Bounds frozen 2026-07 against the PR 2 stack.
GOLDEN_QUERIES = [
    ("SELECT COUNT(*) FROM golden", 0.005),
    ("SELECT COUNT(x) FROM golden WHERE x > 25", 0.010),
    ("SELECT COUNT(x) FROM golden WHERE x > 10 AND x < 90", 0.010),
    ("SELECT COUNT(*) FROM golden WHERE category = 'alpha'", 0.350),
    ("SELECT COUNT(*) FROM golden WHERE category = 'delta'", 1.500),
    ("SELECT COUNT(x) FROM golden WHERE x < 20 OR x > 80", 0.010),
    ("SELECT COUNT(w) FROM golden WHERE w >= 5", 0.005),
    ("SELECT AVG(x) FROM golden", 0.005),
    ("SELECT AVG(x) FROM golden WHERE y > 100", 0.005),
    ("SELECT AVG(y) FROM golden WHERE x > 20 AND x < 60", 0.010),
    ("SELECT AVG(z) FROM golden WHERE z < 30", 0.005),
    ("SELECT AVG(x) FROM golden WHERE category = 'beta'", 0.060),
    ("SELECT SUM(x) FROM golden", 0.005),
    ("SELECT SUM(z) FROM golden WHERE x < 70", 0.080),
    ("SELECT SUM(y) FROM golden WHERE w < 4", 0.010),
    ("SELECT MIN(x) FROM golden WHERE x > 30", 0.030),
    ("SELECT MAX(y) FROM golden WHERE x < 50", 0.150),
    ("SELECT MEDIAN(x) FROM golden WHERE y > 50", 0.005),
    ("SELECT VAR(x) FROM golden WHERE x > 10", 0.015),
    ("SELECT AVG(with_nulls) FROM golden WHERE x > 40", 0.005),
]

#: Whole-workload regression bars (Fig. 8 reports the median).
MEDIAN_ERROR_CEILING = 0.010
BOUNDS_CORRECT_FLOOR = 0.60


@pytest.fixture(scope="module")
def golden_setup():
    table = make_simple_table(rows=ROWS, seed=SEED, name="golden")
    service = QueryService(partition_size=PARTITION_SIZE)
    service.register_table(
        table, params=PairwiseHistParams.with_defaults(sample_size=None, seed=1)
    )
    return service, ExactQueryEngine(table)


def relative_error(estimate: float, truth: float) -> float:
    denominator = abs(truth) if truth != 0 else 1.0
    return abs(estimate - truth) / denominator


@pytest.mark.parametrize("sql,ceiling", GOLDEN_QUERIES)
def test_golden_query_within_frozen_error_bound(golden_setup, sql, ceiling):
    service, exact = golden_setup
    estimate = service.execute_scalar(sql)
    truth = exact.execute_scalar(parse_query(sql))
    error = relative_error(estimate.value, truth)
    assert error <= ceiling, (
        f"{sql}: relative error {error:.4f} exceeds frozen ceiling {ceiling}"
        f" (truth={truth:.4f}, estimate={estimate.value:.4f})"
    )
    assert estimate.lower <= estimate.value <= estimate.upper


def test_golden_workload_median_error(golden_setup):
    service, exact = golden_setup
    errors = []
    in_bounds = []
    for sql, _ in GOLDEN_QUERIES:
        estimate = service.execute_scalar(sql)
        truth = exact.execute_scalar(parse_query(sql))
        errors.append(relative_error(estimate.value, truth))
        in_bounds.append(estimate.lower <= truth <= estimate.upper)
    median = float(np.median(errors))
    assert median <= MEDIAN_ERROR_CEILING, f"median error {median:.4f} regressed"
    rate = float(np.mean(in_bounds))
    assert rate >= BOUNDS_CORRECT_FLOOR, f"bounds-correct rate {rate:.2f} regressed"


def test_golden_accuracy_survives_ingest(golden_setup):
    """The frozen bars hold after the service refreshes its synopsis."""
    table = make_simple_table(rows=ROWS, seed=SEED, name="golden_stream")
    extra = make_simple_table(rows=500, seed=SEED + 1, name="golden_stream")
    service = QueryService(partition_size=PARTITION_SIZE)
    service.register_table(
        table, params=PairwiseHistParams.with_defaults(sample_size=None, seed=1)
    )
    service.ingest("golden_stream", extra)
    exact = ExactQueryEngine(table.concat(extra))
    for sql in (
        "SELECT COUNT(*) FROM golden_stream",
        "SELECT AVG(x) FROM golden_stream WHERE y > 100",
        "SELECT SUM(y) FROM golden_stream WHERE w < 4",
    ):
        estimate = service.execute_scalar(sql)
        truth = exact.execute_scalar(parse_query(sql))
        assert relative_error(estimate.value, truth) <= 0.02
