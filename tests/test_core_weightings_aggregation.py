"""Tests for bin weightings (Eq. 24–29) and the Table 3 aggregation formulas."""

import numpy as np
import pytest

from repro.core.aggregation import AqpEstimate, aggregate
from repro.core.builder import build_pairwise_hist
from repro.core.params import PairwiseHistParams
from repro.core.weightings import PredicateEvaluator
from repro.sql.ast import AggregateFunction, ComparisonOp, Condition, LogicalOp, PredicateNode


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    rows = 8000
    # Skewed data (like the paper's sensor / trip datasets) so refinement
    # produces several bins per column.
    x = np.round(np.clip(rng.gamma(2.0, 150.0, rows), 0, 1000))
    y = np.round(np.clip(0.5 * x + rng.normal(0, 40, rows), 0, None))
    z = np.round(rng.uniform(0, 100, rows))
    return {"x": x, "y": y, "z": z}


@pytest.fixture(scope="module")
def synopsis(data):
    params = PairwiseHistParams(sample_size=None, min_points=100, alpha=0.001, seed=0)
    return build_pairwise_hist(data, params)


@pytest.fixture(scope="module")
def evaluator(synopsis):
    return PredicateEvaluator(synopsis, "x")


def true_count(data, mask) -> float:
    return float(mask.sum())


class TestWeightings:
    def test_no_predicate_returns_bin_counts(self, synopsis, evaluator):
        weights = evaluator.weightings(None)
        np.testing.assert_allclose(weights.estimate, synopsis.hist1d["x"].counts)
        assert weights.total == pytest.approx(len(next(iter(synopsis.hist1d.values())).counts) and 8000)

    def test_same_column_predicate(self, data, evaluator):
        condition = Condition("x", ComparisonOp.LT, 500.0)
        weights = evaluator.weightings(condition)
        assert weights.total == pytest.approx(true_count(data, data["x"] < 500), rel=0.05)

    def test_other_column_predicate_uses_pair_histogram(self, data, evaluator):
        condition = Condition("y", ComparisonOp.GT, 300.0)
        weights = evaluator.weightings(condition)
        assert weights.total == pytest.approx(true_count(data, data["y"] > 300), rel=0.05)

    def test_and_of_two_columns(self, data, evaluator):
        predicate = PredicateNode(
            LogicalOp.AND,
            [Condition("y", ComparisonOp.GT, 200.0), Condition("z", ComparisonOp.LT, 50.0)],
        )
        weights = evaluator.weightings(predicate)
        truth = true_count(data, (data["y"] > 200) & (data["z"] < 50))
        assert weights.total == pytest.approx(truth, rel=0.1)

    def test_or_of_two_columns(self, data, evaluator):
        predicate = PredicateNode(
            LogicalOp.OR,
            [Condition("x", ComparisonOp.LT, 100.0), Condition("z", ComparisonOp.GT, 90.0)],
        )
        weights = evaluator.weightings(predicate)
        truth = true_count(data, (data["x"] < 100) | (data["z"] > 90))
        assert weights.total == pytest.approx(truth, rel=0.1)

    def test_same_column_range_consolidation(self, data, evaluator):
        predicate = PredicateNode(
            LogicalOp.AND,
            [Condition("x", ComparisonOp.GT, 200.0), Condition("x", ComparisonOp.LT, 400.0)],
        )
        weights = evaluator.weightings(predicate)
        truth = true_count(data, (data["x"] > 200) & (data["x"] < 400))
        assert weights.total == pytest.approx(truth, rel=0.05)

    def test_bounds_bracket_estimate(self, evaluator):
        predicate = PredicateNode(
            LogicalOp.AND,
            [Condition("y", ComparisonOp.GT, 100.0), Condition("z", ComparisonOp.LT, 80.0)],
        )
        weights = evaluator.weightings(predicate)
        assert (weights.lower <= weights.estimate + 1e-9).all()
        assert (weights.upper >= weights.estimate - 1e-9).all()
        assert (weights.lower >= 0).all()

    def test_impossible_predicate_gives_zero(self, evaluator):
        predicate = PredicateNode(
            LogicalOp.AND,
            [Condition("x", ComparisonOp.GT, 5000.0), Condition("x", ComparisonOp.LT, -10.0)],
        )
        weights = evaluator.weightings(predicate)
        assert weights.total == 0.0
        assert weights.is_empty

    def test_empty_flag_false_for_matching_predicate(self, evaluator):
        weights = evaluator.weightings(Condition("x", ComparisonOp.GE, 0.0))
        assert not weights.is_empty


class TestAggregationFormulas:
    @pytest.fixture(scope="class")
    def hist(self, synopsis):
        return synopsis.hist1d["x"]

    @pytest.fixture(scope="class")
    def full_weights(self, evaluator):
        return evaluator.weightings(None)

    def test_count_scales_by_sampling_ratio(self, hist, full_weights):
        result = aggregate(AggregateFunction.COUNT, hist, full_weights, sampling_ratio=0.5, min_points=100)
        assert result.value == pytest.approx(16_000)

    def test_count_of_everything(self, data, hist, full_weights):
        result = aggregate(AggregateFunction.COUNT, hist, full_weights, 1.0, 100)
        assert result.value == pytest.approx(len(data["x"]))
        assert result.lower <= result.value <= result.upper

    def test_sum_close_to_truth(self, data, hist, full_weights):
        result = aggregate(AggregateFunction.SUM, hist, full_weights, 1.0, 100)
        assert result.value == pytest.approx(data["x"].sum(), rel=0.02)

    def test_avg_close_to_truth_and_bounded(self, data, hist, full_weights):
        result = aggregate(AggregateFunction.AVG, hist, full_weights, 1.0, 100)
        assert result.value == pytest.approx(data["x"].mean(), rel=0.02)
        assert result.lower <= result.value <= result.upper

    def test_min_max_match_extrema(self, data, hist, full_weights):
        minimum = aggregate(AggregateFunction.MIN, hist, full_weights, 1.0, 100, single_column=True)
        maximum = aggregate(AggregateFunction.MAX, hist, full_weights, 1.0, 100, single_column=True)
        assert minimum.value == pytest.approx(data["x"].min(), abs=5)
        assert maximum.value == pytest.approx(data["x"].max(), abs=5)
        assert minimum.value <= maximum.value

    def test_median_close_to_truth(self, data, hist, full_weights):
        result = aggregate(AggregateFunction.MEDIAN, hist, full_weights, 1.0, 100)
        assert result.value == pytest.approx(np.median(data["x"]), rel=0.05)
        assert result.lower <= result.value <= result.upper

    def test_var_close_to_truth(self, data, hist, full_weights):
        result = aggregate(AggregateFunction.VAR, hist, full_weights, 1.0, 100)
        assert result.value == pytest.approx(data["x"].var(), rel=0.15)

    def test_empty_weights_count_zero_others_nan(self, hist, evaluator):
        empty = evaluator.weightings(Condition("x", ComparisonOp.GT, 1e9))
        count = aggregate(AggregateFunction.COUNT, hist, empty, 1.0, 100)
        assert count.value == 0.0
        for func in (AggregateFunction.AVG, AggregateFunction.SUM, AggregateFunction.MEDIAN,
                     AggregateFunction.MIN, AggregateFunction.MAX, AggregateFunction.VAR):
            assert np.isnan(aggregate(func, hist, empty, 1.0, 100).value)

    @pytest.mark.parametrize(
        "func",
        [AggregateFunction.COUNT, AggregateFunction.SUM, AggregateFunction.AVG,
         AggregateFunction.MEDIAN, AggregateFunction.VAR],
    )
    def test_bounds_are_ordered(self, hist, evaluator, func):
        weights = evaluator.weightings(Condition("y", ComparisonOp.GT, 150.0))
        result = aggregate(func, hist, weights, 1.0, 100)
        assert result.lower <= result.upper

    def test_predicate_restricted_avg(self, data, hist, evaluator):
        weights = evaluator.weightings(Condition("x", ComparisonOp.LT, 300.0))
        result = aggregate(AggregateFunction.AVG, hist, weights, 1.0, 100)
        truth = data["x"][data["x"] < 300].mean()
        assert result.value == pytest.approx(truth, rel=0.05)


class TestAqpEstimate:
    def test_bounds_are_swapped_if_reversed(self):
        estimate = AqpEstimate(value=1.0, lower=5.0, upper=0.0)
        assert estimate.lower <= estimate.upper

    def test_contains_and_width(self):
        estimate = AqpEstimate(value=10.0, lower=8.0, upper=12.0)
        assert estimate.contains(9.0)
        assert not estimate.contains(20.0)
        assert estimate.width == pytest.approx(4.0)
