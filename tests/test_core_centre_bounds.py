"""Tests for Theorem 1 weighted-centre bounds (Eq. 4 and Eq. 10)."""

import numpy as np
import pytest

from repro.core.centre_bounds import (
    non_passing_centre_bounds,
    passing_centre_bounds,
    weighted_centre_bounds,
)


class TestPassingBounds:
    def test_bounds_bracket_uniform_mean(self):
        # For uniformly distributed data the true weighted centre is the
        # midpoint; Theorem 1 bounds must contain it.
        lower, upper = passing_centre_bounds(count=10_000, v_minus=0.0, v_plus=100.0, unique=5_000, alpha=0.001)
        assert lower <= 50.0 <= upper

    def test_bounds_within_extrema(self):
        lower, upper = passing_centre_bounds(1000, 10.0, 20.0, 500, 0.01)
        assert 10.0 <= lower <= upper <= 20.0

    def test_larger_count_gives_tighter_bounds(self):
        narrow = passing_centre_bounds(100_000, 0.0, 100.0, 1_000, 0.001)
        wide = passing_centre_bounds(1_000, 0.0, 100.0, 1_000, 0.001)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_empty_bin_returns_extrema(self):
        assert passing_centre_bounds(0, 1.0, 2.0, 0, 0.01) == (1.0, 2.0)

    def test_single_unique_value_collapses_to_midpoint(self):
        lower, upper = passing_centre_bounds(100, 5.0, 5.0, 1, 0.01)
        assert lower == upper

    def test_monte_carlo_uniform_centres_respect_bounds(self):
        rng = np.random.default_rng(0)
        count, v_minus, v_plus = 5_000, 0.0, 1.0
        lower, upper = passing_centre_bounds(count, v_minus, v_plus, 2_000, alpha=0.001)
        for _ in range(20):
            sample = rng.uniform(v_minus, v_plus, count)
            assert lower - 0.02 <= sample.mean() <= upper + 0.02


class TestNonPassingBounds:
    def test_bounds_within_extrema(self):
        lower, upper = non_passing_centre_bounds(50, 0.0, 10.0, 5, min_spacing=1.0)
        assert 0.0 <= lower <= upper <= 10.0

    def test_single_unique_value(self):
        assert non_passing_centre_bounds(10, 3.0, 3.0, 1, 1.0) == (3.0, 3.0)

    def test_empty_bin(self):
        assert non_passing_centre_bounds(0, 1.0, 4.0, 0, 1.0) == (1.0, 4.0)

    def test_more_unique_values_shift_bounds_inwards(self):
        few = non_passing_centre_bounds(100, 0.0, 100.0, 2, 1.0)
        many = non_passing_centre_bounds(100, 0.0, 100.0, 10, 1.0)
        assert many[0] >= few[0]
        assert many[1] <= few[1]

    def test_worst_case_mean_is_contained(self):
        # h - u + 1 points at the minimum, remaining u - 1 points packed just
        # above it: the paper's worst case for the lower weighted centre.
        count, unique, v_minus, v_plus, mu = 20, 4, 0.0, 100.0, 1.0
        points = np.concatenate([np.full(count - unique + 1, v_minus), v_minus + mu * np.arange(1, unique)])
        lower, upper = non_passing_centre_bounds(count, v_minus, v_plus, unique, mu)
        assert lower <= points.mean() + 1e-9
        assert upper >= (v_plus - (points - v_minus)).mean() - 1e-9


class TestVectorisedBounds:
    def test_shapes_and_ordering(self):
        counts = np.array([0.0, 5.0, 5_000.0])
        v_minus = np.array([0.0, 0.0, 0.0])
        v_plus = np.array([1.0, 10.0, 100.0])
        unique = np.array([0.0, 3.0, 1_000.0])
        lower, upper = weighted_centre_bounds(counts, v_minus, v_plus, unique, min_points=100, alpha=0.001)
        assert lower.shape == counts.shape
        assert (lower <= upper).all()
        assert (lower >= v_minus).all()
        assert (upper <= v_plus).all()

    def test_passing_and_non_passing_paths_selected_by_min_points(self):
        counts = np.array([50.0, 500.0])
        v_minus = np.zeros(2)
        v_plus = np.full(2, 100.0)
        unique = np.full(2, 40.0)
        lower, upper = weighted_centre_bounds(counts, v_minus, v_plus, unique, min_points=100, alpha=0.001)
        small = non_passing_centre_bounds(50, 0.0, 100.0, 40, 1.0)
        large = passing_centre_bounds(500, 0.0, 100.0, 40, 0.001)
        assert lower[0] == pytest.approx(small[0])
        assert upper[1] == pytest.approx(large[1])
