"""Unit tests for the bit-level writer / reader."""

import pytest

from repro.util.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer_produces_no_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_single_bit(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.getvalue() == b"\x80"

    def test_eight_bits_form_one_byte(self):
        writer = BitWriter()
        for bit in [1, 0, 1, 0, 1, 0, 1, 0]:
            writer.write_bit(bit)
        assert writer.getvalue() == b"\xaa"

    def test_partial_byte_is_zero_padded(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == b"\xa0"

    def test_write_bits_fixed_width(self):
        writer = BitWriter()
        writer.write_bits(5, 8)
        assert writer.getvalue() == bytes([5])

    def test_write_bits_rejects_overflow(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(4, 2)

    def test_write_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(-1, 4)

    def test_write_unary(self):
        writer = BitWriter()
        writer.write_unary(3)
        # Three ones then a zero -> 1110 0000
        assert writer.getvalue() == b"\xe0"

    def test_unary_rejects_negative(self):
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)

    def test_bit_length_counts_written_bits(self):
        writer = BitWriter()
        writer.write_bits(7, 3)
        writer.write_bit(0)
        assert writer.bit_length == 4
        assert len(writer) == 4


class TestBitReader:
    def test_round_trip_fixed_width(self):
        writer = BitWriter()
        values = [0, 1, 5, 255, 1023]
        for value in values:
            writer.write_bits(value, 10)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bits(10) for _ in values] == values

    def test_round_trip_unary(self):
        writer = BitWriter()
        for value in [0, 1, 7, 20]:
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_unary() for _ in range(4)] == [0, 1, 7, 20]

    def test_mixed_round_trip(self):
        writer = BitWriter()
        writer.write_unary(2)
        writer.write_bits(13, 4)
        writer.write_bit(1)
        reader = BitReader(writer.getvalue())
        assert reader.read_unary() == 2
        assert reader.read_bits(4) == 13
        assert reader.read_bit() == 1

    def test_reader_past_end_raises(self):
        reader = BitReader(b"")
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_position_and_remaining(self):
        reader = BitReader(b"\xff")
        assert reader.remaining_bits == 8
        reader.read_bits(3)
        assert reader.position == 3
        assert reader.remaining_bits == 5

    def test_zero_width_read_returns_zero(self):
        reader = BitReader(b"\xff")
        assert reader.read_bits(0) == 0

    def test_wide_field_round_trip(self):
        # Fields wider than a machine word take the arbitrary-precision path.
        value = (1 << 100) + 12345
        writer = BitWriter()
        writer.write_bits(value, 104)
        assert BitReader(writer.getvalue()).read_bits(104) == value

    def test_long_unary_round_trip(self):
        # Longer than the reader's zero-scan window.
        writer = BitWriter()
        writer.write_unary(1000)
        writer.write_bits(3, 2)
        reader = BitReader(writer.getvalue())
        assert reader.read_unary() == 1000
        assert reader.read_bits(2) == 3


class TestBatchOperations:
    def test_array_round_trip_matches_scalar_path(self):
        import numpy as np

        values = np.array([0, 1, 5, 255, 1023, 512])
        batch = BitWriter()
        batch.write_bits_array(values, 10)
        scalar = BitWriter()
        for value in values:
            scalar.write_bits(int(value), 10)
        assert batch.getvalue() == scalar.getvalue()
        reader = BitReader(batch.getvalue())
        np.testing.assert_array_equal(reader.read_bits_array(len(values), 10), values)

    def test_empty_array_writes_nothing(self):
        import numpy as np

        writer = BitWriter()
        writer.write_bits_array(np.array([], dtype=np.int64), 8)
        assert writer.getvalue() == b""
        assert writer.bit_length == 0

    def test_array_rejects_negative_and_overflow(self):
        import numpy as np
        import pytest

        with pytest.raises(ValueError):
            BitWriter().write_bits_array(np.array([-1]), 4)
        with pytest.raises(ValueError):
            BitWriter().write_bits_array(np.array([16]), 4)

    def test_read_array_past_end_raises(self):
        import pytest

        with pytest.raises(EOFError):
            BitReader(b"\x00").read_bits_array(3, 10)
