"""Shared fixtures for the test suite.

Heavy objects (datasets, engines, baselines) are session-scoped so the suite
stays fast; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ExactQueryEngine,
    PairwiseHistEngine,
    PairwiseHistParams,
    Table,
    load_dataset,
)
from repro.data.schema import ColumnSchema, ColumnType, TableSchema


def make_simple_table(rows: int = 2000, seed: int = 0, name: str = "simple") -> Table:
    """A small mixed-type table with known structure used across unit tests."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 100, size=rows)
    y = 2.0 * x + rng.normal(0, 5, size=rows)
    z = rng.exponential(10, size=rows)
    w = rng.integers(0, 10, size=rows).astype(float)
    with_nulls = rng.uniform(0, 50, size=rows)
    with_nulls[rng.random(rows) < 0.1] = np.nan
    categories = np.empty(rows, dtype=object)
    labels = ["alpha", "beta", "gamma", "delta"]
    probabilities = [0.5, 0.3, 0.15, 0.05]
    draws = rng.choice(len(labels), size=rows, p=probabilities)
    for i, d in enumerate(draws):
        categories[i] = labels[d]
    schema = TableSchema(
        [
            ColumnSchema("x", ColumnType.NUMERIC, decimals=2),
            ColumnSchema("y", ColumnType.NUMERIC, decimals=2),
            ColumnSchema("z", ColumnType.NUMERIC, decimals=2),
            ColumnSchema("w", ColumnType.NUMERIC, decimals=0),
            ColumnSchema("with_nulls", ColumnType.NUMERIC, decimals=2),
            ColumnSchema("category", ColumnType.CATEGORICAL),
        ]
    )
    return Table(
        name=name,
        schema=schema,
        columns={
            "x": np.round(x, 2),
            "y": np.round(y, 2),
            "z": np.round(z, 2),
            "w": w,
            "with_nulls": np.round(with_nulls, 2),
            "category": categories,
        },
    )


@pytest.fixture(scope="session")
def simple_table() -> Table:
    return make_simple_table()


@pytest.fixture(scope="session")
def power_table() -> Table:
    return load_dataset("power", rows=5000, seed=3)


@pytest.fixture(scope="session")
def flights_table() -> Table:
    return load_dataset("flights", rows=3000, seed=3)


@pytest.fixture(scope="session")
def simple_engine(simple_table) -> PairwiseHistEngine:
    params = PairwiseHistParams.with_defaults(sample_size=2000, seed=1)
    return PairwiseHistEngine.from_table(simple_table, params=params)


@pytest.fixture(scope="session")
def power_engine(power_table) -> PairwiseHistEngine:
    params = PairwiseHistParams.with_defaults(sample_size=3000, seed=1)
    return PairwiseHistEngine.from_table(power_table, params=params)


@pytest.fixture(scope="session")
def simple_exact(simple_table) -> ExactQueryEngine:
    return ExactQueryEngine(simple_table)


@pytest.fixture(scope="session")
def power_exact(power_table) -> ExactQueryEngine:
    return ExactQueryEngine(power_table)
