"""Answer-quality observability tests: EXPLAIN, auditor, workload log.

What is pinned here:

* ``split_explain`` and the workload log's template normalization (the
  literal → ``?`` rendering dashboards and the auditor key on);
* the structured EXPLAIN plan, single node and cluster, in *both* wire
  dialects and through the ``EXPLAIN <sql>`` SQL-prefix form — and the
  agreement guarantee: a single-node EXPLAIN's ``gather`` section equals
  the cluster front end's actual fan-out plan, and the scattered SQL the
  shards really receive is the one the plan printed;
* the accuracy auditor against the frozen golden dataset: its observed
  per-query relative errors equal the golden harness's reference errors
  **bit-for-bit** (same cached estimate, lossless GD reconstruction for
  the truth);
* the bound-violation alarm: a deliberately corrupted synopsis raises
  the violation counter and emits a structured ``bound_violation`` JSON
  alert, on a single node and in a 2-shard cluster drill where the
  daemon detects the seeded corruption within its audit interval while a
  healthy pre-filtered workload audits clean (zero violations);
* the satellites: ``/healthz`` / ``/readyz`` + build-info gauges on the
  metrics endpoint, and the size-rotated slow-query log.
"""

from __future__ import annotations

import argparse
import asyncio
import io
import json
import time
import urllib.error
import urllib.request

import pytest
from conftest import make_simple_table
from test_golden_accuracy import (
    GOLDEN_QUERIES,
    PARTITION_SIZE,
    ROWS,
    SEED,
    relative_error,
)

from repro import (
    AccuracyAuditor,
    AsyncQueryService,
    ClusterQueryService,
    PairwiseHistParams,
    QueryServer,
    QueryService,
    WorkloadLog,
    __version__,
    parse_query,
)
from repro.audit.explain import gather_section, split_explain
from repro.audit.workload import normalize_sql
from repro.cluster.gather import plan_query
from repro.exactdb.executor import ExactQueryEngine
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.obs.exposition import MetricsHTTPServer
from repro.service.database import Database
from repro.service.wire import ClusterClient, PipelinedClient

PARAMS = PairwiseHistParams.with_defaults(sample_size=None, seed=1)


def counter_value(name: str, **labels) -> float:
    """Current value of one series in the global registry (0 if absent)."""
    snapshot = obs_metrics.REGISTRY.snapshot()
    for series in snapshot.get(name, {}).get("series", []):
        if series["labels"] == labels:
            return series["value"]
    return 0.0


def alert_events(stream: io.StringIO) -> list[dict]:
    return [
        json.loads(line)
        for line in stream.getvalue().splitlines()
        if line.startswith("{")
    ]


def corrupt_synopsis(service, table_name: str, column: str = "x") -> None:
    """Triple one histogram's counts and commit the sabotage.

    The GD store (the auditor's ground truth) is untouched, so estimates
    drift while exact recomputation stays correct — exactly the failure
    the auditor exists to catch.  The version bump mirrors an ingest
    commit so the result cache and the auditor's truth cache both see a
    new synopsis generation.
    """
    managed = service.table(table_name)
    engine = managed.engine
    engine.synopsis.hist1d[column].counts *= 3.0
    engine.refresh_synopsis(engine.synopsis)  # drop evaluator caches
    managed.synopsis_version = next(Database._version_counter)


# --------------------------------------------------------------------------- #
# split_explain / normalization


class TestSplitExplain:
    def test_prefix_forms(self):
        assert split_explain("SELECT 1 FROM t") is None
        assert split_explain("EXPLAIN SELECT AVG(x) FROM t") == (
            False,
            "SELECT AVG(x) FROM t",
        )
        assert split_explain("  explain analyze\n SELECT COUNT(*) FROM t ") == (
            True,
            "SELECT COUNT(*) FROM t",
        )

    def test_normalize_sql_strips_literals(self):
        assert (
            normalize_sql("SELECT AVG(x) FROM t WHERE x > 10 AND y < 5.5")
            == "SELECT AVG(x) FROM t WHERE x > ? AND y < ?;"
        )
        # Same template regardless of the literal values.
        assert normalize_sql("SELECT AVG(x) FROM t WHERE x > 99 AND y < 1") == (
            normalize_sql("SELECT AVG(x) FROM t WHERE x > 10 AND y < 5.5")
        )


# --------------------------------------------------------------------------- #
# Workload log


class TestWorkloadLog:
    def test_observe_groups_by_template_and_keeps_last_sql(self):
        log = WorkloadLog(capacity=8)
        log.observe("SELECT AVG(x) FROM t WHERE x > 10", 0.010)
        log.observe("SELECT AVG(x) FROM t WHERE x > 20", 0.030)
        log.observe("SELECT COUNT(*) FROM t", 0.001)
        snapshot = log.snapshot()
        assert snapshot["capacity"] == 8 and snapshot["evicted"] == 0
        assert [t["template"] for t in snapshot["templates"]] == [
            "SELECT AVG(x) FROM t WHERE x > ?;",  # busiest first
            "SELECT COUNT(*) FROM t;",
        ]
        avg = snapshot["templates"][0]
        assert avg["count"] == 2
        assert avg["last_sql"] == "SELECT AVG(x) FROM t WHERE x > 20"
        assert avg["latency"]["total_seconds"] == pytest.approx(0.040)
        assert avg["latency"]["max_seconds"] == pytest.approx(0.030)

    def test_capacity_evicts_least_recently_used(self):
        log = WorkloadLog(capacity=2)
        log.observe("SELECT AVG(x) FROM t", 0.0)
        log.observe("SELECT AVG(y) FROM t", 0.0)
        log.observe("SELECT AVG(z) FROM t", 0.0)  # evicts AVG(x)
        snapshot = log.snapshot()
        templates = {t["template"] for t in snapshot["templates"]}
        assert templates == {"SELECT AVG(y) FROM t;", "SELECT AVG(z) FROM t;"}
        assert snapshot["evicted"] == 1

    def test_unparseable_sql_is_ignored(self):
        log = WorkloadLog()
        log.observe("this is not sql", 0.0)
        assert log.snapshot()["templates"] == []

    def test_replay_rotates_across_templates(self):
        log = WorkloadLog()
        for column in ("x", "y", "z"):
            log.observe(f"SELECT AVG({column}) FROM t", 0.0)
        first = log.replay_samples(2)
        second = log.replay_samples(2)
        assert len(first) == 2 and len(second) == 2
        # Round-robin: two passes of 2 cover all 3 templates.
        assert set(first) | set(second) == {
            "SELECT AVG(x) FROM t",
            "SELECT AVG(y) FROM t",
            "SELECT AVG(z) FROM t",
        }

    def test_record_audit_feeds_the_template_rollup(self):
        log = WorkloadLog()
        log.observe("SELECT AVG(x) FROM t WHERE x > 10", 0.0)
        log.record_audit("SELECT AVG(x) FROM t WHERE x > 99", 0.25, True)
        log.record_audit("SELECT AVG(x) FROM t WHERE x > 10", 0.05, False)
        audit = log.snapshot()["templates"][0]["audit"]
        assert audit == {
            "audited": 2,
            "violations": 1,
            "error_sum": pytest.approx(0.30),
            "error_max": 0.25,
        }

    def test_merge_snapshots_sums_counts_and_maxes_maxes(self):
        def shard_log(count, latency):
            log = WorkloadLog(capacity=4)
            for _ in range(count):
                log.observe("SELECT COUNT(*) FROM t", latency)
            return log.snapshot()

        merged = WorkloadLog.merge_snapshots([shard_log(2, 0.010), shard_log(3, 0.002)])
        assert merged["capacity"] == 4
        entry = merged["templates"][0]
        assert entry["count"] == 5
        assert entry["latency"]["total_seconds"] == pytest.approx(0.026)
        assert entry["latency"]["max_seconds"] == pytest.approx(0.010)


# --------------------------------------------------------------------------- #
# EXPLAIN: single node


@pytest.fixture(scope="module")
def golden():
    table = make_simple_table(rows=ROWS, seed=SEED, name="golden")
    service = QueryService(partition_size=PARTITION_SIZE)
    service.register_table(table, params=PARAMS)
    return service, table


class TestExplainSingleNode:
    def test_plan_structure_is_pinned(self, golden):
        service, _ = golden
        sql = "SELECT AVG(x) FROM golden WHERE x > 25"
        service.execute_scalar(sql)  # warm parse + result caches
        plan = service.explain(sql)
        assert plan["sql"] == sql
        assert plan["node"] == "single"
        assert plan["query"] == {
            "table": "golden",
            "aggregations": ["AVG(x)"],
            "predicate": "x > 25",
            "group_by": None,
            "template": "SELECT AVG(x) FROM golden WHERE x > ?;",
        }
        assert plan["parse_cache"] == {"cached": True}
        assert plan["result_cache"]["cached"] is True
        assert plan["route"]["table"] == "golden"
        assert plan["route"]["rows"] == ROWS
        assert plan["route"]["partitions"] == ROWS // PARTITION_SIZE
        assert plan["route"]["partition_synopses"] == ROWS // PARTITION_SIZE
        assert plan["route"]["synopsis_version"] == plan["result_cache"]["synopsis_version"]
        (synopsis,) = plan["synopsis"]
        assert synopsis["aggregation"] == "AVG(x)"
        assert synopsis["weightings_column"] == "x"
        assert synopsis["single_column"] is True
        assert synopsis["histogram_bins"] > 0
        assert synopsis["bounds"]["method"] == "affine_inverse"
        gather = plan["gather"]
        assert gather["scattered_sql"] == str(plan_query(parse_query(sql)).scattered)
        assert gather["scattered_aggregations"] == ["AVG(x)", "COUNT(x)"]
        (avg_entry,) = gather["aggregations"]
        assert avg_entry["aggregation"] == "AVG(x)"
        assert avg_entry["companion_count_index"] == 1
        # AVG clamps into the predicate's range on the aggregated column.
        assert avg_entry["clamp"] == {"lower": 25.0, "upper": None}

    def test_count_bounds_are_passthrough_and_unclamped(self, golden):
        service, _ = golden
        plan = service.explain("SELECT COUNT(x) FROM golden WHERE x > 25")
        (synopsis,) = plan["synopsis"]
        assert synopsis["bounds"] == {"method": "count_passthrough"}
        (entry,) = plan["gather"]["aggregations"]
        assert entry["clamp"] is None

    def test_explain_does_not_execute_or_perturb_caches(self, golden):
        service, _ = golden
        sql = "SELECT SUM(z) FROM golden WHERE z < 17.5"
        first = service.explain(sql)
        assert first["result_cache"]["cached"] is False
        second = service.explain(sql)
        # Still uncached: EXPLAIN peeked, it never executed ...
        assert second["result_cache"]["cached"] is False
        # ... though it did warm the parse cache.
        assert second["parse_cache"]["cached"] is True

    def test_explain_analyze_attaches_result_and_span_tree(self, golden):
        service, _ = golden
        sql = "SELECT AVG(y) FROM golden WHERE x > 20 AND x < 60"
        plan = service.explain(sql, analyze=True)
        analysis = plan["analyze"]
        assert analysis["wall_seconds"] > 0.0
        (result,) = analysis["result"]["results"]
        assert result["lower"] <= result["value"] <= result["upper"]
        spans = analysis["spans"]
        assert all(s["trace_id"] == analysis["trace_id"] for s in spans)
        names = {s["name"] for s in spans}
        assert "explain_analyze" in names
        root = next(s for s in spans if s["name"] == "explain_analyze")
        children = [s for s in spans if s["parent_id"] == root["span_id"]]
        assert children  # per-stage timings hang off the analyze root
        assert all(s["duration"] is not None for s in spans)


# --------------------------------------------------------------------------- #
# EXPLAIN: cluster agreement


class TestExplainClusterAgreement:
    def test_single_node_gather_equals_cluster_fanout_plan(self):
        sql = "SELECT AVG(x) FROM sensors WHERE x > 10 AND x < 90"
        single = QueryService()
        single.register_table(
            make_simple_table(rows=400, seed=5, name="sensors"), params=PARAMS
        )
        cluster = ClusterQueryService(num_shards=2, mode="local")
        try:
            cluster.register_table(
                make_simple_table(rows=1200, seed=21, name="sensors"), params=PARAMS
            )
            # Shard-side workload logs record what the shards *actually*
            # receive during a scattered execution.
            for shard in cluster.shards:
                shard.service.workload_log = WorkloadLog()
            cluster.execute(sql)

            single_plan = single.explain(sql)
            cluster_plan = cluster.explain(sql)
            assert cluster_plan["node"] == "cluster"
            assert cluster_plan["route"]["fanout"] == 2
            assert cluster_plan["route"]["shards"] == [0, 1]
            assert cluster_plan["route"]["rows"] == 1200
            assert sum(cluster_plan["route"]["shard_rows"].values()) == 1200
            # The agreement guarantee: same recombination plan both ways.
            assert single_plan["gather"] == cluster_plan["gather"]
            assert single_plan["query"]["template"] == cluster_plan["query"]["template"]
            # And the scattered SQL the workers really executed is the
            # one the plan printed (via each shard's workload log).
            scattered_template = normalize_sql(cluster_plan["gather"]["scattered_sql"])
            for shard in cluster.shards:
                templates = {
                    t["template"]
                    for t in shard.service.workload_snapshot()["templates"]
                }
                assert templates == {scattered_template}
        finally:
            cluster.close()

    def test_gather_section_matches_planner_for_every_golden_query(self, golden):
        service, _ = golden
        for sql, _ceiling in GOLDEN_QUERIES:
            section = gather_section(parse_query(sql))
            assert section["scattered_sql"] == str(plan_query(parse_query(sql)).scattered)
            assert section == service.explain(sql)["gather"]


# --------------------------------------------------------------------------- #
# Accuracy auditor: golden bit-for-bit


class TestAuditorGolden:
    def test_auditor_errors_match_golden_reference_bit_for_bit(self):
        """On the frozen golden dataset the auditor's observed relative
        errors are the *same floats* the golden harness computes: the
        estimate comes from the shared result cache and the ground truth
        from lossless GD reconstruction of the same rows."""
        table = make_simple_table(rows=ROWS, seed=SEED, name="golden")
        service = QueryService(partition_size=PARTITION_SIZE)
        service.register_table(table, params=PARAMS)
        exact = ExactQueryEngine(table)
        alerts = io.StringIO()
        workload = WorkloadLog()
        service.workload_log = workload
        auditor = AccuracyAuditor(
            service,
            sample_rate=1.0,
            workload=workload,
            alert_stream=alerts,
            replay_limit=0,  # queue only: exactly one audit per query
        )
        service.auditor = auditor

        reference: dict[str, tuple[float, bool]] = {}
        for sql, _ceiling in GOLDEN_QUERIES:
            estimate = service.execute_scalar(sql)
            truth = exact.execute_scalar(parse_query(sql))
            reference[sql] = (
                relative_error(estimate.value, truth),
                not (estimate.lower <= truth <= estimate.upper),
            )

        audited = auditor.audit_now()
        assert audited == len(GOLDEN_QUERIES)
        observed = {record.sql: record for record in auditor.records}
        assert set(observed) == {sql for sql, _ in GOLDEN_QUERIES}
        for sql, (error, violated) in reference.items():
            record = observed[sql]
            assert record.error == error, f"{sql}: {record.error!r} != {error!r}"
            assert record.violated == violated
            assert record.table == "golden"
        # Counters agree with the harness's own bound bookkeeping.
        expected_violations = sum(1 for _, v in reference.values() if v)
        assert auditor.violations == expected_violations
        assert len(alert_events(alerts)) == expected_violations
        stats = auditor.stats()
        assert stats["error_max"] == max(e for e, _ in reference.values())

    def test_stats_merge_across_shards(self):
        healthy = {
            "enabled": True,
            "audited": 3,
            "violations": 0,
            "error_mean": 0.01,
            "error_max": 0.02,
        }
        sick = {
            "enabled": True,
            "audited": 1,
            "violations": 1,
            "error_mean": 0.5,
            "error_max": 0.5,
            "recent_violations": [{"sql": "SELECT COUNT(x) FROM t"}],
        }
        merged = AccuracyAuditor.merge_stats([healthy, sick])
        assert merged["enabled"] is True
        assert merged["shards"] == 2
        assert merged["audited"] == 4 and merged["violations"] == 1
        assert merged["error_max"] == 0.5
        assert merged["error_mean"] == pytest.approx((3 * 0.01 + 1 * 0.5) / 4)
        assert merged["recent_violations"] == [{"sql": "SELECT COUNT(x) FROM t"}]
        assert AccuracyAuditor.merge_stats([{"enabled": False}])["enabled"] is False


# --------------------------------------------------------------------------- #
# Accuracy auditor: corruption alarm


class TestAuditorAlarm:
    def test_corrupted_synopsis_raises_violation_counter_and_alerts(self):
        table = make_simple_table(rows=2000, seed=11, name="suspect")
        service = QueryService(partition_size=500)
        service.register_table(table, params=PARAMS)
        alerts = io.StringIO()
        auditor = AccuracyAuditor(service, sample_rate=1.0, alert_stream=alerts)
        service.auditor = auditor
        sql = "SELECT COUNT(x) FROM suspect WHERE x > 25"
        violations_before = counter_value(
            "aqp_audit_bound_violations_total", table="suspect"
        )
        audited_before = counter_value("aqp_audited_queries_total", table="suspect")

        # Healthy baseline: this query's bounds hold, the audit is clean.
        truth = ExactQueryEngine(table).execute_scalar(parse_query(sql))
        estimate = service.execute_scalar(sql)
        assert estimate.lower <= truth <= estimate.upper
        assert auditor.audit_now() == 1
        assert auditor.violations == 0
        assert alerts.getvalue() == ""

        corrupt_synopsis(service, "suspect")
        corrupted = service.execute_scalar(sql)
        assert corrupted.value > 2 * truth  # the sabotage took
        assert auditor.audit_now() == 1
        assert auditor.violations == 1
        record = auditor.records[-1]
        assert record.violated and record.truth == truth
        assert record.error > 0.5

        # The registry counters moved ...
        assert (
            counter_value("aqp_audit_bound_violations_total", table="suspect")
            - violations_before
        ) == 1
        assert (
            counter_value("aqp_audited_queries_total", table="suspect")
            - audited_before
        ) == 2
        # ... and the structured alert carries the full audit record.
        (alert,) = alert_events(alerts)
        assert alert["event"] == "bound_violation"
        assert alert["component"] == "audit"
        assert alert["level"] == "warning"
        assert alert["sql"] == sql and alert["table"] == "suspect"
        assert alert["truth"] == truth and alert["violated"] is True
        assert not (alert["lower"] <= alert["truth"] <= alert["upper"])

    def test_skips_are_counted_by_reason(self):
        service = QueryService()
        service.register_table(
            make_simple_table(rows=300, seed=2, name="tiny"), params=PARAMS
        )
        auditor = AccuracyAuditor(service, sample_rate=1.0)
        service.auditor = auditor
        auditor._queue.append("not sql at all")
        auditor._queue.append("SELECT AVG(x) FROM missing_table")
        auditor._queue.append("SELECT AVG(x) FROM tiny GROUP BY category")
        assert auditor.audit_now() == 0
        assert auditor.skipped == 3
        assert auditor.audited == 0

    def test_auditor_traffic_bypasses_the_hooks(self):
        """The auditor's own re-executions must not re-enter the workload
        log or the sample queue (no feedback loop)."""
        service = QueryService()
        service.register_table(
            make_simple_table(rows=300, seed=2, name="tiny"), params=PARAMS
        )
        workload = WorkloadLog()
        service.workload_log = workload
        auditor = AccuracyAuditor(service, sample_rate=1.0, workload=workload)
        service.auditor = auditor
        service.execute_scalar("SELECT AVG(x) FROM tiny")
        assert auditor.audit_now() >= 1
        # One live observation; the audit re-execution added nothing.
        (entry,) = workload.snapshot()["templates"]
        assert entry["count"] == 1
        assert entry["audit"]["audited"] >= 1
        assert len(auditor._queue) == 0


# --------------------------------------------------------------------------- #
# Cluster drill: healthy workload audits clean, seeded corruption alarms


class TestClusterAuditDrill:
    CANDIDATES = [
        "SELECT COUNT(x) FROM sensors WHERE x > 25",
        "SELECT COUNT(*) FROM sensors",
        "SELECT AVG(x) FROM sensors WHERE x > 10 AND x < 90",
        "SELECT SUM(y) FROM sensors WHERE w < 4",
        "SELECT AVG(z) FROM sensors WHERE z < 30",
    ]

    @staticmethod
    def _attach_auditors(cluster, alerts, interval=3600.0):
        auditors = []
        for shard in cluster.shards:
            workload = WorkloadLog()
            shard.service.workload_log = workload
            auditor = AccuracyAuditor(
                shard.service,
                sample_rate=1.0,
                interval_seconds=interval,
                workload=workload,
                alert_stream=alerts,
            )
            shard.service.auditor = auditor
            auditors.append(auditor)
        return auditors

    def test_two_shard_drill(self):
        cluster = ClusterQueryService(num_shards=2, mode="local")
        try:
            cluster.register_table(
                make_simple_table(rows=1200, seed=21, name="sensors"), params=PARAMS
            )

            # Phase A — dry run to pre-filter: the paper's bounds are not
            # guaranteed on every query (the golden harness floors the
            # bounds-correct rate at 0.60, not 1.0), so the "healthy ⇒
            # zero violations" drill runs on queries whose bounds hold.
            dry_alerts = io.StringIO()
            dry = self._attach_auditors(cluster, dry_alerts)
            for sql in self.CANDIDATES:
                cluster.execute(sql)
            for auditor in dry:
                auditor.audit_now()
            dirty_sqls = {
                record.sql
                for auditor in dry
                for record in auditor.records
                if record.violated
            }
            clean = [
                sql
                for sql in self.CANDIDATES
                if str(plan_query(parse_query(sql)).scattered) not in dirty_sqls
            ]
            count_sql = next(s for s in clean if s.startswith("SELECT COUNT(x)"))

            # Phase B — healthy workload, fresh auditors: zero violations.
            alerts = io.StringIO()
            auditors = self._attach_auditors(cluster, alerts)
            for sql in clean:
                cluster.execute(sql)
            for auditor in auditors:
                assert auditor.audit_now() >= len(clean)
                assert auditor.violations == 0
            assert alerts.getvalue() == ""
            stats = cluster.audit_stats()
            assert stats["enabled"] is True and stats["shards"] == 2
            assert stats["audited"] >= 2 * len(clean)
            assert stats["violations"] == 0
            # The merged workload log sums both shards' template counts.
            merged = cluster.workload()
            by_template = {t["template"]: t for t in merged["templates"]}
            count_template = normalize_sql(
                str(plan_query(parse_query(count_sql)).scattered)
            )
            assert by_template[count_template]["count"] >= 2  # one per shard

            # Phase C — seed a bound-violating synopsis on shard 0 and
            # let the *daemon* catch it within one audit interval.
            for auditor in auditors:
                auditor.interval_seconds = 0.1
                auditor.start()
            try:
                corrupt_synopsis(cluster.shards[0].service, "sensors")
                violations_before = sum(a.violations for a in auditors)
                cluster.execute(count_sql)
                deadline = time.perf_counter() + 10.0
                while time.perf_counter() < deadline:
                    if sum(a.violations for a in auditors) > violations_before:
                        break
                    time.sleep(0.05)
                assert sum(a.violations for a in auditors) > violations_before
                assert auditors[0].violations >= 1  # the corrupted shard
            finally:
                for auditor in auditors:
                    auditor.stop()
            events = alert_events(alerts)
            assert any(e["event"] == "bound_violation" for e in events)
            stats = cluster.audit_stats()
            assert stats["violations"] >= 1
            assert stats["recent_violations"]
        finally:
            cluster.close()


# --------------------------------------------------------------------------- #
# Wire ops (both dialects)


def run_async(coroutine):
    return asyncio.run(coroutine)


async def serve(scenario, **server_kwargs):
    async with AsyncQueryService(partition_size=600, max_workers=2) as svc:
        await svc.register_table(
            make_simple_table(rows=1200, seed=50, name="stream"), params=PARAMS
        )
        svc.service.workload_log = WorkloadLog()
        svc.service.auditor = AccuracyAuditor(
            svc.service,
            sample_rate=1.0,
            interval_seconds=3600.0,
            workload=svc.service.workload_log,
        )
        async with QueryServer(svc, **server_kwargs) as server:
            return await asyncio.to_thread(scenario, server.address, server)


class TestWireOps:
    def test_explain_op_is_pinned_in_both_dialects(self):
        sql = "SELECT AVG(x) FROM stream WHERE x > 10"

        def scenario(address, server):
            with ClusterClient(*address) as old, PipelinedClient(*address) as new:
                old.query(sql)
                for client in (old, new):
                    plan = client.explain(sql)
                    assert plan["node"] == "single"
                    assert plan["route"]["table"] == "stream"
                    assert plan["route"]["rows"] == 1200
                    assert plan["route"]["partitions"] == 2
                    assert (
                        plan["query"]["template"]
                        == "SELECT AVG(x) FROM stream WHERE x > ?;"
                    )
                    assert plan["result_cache"]["cached"] is True
                    assert plan["gather"]["scattered_sql"] == str(
                        plan_query(parse_query(sql)).scattered
                    )
                    # SQL-prefix form through the ordinary query op
                    # answers the identical plan in both dialects.
                    prefixed = client.query(f"EXPLAIN {sql}")["explain"]
                    assert prefixed == plan

        run_async(serve(scenario))

    def test_explain_analyze_over_the_wire(self):
        def scenario(address, server):
            with PipelinedClient(*address) as client:
                plan = client.query("EXPLAIN ANALYZE SELECT COUNT(*) FROM stream")[
                    "explain"
                ]
                analysis = plan["analyze"]
                assert analysis["wall_seconds"] > 0
                (result,) = analysis["result"]["results"]
                assert result["value"] == pytest.approx(1200, rel=0.01)
                assert {s["name"] for s in analysis["spans"]} >= {"explain_analyze"}

        run_async(serve(scenario))

    def test_workload_and_audit_ops_in_both_dialects(self):
        def scenario(address, server):
            auditor = server.service.service.auditor
            with ClusterClient(*address) as old, PipelinedClient(*address) as new:
                old.query("SELECT SUM(y) FROM stream WHERE y > 40")
                new.query("SELECT SUM(y) FROM stream WHERE y > 90")
                auditor.audit_now()
                for client in (old, new):
                    workload = client.workload()
                    by_template = {
                        t["template"]: t for t in workload["templates"]
                    }
                    entry = by_template["SELECT SUM(y) FROM stream WHERE y > ?;"]
                    assert entry["count"] == 2
                    assert entry["last_sql"] == "SELECT SUM(y) FROM stream WHERE y > 90"
                    assert entry["audit"]["audited"] >= 1
                    audit = client.audit()
                    assert audit["enabled"] is True
                    assert audit["audited"] >= 1
                    assert audit["sample_rate"] == 1.0

        run_async(serve(scenario))


# --------------------------------------------------------------------------- #
# CLI wiring


class TestServerWiring:
    def test_attach_answer_quality_wires_and_starts(self):
        from repro.service.server import _attach_answer_quality

        service = QueryService()
        service.register_table(
            make_simple_table(rows=300, seed=1, name="t"), params=PARAMS
        )
        args = argparse.Namespace(
            workload_capacity=8, audit_sample=0.5, audit_interval=3600.0
        )
        auditor = _attach_answer_quality(service, args)
        try:
            assert service.workload_log is not None
            assert service.workload_log.capacity == 8
            assert auditor is service.auditor
            assert auditor.sample_rate == 0.5
            assert auditor._thread is not None and auditor._thread.is_alive()
            service.execute_scalar("SELECT COUNT(*) FROM t")
            service.execute_scalar("SELECT AVG(x) FROM t")
            assert auditor.audit_now() >= 1
        finally:
            auditor.stop()

    def test_attach_answer_quality_defaults_off(self):
        from repro.service.server import _attach_answer_quality

        service = QueryService()
        args = argparse.Namespace(
            workload_capacity=0, audit_sample=0.0, audit_interval=5.0
        )
        assert _attach_answer_quality(service, args) is None
        assert service.workload_log is None and service.auditor is None

    def test_supervisor_propagates_audit_flags_to_worker_argv(self):
        from repro.cluster.supervisor import ShardSupervisor

        supervisor = ShardSupervisor(
            data_dirs=[None],
            audit_sample=0.25,
            audit_interval=1.5,
            workload_capacity=64,
        )
        argv = supervisor._base_argv(None)
        assert argv[argv.index("--audit-sample") + 1] == "0.25"
        assert argv[argv.index("--audit-interval") + 1] == "1.5"
        assert argv[argv.index("--workload-capacity") + 1] == "64"
        # Off by default: no audit daemon burning worker CPU unasked.
        quiet = ShardSupervisor(data_dirs=[None])._base_argv(None)
        assert "--audit-sample" not in quiet


# --------------------------------------------------------------------------- #
# Health endpoints + build info


class TestHealthEndpoints:
    def test_healthz_readyz_and_build_info(self):
        flag = {"ready": False, "boom": False}

        def ready_fn():
            if flag["boom"]:
                raise RuntimeError("probe exploded")
            return flag["ready"]

        endpoint = MetricsHTTPServer(
            obs_metrics.REGISTRY.snapshot, host="127.0.0.1", port=0, ready_fn=ready_fn
        ).start()
        try:
            base = f"http://127.0.0.1:{endpoint.port}"
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as response:
                assert response.status == 200
                assert response.read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/readyz", timeout=10)
            assert err.value.code == 503
            flag["ready"] = True
            with urllib.request.urlopen(f"{base}/readyz", timeout=10) as response:
                assert response.status == 200
                assert response.read() == b"ready\n"
            # A crashing probe reads as not-ready, never a 500.
            flag["boom"] = True
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/readyz", timeout=10)
            assert err.value.code == 503
            flag["boom"] = False
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as response:
                body = response.read().decode("utf-8")
            assert f'repro_build_info{{python="' in body
            assert f'version="{__version__}"' in body
            assert "repro_process_start_time_seconds" in body
        finally:
            endpoint.stop()

    def test_readyz_defaults_ready_without_a_probe(self):
        endpoint = MetricsHTTPServer(
            obs_metrics.REGISTRY.snapshot, host="127.0.0.1", port=0
        ).start()
        try:
            url = f"http://127.0.0.1:{endpoint.port}/readyz"
            with urllib.request.urlopen(url, timeout=10) as response:
                assert response.status == 200
        finally:
            endpoint.stop()


# --------------------------------------------------------------------------- #
# Slow-query log rotation


class TestSlowLogRotation:
    def test_rotating_file_stream_bounds_disk(self, tmp_path):
        path = tmp_path / "slow.log"
        stream = obs_log.RotatingFileStream(path, max_bytes=200, keep=2)
        line = json.dumps({"event": "slow_query", "pad": "x" * 40}) + "\n"
        for _ in range(100):
            stream.write(line)
        stream.close()
        files = sorted(tmp_path.glob("slow.log*"))
        assert path in files
        assert (tmp_path / "slow.log.1") in files
        assert len(files) <= 3  # live file + keep=2 rotated generations
        assert sum(f.stat().st_size for f in files) <= 3 * 200 + len(line)
        # Every surviving line is intact JSON (rotation never splits).
        for f in files:
            for text in f.read_text().splitlines():
                assert json.loads(text)["event"] == "slow_query"

    def test_tracer_routes_slow_queries_to_the_rotated_file(self, tmp_path):
        tracer = tracing.TRACER
        previous_threshold = tracer.slow_threshold_seconds
        previous_logger = tracer._slow_logger
        path = tmp_path / "slow.json"
        try:
            tracer.configure_slow_log(str(path), max_mb=1.0)
            tracer.slow_threshold_seconds = 0.0
            with tracing.root_span("query", attrs={"sql": "SELECT 1"}) as root:
                pass
        finally:
            tracer.slow_threshold_seconds = previous_threshold
            tracer._slow_logger = previous_logger
        entry = json.loads(path.read_text().strip().splitlines()[-1])
        assert entry["event"] == "slow_query"
        assert entry["component"] == "slow_query"
        assert entry["trace_id"] == root.trace_id
        assert entry["attrs"] == {"sql": "SELECT 1"}


# --------------------------------------------------------------------------- #
# Process-mode end to end (subprocess workers; slow)


@pytest.mark.slow
class TestProcessClusterAuditEndToEnd:
    def test_worker_auditors_feed_the_cluster_fanout(self, tmp_path):
        cluster = ClusterQueryService(
            num_shards=2,
            path=tmp_path / "cluster",
            mode="process",
            partition_size=200,
            worker_options={
                "checkpoint_interval": 3600.0,
                "audit_sample": 1.0,
                "audit_interval": 0.2,
                "workload_capacity": 64,
            },
        )
        try:
            cluster.register_table(
                make_simple_table(rows=600, seed=3, name="sensors"), params=PARAMS
            )
            for _ in range(3):
                cluster.execute("SELECT AVG(x) FROM sensors WHERE x > 10")
            deadline = time.perf_counter() + 30.0
            stats = cluster.audit_stats()
            while time.perf_counter() < deadline and stats["audited"] == 0:
                time.sleep(0.2)
                stats = cluster.audit_stats()
            assert stats["enabled"] is True
            assert stats["shards"] == 2
            assert stats["audited"] > 0
            merged = cluster.workload()
            by_template = {t["template"]: t for t in merged["templates"]}
            scattered = normalize_sql(
                str(plan_query(parse_query("SELECT AVG(x) FROM sensors WHERE x > 10")).scattered)
            )
            assert by_template[scattered]["count"] >= 6  # 3 queries x 2 shards
        finally:
            cluster.close()
