"""Tests for the partitioned GreedyGD storage layer."""

import numpy as np
import pytest

from conftest import make_simple_table

from repro.gd.partitioned import PartitionedStore
from repro.gd.store import CompressedStore


@pytest.fixture(scope="module")
def store_and_table():
    table = make_simple_table(rows=5000, seed=11)
    return PartitionedStore.compress(table, partition_size=2000), table


class TestConstruction:
    def test_partition_layout(self, store_and_table):
        store, table = store_and_table
        assert store.num_partitions == 3
        assert [p.num_rows for p in store.partitions] == [2000, 2000, 1000]
        assert store.num_rows == table.num_rows
        assert store.column_order == table.column_names
        np.testing.assert_array_equal(store.partition_row_offsets(), [0, 2000, 4000, 5000])

    def test_partitions_share_the_preprocessor(self, store_and_table):
        store, _ = store_and_table
        assert all(p.preprocessor is store.preprocessor for p in store.partitions)

    def test_rejects_empty_table_and_bad_partition_size(self):
        table = make_simple_table(rows=10, seed=0)
        with pytest.raises(ValueError):
            PartitionedStore.compress(table, partition_size=0)

    def test_compressed_bytes_sum_over_partitions(self, store_and_table):
        store, _ = store_and_table
        assert store.compressed_bytes() == sum(p.compressed_bytes() for p in store.partitions)
        assert store.compression_ratio(10 * store.compressed_bytes()) == pytest.approx(10.0)

    def test_base_values_cover_all_partitions(self, store_and_table):
        store, _ = store_and_table
        merged = store.base_values("x")
        for partition in store.partitions:
            assert np.isin(partition.base_values("x"), merged).all()


def assert_tables_equal(actual, expected, schema):
    for name in expected.column_names:
        a, b = actual.column(name), expected.column(name)
        if schema[name].is_categorical:
            assert all(x == y or (x is None and y is None) for x, y in zip(a, b)), name
        else:
            np.testing.assert_allclose(
                np.nan_to_num(a, nan=-1.0), np.nan_to_num(b, nan=-1.0), err_msg=name
            )


class TestReconstruction:
    def test_full_reconstruction_is_lossless(self, store_and_table):
        store, table = store_and_table
        assert_tables_equal(store.reconstruct_rows(), table, table.schema)

    def test_subset_reconstruction_across_partitions(self, store_and_table):
        store, table = store_and_table
        indices = np.array([4999, 0, 2500, 1999, 2000])
        subset = store.reconstruct_rows(indices)
        assert_tables_equal(subset, table.select_rows(indices), table.schema)


class TestAppend:
    def test_append_tops_up_tail_then_spills(self):
        table = make_simple_table(rows=5000, seed=11)
        store = PartitionedStore.compress(table, partition_size=2000)
        sealed = store.partitions[:2]
        extra = make_simple_table(rows=2500, seed=12)
        affected = store.append(extra)
        # Tail (index 2) topped up from 1000 to 2000 rows, the remaining
        # 1500 rows spill into a fresh partition 3.
        assert affected == [2, 3]
        assert [p.num_rows for p in store.partitions] == [2000, 2000, 2000, 1500]
        # Sealed partitions are untouched objects.
        assert store.partitions[0] is sealed[0]
        assert store.partitions[1] is sealed[1]

    def test_append_to_full_tail_only_creates_new_partitions(self):
        table = make_simple_table(rows=4000, seed=11)
        store = PartitionedStore.compress(table, partition_size=2000)
        before = list(store.partitions)
        affected = store.append(make_simple_table(rows=1000, seed=3))
        assert affected == [2]
        assert store.partitions[:2] == before

    def test_append_preserves_lossless_reconstruction(self):
        table = make_simple_table(rows=3000, seed=11)
        store = PartitionedStore.compress(table, partition_size=2000)
        extra = make_simple_table(rows=2500, seed=12)
        store.append(extra)
        full = table.concat(extra)
        assert store.num_rows == full.num_rows
        assert_tables_equal(store.reconstruct_rows(), full, table.schema)

    def test_warm_started_append_stays_lossless(self):
        """Fresh overflow partitions seed their bit search from the previous
        tail; whatever the search picks, reconstruction must stay exact."""
        from repro.gd.greedygd import GreedyGDConfig

        table = make_simple_table(rows=2000, seed=11)
        extra = make_simple_table(rows=4500, seed=12)
        full = table.concat(extra)
        stores = {}
        for warm in (True, False):
            config = GreedyGDConfig(warm_start_appends=warm)
            store = PartitionedStore.compress(table, partition_size=2000, config=config)
            store.append(extra)
            assert_tables_equal(store.reconstruct_rows(), full, table.schema)
            stores[warm] = store
        assert stores[True].num_rows == stores[False].num_rows

    def test_append_empty_batch_is_a_no_op(self, store_and_table):
        store, _ = store_and_table
        empty = make_simple_table(rows=5, seed=0).select_rows(np.array([], dtype=int))
        assert store.append(empty) == []

    def test_append_rejects_schema_mismatch(self, store_and_table):
        store, _ = store_and_table
        from repro.data.table import Table

        other = Table.from_dict({"only": [1.0, 2.0]}, name="other")
        with pytest.raises(ValueError):
            store.append(other)


class TestDecodedCache:
    def test_decoded_matrix_is_memoized(self):
        table = make_simple_table(rows=1000, seed=5)
        store = CompressedStore.compress(table)
        first = store._decoded_matrix()
        assert store._decoded_matrix() is first
        # The cached matrix backs the public accessors.
        np.testing.assert_array_equal(store.column_codes("x"), first[:, 0])

    def test_append_returns_store_with_fresh_cache(self):
        table = make_simple_table(rows=1000, seed=5)
        store = CompressedStore.compress(table)
        store._decoded_matrix()
        updated = store.append(make_simple_table(rows=200, seed=6))
        assert updated._decoded is None
        assert updated._decoded_matrix().shape[0] == 1200
