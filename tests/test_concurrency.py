"""Concurrency stress tests: locks, torn reads, starvation, async front end.

The contract under test (see ``repro.service.concurrency``):

* queries hold a per-table read lock for the whole engine call, so every
  answer reflects exactly one published synopsis — pre- or post-ingest,
  never a torn mix;
* ingest stages its rebuild off-lock (reads keep flowing) and commits
  under the write lock;
* the reader-writer lock prefers writers, so a steady query stream cannot
  starve ingestion;
* the asyncio front end coalesces small concurrent appends into one tail
  recompression.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time

import pytest

from conftest import make_simple_table

from repro import (
    AsyncQueryClient,
    AsyncQueryService,
    ConcurrentQueryService,
    PairwiseHistParams,
    QueryServer,
    ReadWriteLock,
    SerializedQueryService,
)

JOIN_TIMEOUT = 60.0


def exact_params() -> PairwiseHistParams:
    return PairwiseHistParams.with_defaults(sample_size=None, seed=1)


def make_service(
    rows: int = 1200,
    partition_size: int = 600,
    name: str = "stream",
    service_cls=ConcurrentQueryService,
):
    service = service_cls(partition_size=partition_size)
    service.register_table(
        make_simple_table(rows=rows, seed=50, name=name), params=exact_params()
    )
    return service


def join_all(threads: list[threading.Thread]) -> None:
    """Join with a timeout and fail loudly instead of hanging: a thread
    still alive afterwards means a deadlock in the locking discipline."""
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    stuck = [t.name for t in threads if t.is_alive()]
    assert not stuck, f"threads deadlocked: {stuck}"


# --------------------------------------------------------------------------- #
# ReadWriteLock unit behaviour


class TestReadWriteLock:
    def test_readers_share_the_lock(self):
        lock = ReadWriteLock()
        entered = threading.Barrier(2, timeout=JOIN_TIMEOUT)

        def reader():
            with lock.read_locked():
                entered.wait()  # both threads inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        join_all(threads)

    def test_writer_is_exclusive(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        with pytest.raises(TimeoutError):
            lock.acquire_read(timeout=0.05)
        with pytest.raises(TimeoutError):
            lock.acquire_write(timeout=0.05)
        lock.release_write()
        with lock.read_locked(timeout=1.0):
            pass

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_started = threading.Event()
        writer_done = threading.Event()

        def writer():
            writer_started.set()
            with lock.write_locked(timeout=JOIN_TIMEOUT):
                pass
            writer_done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        writer_started.wait(timeout=JOIN_TIMEOUT)
        time.sleep(0.05)  # let the writer reach its wait
        # Writer preference: a *new* reader must now queue behind the writer.
        with pytest.raises(TimeoutError):
            lock.acquire_read(timeout=0.05)
        lock.release_read()
        join_all([thread])
        assert writer_done.is_set()
        with lock.read_locked(timeout=1.0):
            pass

    def test_writer_not_starved_by_reader_stream(self):
        lock = ReadWriteLock()
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                with lock.read_locked(timeout=JOIN_TIMEOUT):
                    time.sleep(0.001)

        readers = [threading.Thread(target=reader, daemon=True) for _ in range(6)]
        for t in readers:
            t.start()
        time.sleep(0.05)  # reader stream fully going
        start = time.perf_counter()
        with lock.write_locked(timeout=10.0):
            waited = time.perf_counter() - start
        stop.set()
        join_all(readers)
        assert waited < 5.0, f"writer starved for {waited:.1f}s"

    def test_writer_timeout_releases_queued_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()  # long-running reader holds the lock throughout
        reader_acquired = threading.Event()

        def queued_reader():
            with lock.read_locked(timeout=JOIN_TIMEOUT):
                reader_acquired.set()

        writer_waiting = threading.Event()

        def writer():
            writer_waiting.set()
            with pytest.raises(TimeoutError):
                lock.acquire_write(timeout=0.2)

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        writer_waiting.wait(timeout=JOIN_TIMEOUT)
        time.sleep(0.05)  # writer is parked; a new reader now queues behind it
        reader_thread = threading.Thread(target=queued_reader)
        reader_thread.start()
        join_all([writer_thread])
        # After the writer's timeout the queued reader must proceed even
        # though the first reader never released.
        assert reader_acquired.wait(timeout=5.0), (
            "reader stayed parked after the waiting writer timed out"
        )
        join_all([reader_thread])
        lock.release_read()

    def test_unbalanced_release_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


# --------------------------------------------------------------------------- #
# Service-level stress


class TestConcurrentService:
    BATCHES = 4
    BATCH_ROWS = 300

    def batches(self, name: str = "stream"):
        return [
            make_simple_table(rows=self.BATCH_ROWS, seed=60 + i, name=name)
            for i in range(self.BATCHES)
        ]

    def reference_values(self, sql_list):
        """Run the same ingest sequence serially and record every synopsis
        state's answers — the only values a correctly-locked service may
        ever return."""
        service = make_service()
        valid = {sql: [service.execute_scalar(sql).value] for sql in sql_list}
        for batch in self.batches():
            service.ingest("stream", batch)
            for sql in sql_list:
                valid[sql].append(service.execute_scalar(sql).value)
        return valid

    @staticmethod
    def matches_some(value: float, candidates: list[float]) -> bool:
        return any(
            math.isclose(value, v, rel_tol=1e-9, abs_tol=1e-9) for v in candidates
        )

    @pytest.mark.slow
    def test_no_torn_reads_while_ingest_streams(self):
        sql_list = [
            "SELECT COUNT(*) FROM stream",
            "SELECT AVG(x) FROM stream",
            "SELECT SUM(w) FROM stream",
        ]
        valid = self.reference_values(sql_list)
        service = make_service()
        stop = threading.Event()
        observed: dict[str, list[float]] = {sql: [] for sql in sql_list}
        failures: list[BaseException] = []

        def reader(sql: str) -> None:
            try:
                while not stop.is_set():
                    observed[sql].append(service.execute_scalar(sql).value)
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        readers = [
            threading.Thread(target=reader, args=(sql,), daemon=True)
            for sql in sql_list
        ]
        for t in readers:
            t.start()
        for batch in self.batches():
            service.ingest("stream", batch)
        stop.set()
        join_all(readers)
        assert not failures, failures
        for sql in sql_list:
            assert observed[sql], f"reader for {sql!r} never ran"
            bad = [
                v for v in observed[sql] if not self.matches_some(v, valid[sql])
            ]
            assert not bad, (
                f"torn reads for {sql!r}: {bad[:5]} not in any published "
                f"synopsis state {valid[sql]}"
            )
        # The final published state is the fully-ingested one.
        final = service.execute_scalar("SELECT COUNT(*) FROM stream").value
        assert math.isclose(final, valid["SELECT COUNT(*) FROM stream"][-1], rel_tol=1e-9)

    @pytest.mark.slow
    def test_reads_flow_while_ingest_is_staging(self):
        """Copy-on-write: reads complete *during* an in-flight ingest."""
        service = make_service(rows=2400, partition_size=600)
        big_batch = make_simple_table(rows=2400, seed=70, name="stream")
        intervals: list[tuple[float, float]] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                began = time.perf_counter()
                service.execute_scalar("SELECT AVG(x) FROM stream")
                intervals.append((began, time.perf_counter()))

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        time.sleep(0.05)
        ingest_start = time.perf_counter()
        service.ingest("stream", big_batch)
        ingest_end = time.perf_counter()
        stop.set()
        join_all([thread])
        inside = [
            (a, b) for a, b in intervals if a >= ingest_start and b <= ingest_end
        ]
        assert inside, (
            "no query started and finished inside the ingest window — "
            "reads are blocking on the rebuild instead of the final swap"
        )

    @pytest.mark.slow
    def test_ingest_not_starved_by_query_hammering(self):
        service = make_service()
        stop = threading.Event()
        failures: list[BaseException] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    service.execute_scalar("SELECT COUNT(*) FROM stream")
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        readers = [threading.Thread(target=reader, daemon=True) for _ in range(4)]
        for t in readers:
            t.start()
        time.sleep(0.05)
        result = service.ingest(
            "stream", make_simple_table(rows=400, seed=80, name="stream")
        )
        stop.set()
        join_all(readers)
        assert not failures, failures
        assert result.appended_rows == 400
        assert (
            service.table("stream").engine.synopsis.population_rows == 1600
        )

    def test_parallel_ingest_on_independent_tables(self):
        service = ConcurrentQueryService(partition_size=500)
        for name in ("alpha_t", "beta_t"):
            service.register_table(
                make_simple_table(rows=1000, seed=90, name=name),
                params=exact_params(),
            )
        failures: list[BaseException] = []

        def worker(name: str) -> None:
            try:
                service.ingest(
                    name, make_simple_table(rows=250, seed=91, name=name)
                )
                service.execute_scalar(f"SELECT COUNT(*) FROM {name}")
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(name,), daemon=True)
            for name in ("alpha_t", "beta_t")
        ]
        for t in threads:
            t.start()
        join_all(threads)
        assert not failures, failures
        for name in ("alpha_t", "beta_t"):
            total = service.execute_scalar(f"SELECT COUNT(*) FROM {name}").value
            assert total == pytest.approx(1250, rel=1e-9)

    def test_multi_client_workload_runner(self):
        from repro import QueryServiceSystem, parse_query
        from repro.workload.runner import WorkloadRunner

        service = make_service()
        runner = WorkloadRunner.for_service(service, "stream")
        system = QueryServiceSystem(service=service, table_name="stream")
        queries = [
            parse_query("SELECT COUNT(x) FROM stream WHERE x > 50"),
            parse_query("SELECT AVG(y) FROM stream WHERE x > 20 AND x < 80"),
            parse_query("SELECT SUM(z) FROM stream WHERE x < 70"),
            parse_query("SELECT COUNT(*) FROM stream"),
            parse_query("SELECT AVG(x) FROM stream WHERE y > 100"),
            parse_query("SELECT MAX(x) FROM stream WHERE x < 90"),
        ]
        outcome = runner.run_concurrent(system, queries, num_clients=3)
        assert len(outcome.summary) == len(queries)
        assert outcome.queries_per_second > 0
        assert outcome.num_clients == 3
        # Records keep query order and stay accurate under concurrency.
        for record, query in zip(outcome.summary.records, queries):
            assert record.sql == str(query)
            assert record.supported
        assert outcome.summary.median_error_percent() < 5.0
        with pytest.raises(ValueError):
            runner.run_concurrent(system, queries, num_clients=0)

    def test_unknown_names_do_not_grow_the_lock_registry(self):
        service = make_service()
        for i in range(20):
            with pytest.raises(KeyError):
                service.execute_scalar(f"SELECT COUNT(*) FROM junk{i}")
            with pytest.raises(KeyError):
                service.ingest(f"junk{i}", make_simple_table(rows=5, seed=0))
            with pytest.raises(KeyError):
                service.drop_table(f"junk{i}")
        assert set(service._table_locks) == {"stream"}

    def test_failed_registration_does_not_leak_locks(self):
        service = make_service()
        with pytest.raises(ValueError):
            service.register_table(
                make_simple_table(rows=100, seed=0, name="broken"),
                partition_size=-1,
            )
        assert "broken" not in service._table_locks
        assert "broken" not in service._ingest_mutexes
        # A duplicate-name failure keeps the live table's locks.
        with pytest.raises(ValueError):
            service.register_table(make_simple_table(rows=100, seed=0, name="stream"))
        assert "stream" in service._table_locks

    def test_drop_table_retires_its_locks(self):
        service = make_service()
        service.drop_table("stream")
        assert "stream" not in service
        assert "stream" not in service._table_locks
        assert "stream" not in service._ingest_mutexes
        # Queries after the drop raise and must not resurrect the entry.
        with pytest.raises(KeyError):
            service.execute_scalar("SELECT COUNT(*) FROM stream")
        assert "stream" not in service._table_locks

    def test_drop_then_reregister_same_name(self):
        service = make_service()
        old_lock = service.lock_for("stream")
        service.drop_table("stream")
        service.register_table(
            make_simple_table(rows=800, seed=51, name="stream"),
            params=exact_params(),
        )
        assert service.lock_for("stream") is not old_lock
        total = service.execute_scalar("SELECT COUNT(*) FROM stream").value
        assert total == pytest.approx(800, rel=1e-9)
        service.ingest("stream", make_simple_table(rows=200, seed=52, name="stream"))
        total = service.execute_scalar("SELECT COUNT(*) FROM stream").value
        assert total == pytest.approx(1000, rel=1e-9)

    def test_failed_synopsis_build_rolls_the_append_back(self, monkeypatch):
        service = make_service()
        rows_before = service.table("stream").num_rows
        partitions_before = service.table("stream").store.partitions

        def explode(*args, **kwargs):
            raise RuntimeError("synthetic build failure")

        monkeypatch.setattr(service.database, "_build_synopses", explode)
        with pytest.raises(RuntimeError, match="synthetic"):
            service.ingest(
                "stream", make_simple_table(rows=900, seed=53, name="stream")
            )
        monkeypatch.undo()
        # The append was reverted: the store never outran its synopses.
        assert service.table("stream").num_rows == rows_before
        assert service.table("stream").store.partitions is partitions_before
        # The table is still fully ingestable and queryable.
        service.ingest("stream", make_simple_table(rows=300, seed=54, name="stream"))
        total = service.execute_scalar("SELECT COUNT(*) FROM stream").value
        assert total == pytest.approx(rows_before + 300, rel=1e-9)

    def test_serialized_baseline_answers_match(self):
        concurrent = make_service()
        serialized = make_service(service_cls=SerializedQueryService)
        for sql in ("SELECT COUNT(*) FROM stream", "SELECT AVG(y) FROM stream"):
            assert concurrent.execute_scalar(sql).value == pytest.approx(
                serialized.execute_scalar(sql).value, rel=1e-12
            )


# --------------------------------------------------------------------------- #
# Async front end + TCP server


def run_async(coroutine):
    return asyncio.run(coroutine)


class TestAsyncQueryService:
    def test_query_register_and_coalesced_ingest(self):
        async def scenario():
            async with AsyncQueryService(partition_size=600, max_workers=2) as svc:
                await svc.register_table(
                    make_simple_table(rows=1200, seed=50, name="stream"),
                    params=exact_params(),
                )
                before = await svc.query_scalar("SELECT COUNT(*) FROM stream")
                assert before.value == pytest.approx(1200, rel=1e-9)
                batches = [
                    make_simple_table(rows=40, seed=100 + i, name="stream")
                    for i in range(6)
                ]
                results = await asyncio.gather(
                    *[svc.ingest("stream", batch) for batch in batches]
                )
                # All six appends were coalesced into a handful of rebuilds
                # (usually one); every caller sees a shared batched result.
                assert {r.appended_rows for r in results} != {40}
                assert sum({id(r): r.appended_rows for r in results}.values()) == 240
                after = await svc.query_scalar("SELECT COUNT(*) FROM stream")
                assert after.value == pytest.approx(1440, rel=1e-9)

        run_async(scenario())

    def test_max_delay_flush_batches_staggered_small_appends(self):
        """With a flush window, small appends arriving *after* the drain
        task wakes — not just ones already queued — coalesce into one tail
        recompression; the window also bounds how long a lone append waits."""

        async def scenario():
            async with AsyncQueryService(
                partition_size=600, max_workers=2, max_batch_delay=0.25
            ) as svc:
                await svc.register_table(
                    make_simple_table(rows=1200, seed=50, name="stream"),
                    params=exact_params(),
                )
                async def staggered(i):
                    await asyncio.sleep(0.01 * i)
                    return await svc.ingest(
                        "stream", make_simple_table(rows=30, seed=200 + i, name="stream")
                    )

                results = await asyncio.gather(*[staggered(i) for i in range(5)])
                # One shared rebuild for all five staggered writers.
                assert len({id(r) for r in results}) == 1
                assert results[0].appended_rows == 150
                after = await svc.query_scalar("SELECT COUNT(*) FROM stream")
                assert after.value == pytest.approx(1350, rel=1e-9)

                # A lone append is not stuck waiting for a writer that never
                # comes: it completes within a couple of windows.
                start = time.perf_counter()
                await svc.ingest(
                    "stream", make_simple_table(rows=20, seed=300, name="stream")
                )
                assert time.perf_counter() - start < 5.0

        run_async(scenario())

    def test_max_delay_flush_respects_row_budget(self):
        async def scenario():
            async with AsyncQueryService(
                partition_size=600,
                max_workers=1,
                max_batch_rows=100,
                max_batch_delay=0.2,
            ) as svc:
                await svc.register_table(
                    make_simple_table(rows=1200, seed=50, name="stream"),
                    params=exact_params(),
                )
                batches = [
                    make_simple_table(rows=60, seed=400 + i, name="stream")
                    for i in range(4)
                ]
                results = await asyncio.gather(
                    *[svc.ingest("stream", b) for b in batches]
                )
                # 60-row appends against a 100-row budget: no drained batch
                # may exceed the budget, so at least two rebuilds happened.
                assert all(r.appended_rows <= 100 for r in results)
                assert len({id(r) for r in results}) >= 2
                after = await svc.query_scalar("SELECT COUNT(*) FROM stream")
                assert after.value == pytest.approx(1440, rel=1e-9)

        run_async(scenario())

    def test_validation_errors_raise_in_caller(self):
        async def scenario():
            async with AsyncQueryService(partition_size=600) as svc:
                await svc.register_table(
                    make_simple_table(rows=600, seed=50, name="stream"),
                    params=exact_params(),
                )
                with pytest.raises(KeyError):
                    await svc.ingest(
                        "missing", make_simple_table(rows=10, seed=0)
                    )
                with pytest.raises(TypeError):
                    await svc.ingest("stream", {"x": [1.0]})

        run_async(scenario())

    def test_close_cancels_queued_ingests_instead_of_hanging(self):
        async def scenario():
            svc = AsyncQueryService(partition_size=600, max_workers=1)
            await svc.register_table(
                make_simple_table(rows=600, seed=50, name="stream"),
                params=exact_params(),
            )
            # First ingest occupies the single worker; the second sits in
            # the coalescing queue when close() runs.
            first = asyncio.ensure_future(
                svc.ingest("stream", make_simple_table(rows=400, seed=1, name="stream"))
            )
            await asyncio.sleep(0.01)
            second = asyncio.ensure_future(
                svc.ingest("stream", make_simple_table(rows=400, seed=2, name="stream"))
            )
            await asyncio.sleep(0.01)
            await svc.close()
            # Neither awaiter may hang forever; cancelled or completed both count.
            done, pending = await asyncio.wait({first, second}, timeout=5.0)
            assert not pending, "a queued ingest future was abandoned by close()"
            for task in done:
                if not task.cancelled():
                    task.exception()  # retrieve, so no unretrieved-exception warning
            with pytest.raises(RuntimeError, match="closed"):
                await svc.ingest(
                    "stream", make_simple_table(rows=10, seed=3, name="stream")
                )
            assert not svc._drain_tasks, "close() left orphan drain tasks"

        run_async(scenario())

    def test_uncoalesced_ingest(self):
        async def scenario():
            async with AsyncQueryService(partition_size=600) as svc:
                await svc.register_table(
                    make_simple_table(rows=600, seed=50, name="stream"),
                    params=exact_params(),
                )
                result = await svc.ingest(
                    "stream",
                    make_simple_table(rows=100, seed=1, name="stream"),
                    coalesce=False,
                )
                assert result.appended_rows == 100

        run_async(scenario())

    def test_coalescing_respects_the_batch_row_cap(self):
        async def scenario():
            async with AsyncQueryService(
                partition_size=600, max_batch_rows=100
            ) as svc:
                await svc.register_table(
                    make_simple_table(rows=600, seed=50, name="stream"),
                    params=exact_params(),
                )
                batches = [
                    make_simple_table(rows=80, seed=110 + i, name="stream")
                    for i in range(3)
                ]
                results = await asyncio.gather(
                    *[svc.ingest("stream", batch) for batch in batches]
                )
                # 80 + 80 would blow the 100-row cap, so no drained batch
                # may merge two of them.
                assert all(r.appended_rows <= 100 for r in results)
                total = await svc.query_scalar("SELECT COUNT(*) FROM stream")
                assert total.value == pytest.approx(840, rel=1e-9)

        run_async(scenario())


class TestQueryServer:
    def test_wire_roundtrip_and_clean_errors(self):
        async def scenario():
            async with AsyncQueryService(partition_size=600, max_workers=2) as svc:
                await svc.register_table(
                    make_simple_table(rows=1200, seed=50, name="stream"),
                    params=exact_params(),
                )
                async with QueryServer(svc) as server:
                    host, port = server.address
                    async with AsyncQueryClient(host, port) as client:
                        assert (await client.request({"op": "ping"}))["result"] == "pong"
                        tables = await client.request({"op": "tables"})
                        assert tables["result"]["tables"] == ["stream"]

                        payload = await client.query(
                            "SELECT AVG(x) FROM stream WHERE y > 50"
                        )
                        (result,) = payload["results"]
                        assert result["aggregation"] == "AVG(x)"
                        assert result["lower"] <= result["value"] <= result["upper"]

                        grouped = await client.query(
                            "SELECT COUNT(x) FROM stream GROUP BY category"
                        )
                        assert set(grouped["groups"]) <= {
                            "alpha", "beta", "gamma", "delta"
                        }

                        ingest = await client.ingest(
                            "stream",
                            {
                                "x": [1.0],
                                "y": [2.0],
                                "z": [3.0],
                                "w": [4.0],
                                "with_nulls": [None],
                                "category": ["alpha"],
                            },
                        )
                        assert ingest["appended_rows"] == 1

                        # Errors come back as clean frames, never closed sockets.
                        for bad in (
                            {"op": "query", "sql": "SELECT FROM"},
                            {"op": "query", "sql": "SELECT COUNT(*) FROM nope"},
                            {"op": "query"},
                            {"op": "ingest", "table": "stream"},
                            {"op": "ingest", "table": "nope", "rows": {"x": [1]}},
                            {"op": "explode"},
                        ):
                            response = await client.request(bad)
                            assert response["ok"] is False
                            assert response["error_type"] in {
                                "ParseError", "KeyError", "ValueError", "TypeError",
                            }

                        # Raw garbage on the wire gets a JSON error frame too.
                        reader, writer = await asyncio.open_connection(host, port)
                        writer.write(b"this is not json\n")
                        await writer.drain()
                        frame = json.loads(await reader.readline())
                        assert frame["ok"] is False
                        assert frame["error_type"] == "JSONDecodeError"
                        writer.close()
                        await writer.wait_closed()

        run_async(scenario())

    def test_large_ingest_frame_over_the_wire(self):
        """Frames past asyncio's 64 KiB default line limit must still work."""
        async def scenario():
            async with AsyncQueryService(partition_size=2000, max_workers=2) as svc:
                await svc.register_table(
                    make_simple_table(rows=2000, seed=50, name="stream"),
                    params=exact_params(),
                )
                rows = 4000  # ~300 KiB of JSON on one line
                batch = make_simple_table(rows=rows, seed=7, name="stream")
                payload = {}
                for name in batch.column_names:
                    column = batch.column(name)
                    if batch.schema[name].is_categorical:
                        payload[name] = list(column)
                    else:  # NaN is not valid JSON; nulls travel as null
                        payload[name] = [
                            None if v != v else v for v in column.tolist()
                        ]
                async with QueryServer(svc) as server:
                    async with AsyncQueryClient(*server.address) as client:
                        result = await client.ingest("stream", payload)
                        assert result["appended_rows"] == rows
                        out = await client.query("SELECT COUNT(*) FROM stream")
                        assert out["results"][0]["value"] == pytest.approx(
                            2000 + rows, rel=1e-9
                        )

        run_async(scenario())

    def test_async_drop_retires_queue_and_drain_task(self):
        async def scenario():
            async with AsyncQueryService(partition_size=600) as svc:
                await svc.register_table(
                    make_simple_table(rows=600, seed=50, name="stream"),
                    params=exact_params(),
                )
                await svc.ingest(
                    "stream", make_simple_table(rows=50, seed=1, name="stream")
                )
                assert "stream" in svc._drain_tasks
                await svc.drop_table("stream")
                assert "stream" not in svc._drain_tasks
                assert "stream" not in svc._ingest_queues
                assert "stream" not in svc.table_names
                # Re-registering under the same name works end to end.
                await svc.register_table(
                    make_simple_table(rows=400, seed=2, name="stream"),
                    params=exact_params(),
                )
                result = await svc.ingest(
                    "stream", make_simple_table(rows=100, seed=3, name="stream")
                )
                assert result.appended_rows == 100
                async with QueryServer(svc) as server:
                    async with AsyncQueryClient(*server.address) as client:
                        response = await client.request(
                            {"op": "drop", "table": "stream"}
                        )
                        assert response["ok"] and response["result"]["dropped"]
                        missing = await client.request(
                            {"op": "drop", "table": "stream"}
                        )
                        assert missing["ok"] is False
                        assert missing["error_type"] == "KeyError"

        run_async(scenario())

    def test_server_close_does_not_hang_on_idle_clients(self):
        async def scenario():
            async with AsyncQueryService(partition_size=600) as svc:
                await svc.register_table(
                    make_simple_table(rows=600, seed=50, name="stream"),
                    params=exact_params(),
                )
                server = await QueryServer(svc).start()
                idle = await AsyncQueryClient(*server.address).connect()
                try:
                    # The idle client never sends a request; close() must
                    # still complete instead of waiting for it to hang up.
                    await asyncio.wait_for(server.close(), timeout=10.0)
                finally:
                    await idle.close()

        run_async(scenario())

    def test_internal_errors_become_frames_not_dropped_connections(self):
        async def scenario():
            svc = AsyncQueryService(partition_size=600)
            await svc.register_table(
                make_simple_table(rows=600, seed=50, name="stream"),
                params=exact_params(),
            )
            server = await QueryServer(svc).start()
            client = await AsyncQueryClient(*server.address).connect()
            try:
                # Close the service under the server: queries now raise
                # RuntimeError internally, which must come back as a frame.
                await svc.close()
                response = await client.request(
                    {"op": "query", "sql": "SELECT COUNT(*) FROM stream"}
                )
                assert response["ok"] is False
                assert response["error_type"] == "RuntimeError"
                assert "closed" in response["error"]
            finally:
                await client.close()
                await server.close()

        run_async(scenario())
