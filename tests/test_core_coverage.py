"""Tests for coverage estimation (Eq. 14–16) and its bounds (Theorem 2, Eq. 22–23)."""

import numpy as np
import pytest

from repro.core.coverage import (
    condition_coverage,
    consolidate_and,
    consolidate_or,
    coverage_bounds,
    coverage_estimate,
    partial_count_bounds,
)
from repro.sql.ast import ComparisonOp


@pytest.fixture()
def bins():
    """Five bins covering [0, 50), each with 10 values and 100 points."""
    return {
        "v_minus": np.array([0.0, 10.0, 20.0, 30.0, 40.0]),
        "v_plus": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
        "unique": np.array([10.0, 10.0, 10.0, 10.0, 10.0]),
        "counts": np.array([100.0, 100.0, 100.0, 100.0, 100.0]),
    }


class TestCoverageEstimate:
    def test_less_than_fully_covers_lower_bins(self, bins):
        beta = coverage_estimate(ComparisonOp.LT, 25.0, bins["v_minus"], bins["v_plus"], bins["unique"])
        np.testing.assert_allclose(beta, [1.0, 1.0, 0.5, 0.0, 0.0])

    def test_greater_than_mirrors_less_than(self, bins):
        beta = coverage_estimate(ComparisonOp.GT, 25.0, bins["v_minus"], bins["v_plus"], bins["unique"])
        np.testing.assert_allclose(beta, [0.0, 0.0, 0.5, 1.0, 1.0])

    def test_equality_uses_unique_count(self, bins):
        beta = coverage_estimate(ComparisonOp.EQ, 15.0, bins["v_minus"], bins["v_plus"], bins["unique"])
        np.testing.assert_allclose(beta, [0.0, 0.1, 0.0, 0.0, 0.0])

    def test_inequality_is_complement_of_equality(self, bins):
        eq = coverage_estimate(ComparisonOp.EQ, 15.0, bins["v_minus"], bins["v_plus"], bins["unique"])
        ne = coverage_estimate(ComparisonOp.NE, 15.0, bins["v_minus"], bins["v_plus"], bins["unique"])
        np.testing.assert_allclose(eq + ne, np.ones(5))

    def test_empty_bin_gets_zero(self):
        beta = coverage_estimate(
            ComparisonOp.LT, 5.0, np.array([0.0]), np.array([10.0]), np.array([0.0])
        )
        assert beta[0] == 0.0

    def test_two_unique_values_special_case(self):
        beta = coverage_estimate(
            ComparisonOp.LT, 5.0, np.array([0.0]), np.array([10.0]), np.array([2.0])
        )
        assert beta[0] == 0.5

    def test_boundary_literal_at_bin_edges(self, bins):
        beta = coverage_estimate(ComparisonOp.LE, 10.0, bins["v_minus"], bins["v_plus"], bins["unique"])
        assert beta[0] == 1.0
        assert beta[1] == pytest.approx(0.0, abs=1e-9)

    def test_coverage_matches_data_fraction_for_uniform_bin(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 100, 100_000)
        literal = 33.0
        beta = coverage_estimate(
            ComparisonOp.LT, literal, np.array([values.min()]), np.array([values.max()]),
            np.array([50_000.0]),
        )
        assert beta[0] == pytest.approx((values < literal).mean(), abs=0.01)


class TestPartialCountBounds:
    def test_full_coverage_is_exact(self):
        assert partial_count_bounds(1000, 5, 5, 10.0) == (1000, 1000)

    def test_zero_coverage_is_zero(self):
        assert partial_count_bounds(1000, 5, 0, 10.0) == (0.0, 0.0)

    def test_bounds_bracket_expected_count(self):
        lower, upper = partial_count_bounds(1000, 5, 2, 10.0)
        expected = 1000 * 2 / 5
        assert lower <= expected <= upper
        assert 0 <= lower and upper <= 1000

    def test_wider_chi2_gives_wider_bounds(self):
        narrow = partial_count_bounds(1000, 5, 2, 5.0)
        wide = partial_count_bounds(1000, 5, 2, 20.0)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])


class TestCoverageBounds:
    def test_exact_coverages_keep_their_value(self, bins):
        beta = np.array([0.0, 1.0, 0.5, 1.0, 0.0])
        lower, upper = coverage_bounds(beta, bins["counts"], bins["unique"], min_points=50, alpha=0.001)
        assert lower[0] == upper[0] == 0.0
        assert lower[1] == upper[1] == 1.0
        assert lower[2] <= 0.5 <= upper[2]

    def test_small_bins_use_worst_case(self, bins):
        beta = np.array([0.3, 0.3, 0.3, 0.3, 0.3])
        lower, upper = coverage_bounds(beta, bins["counts"], bins["unique"], min_points=1000, alpha=0.001)
        np.testing.assert_allclose(lower, 1.0 / bins["counts"])
        np.testing.assert_allclose(upper, 1.0 - 1.0 / bins["counts"])

    def test_bounds_bracket_estimate(self, bins):
        beta = np.array([0.1, 0.25, 0.5, 0.75, 0.9])
        lower, upper = coverage_bounds(beta, bins["counts"], bins["unique"], min_points=50, alpha=0.001)
        assert (lower <= beta + 1e-12).all()
        assert (upper >= beta - 1e-12).all()
        assert (lower >= 0).all() and (upper <= 1).all()

    def test_condition_coverage_wrapper(self, bins):
        result = condition_coverage(
            ComparisonOp.LT, 25.0, bins["v_minus"], bins["v_plus"], bins["unique"],
            bins["counts"], min_points=50, alpha=0.001,
        )
        assert result.num_bins == 5
        assert (result.lower <= result.estimate).all()
        assert (result.upper >= result.estimate).all()


class TestConsolidation:
    def test_and_consolidation_is_elementwise_min(self, bins):
        a = condition_coverage(ComparisonOp.GT, 15.0, bins["v_minus"], bins["v_plus"],
                               bins["unique"], bins["counts"], 50, 0.001)
        b = condition_coverage(ComparisonOp.LT, 35.0, bins["v_minus"], bins["v_plus"],
                               bins["unique"], bins["counts"], 50, 0.001)
        merged = consolidate_and([a, b])
        np.testing.assert_allclose(merged.estimate, np.minimum(a.estimate, b.estimate))

    def test_fig7_consolidation_example(self):
        # Fig. 7: beta_1 = <0.19, 1, 1, 1, 1>, beta_2 = <1, 1, 0.31, 0, 0>
        # consolidate to beta_12 = <0.19, 1, 0.31, 0, 0>.
        from repro.core.coverage import CoverageResult

        beta1 = CoverageResult(np.array([0.19, 1, 1, 1, 1]), np.zeros(5), np.ones(5))
        beta2 = CoverageResult(np.array([1, 1, 0.31, 0, 0]), np.zeros(5), np.ones(5))
        merged = consolidate_and([beta1, beta2])
        np.testing.assert_allclose(merged.estimate, [0.19, 1, 0.31, 0, 0])

    def test_or_consolidation_caps_at_one(self, bins):
        a = condition_coverage(ComparisonOp.LT, 45.0, bins["v_minus"], bins["v_plus"],
                               bins["unique"], bins["counts"], 50, 0.001)
        b = condition_coverage(ComparisonOp.GT, 5.0, bins["v_minus"], bins["v_plus"],
                               bins["unique"], bins["counts"], 50, 0.001)
        merged = consolidate_or([a, b])
        assert (merged.estimate <= 1.0).all()
        assert (merged.estimate >= np.maximum(a.estimate, b.estimate)).all()

    def test_or_of_disjoint_ranges_adds(self, bins):
        a = condition_coverage(ComparisonOp.LT, 5.0, bins["v_minus"], bins["v_plus"],
                               bins["unique"], bins["counts"], 50, 0.001)
        b = condition_coverage(ComparisonOp.GT, 45.0, bins["v_minus"], bins["v_plus"],
                               bins["unique"], bins["counts"], 50, 0.001)
        merged = consolidate_or([a, b])
        assert merged.estimate[0] == pytest.approx(a.estimate[0])
        assert merged.estimate[4] == pytest.approx(b.estimate[4])
