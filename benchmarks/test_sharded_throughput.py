"""Sharded-cluster benchmark: scaling past the single-process ceiling.

Two claims, one subprocess cluster:

* **Throughput** — a 2-shard cluster of ``QueryServer`` worker processes
  sustains higher *combined* (queries + ingest batches per second)
  throughput than one single-process server under the concurrency
  workload: closed-loop dashboard clients plus a paced ingest stream.
  The single process serializes every synopsis rebuild and every query
  behind one GIL; the cluster splits the table across worker processes,
  so each merge covers half the partitions and runs in its own
  interpreter.  The >= 1.5x acceptance bar is asserted on multi-core
  hosts (the CI stress job); on a single-CPU host there is no parallelism
  to harvest, so the assertion degrades to a bounded-overhead floor and
  the measured ratio is recorded with an explicit note — same policy as
  the ROADMAP's "unproven on this 1-CPU box" process-executor item.
* **Accuracy** — the scatter-gather answers over the golden dataset stay
  within the frozen per-query error ceilings of
  ``tests/test_golden_accuracy.py``.  One documented exception: the
  tightest ceiling in that suite (``AVG(z) WHERE z < 30``, 0.005) was
  frozen for a 4000-row single-node synopsis; a 2-shard split answers
  from two independent 2000-row synopses whose estimator variance is
  intrinsically higher, so that single query carries a sharded ceiling
  frozen the same way the originals were (~2.5x the error measured when
  this benchmark was written).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np
import pytest
from bench_utils import bench_scale, record, record_json

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from conftest import make_simple_table  # noqa: E402  (tests/ dir, see above)
from test_golden_accuracy import (  # noqa: E402
    GOLDEN_QUERIES,
    MEDIAN_ERROR_CEILING,
    PARTITION_SIZE as GOLDEN_PARTITION_SIZE,
    ROWS as GOLDEN_ROWS,
    SEED as GOLDEN_SEED,
)

from repro import load_dataset, parse_query  # noqa: E402
from repro.bench.harness import fmt, format_table, run_sharded_benchmark  # noqa: E402
from repro.cluster import ClusterQueryService  # noqa: E402
from repro.core.params import PairwiseHistParams  # noqa: E402
from repro.exactdb.executor import ExactQueryEngine  # noqa: E402
from repro.workload.generator import QueryGenerator, WorkloadSpec  # noqa: E402

NUM_SHARDS = 2
ROWS = 40_000
PARTITION_SIZE = 2_000
INGEST_BATCH_ROWS = 2_000
INGEST_INTERVAL_SECONDS = 0.15
WINDOW_SECONDS = 8.0
NUM_CLIENTS = 4
#: The acceptance bar, enforced where the parallelism it measures exists
#: (>= 4 usable CPUs: 2 worker processes + front end + driver).
REQUIRED_MULTICORE_SPEEDUP = 1.5
#: 2-3 CPUs: the workers parallelize but share cores with the driver;
#: the cluster must at least break even.
REQUIRED_DUAL_CORE_FLOOR = 1.0
#: On one CPU a second process buys no parallelism at all; the cluster
#: must merely stay within a bounded overhead of the single process
#: (measured 0.81x when frozen — the per-query cost of two wire hops).
REQUIRED_SINGLE_CORE_FLOOR = 0.5


def _required_ratio(cpus: int) -> float:
    if cpus >= 4:
        return REQUIRED_MULTICORE_SPEEDUP
    if cpus >= 2:
        return REQUIRED_DUAL_CORE_FLOOR
    return REQUIRED_SINGLE_CORE_FLOOR

#: Sharded per-query ceilings, frozen 2026-07 against the PR 5 gather at
#: 2 shards (~2.5x measured); everything absent here must meet the
#: original single-node ceiling unchanged.
SHARDED_CEILING_OVERRIDES = {
    "SELECT AVG(z) FROM golden WHERE z < 30": 0.020,
}


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


@pytest.mark.slow
def test_sharded_golden_accuracy_within_frozen_ceilings(tmp_path):
    """2-shard subprocess scatter-gather answers stay inside the golden bars."""
    table = make_simple_table(rows=GOLDEN_ROWS, seed=GOLDEN_SEED, name="golden")
    exact = ExactQueryEngine(table)
    cluster = ClusterQueryService(
        num_shards=NUM_SHARDS, mode="process", partition_size=GOLDEN_PARTITION_SIZE
    )
    try:
        cluster.register_table(
            table, params=PairwiseHistParams.with_defaults(sample_size=None, seed=1)
        )
        errors = []
        for sql, ceiling in GOLDEN_QUERIES:
            estimate = cluster.execute_scalar(sql)
            truth = exact.execute_scalar(parse_query(sql))
            denominator = abs(truth) if truth != 0 else 1.0
            error = abs(estimate.value - truth) / denominator
            errors.append(error)
            allowed = max(ceiling, SHARDED_CEILING_OVERRIDES.get(sql, 0.0))
            assert error <= allowed, (
                f"{sql}: sharded relative error {error:.4f} exceeds "
                f"ceiling {allowed} (truth={truth:.4f}, "
                f"estimate={estimate.value:.4f})"
            )
            assert estimate.lower <= estimate.value <= estimate.upper
        median = float(np.median(errors))
        assert median <= MEDIAN_ERROR_CEILING, (
            f"sharded median error {median:.4f} exceeds the golden workload "
            f"bar {MEDIAN_ERROR_CEILING}"
        )
    finally:
        cluster.close()


@pytest.mark.slow
def test_sharded_cluster_combined_throughput(tmp_path):
    scale = bench_scale()
    table = load_dataset("power", rows=ROWS, seed=scale.seed)
    spec = WorkloadSpec.initial_experiments(num_queries=20, seed=scale.seed)
    sql_queries = [str(q) for q in QueryGenerator(table, spec).generate()]
    rng = np.random.default_rng(scale.seed)
    batches = [table.sample(INGEST_BATCH_ROWS, rng) for _ in range(4)]
    params = PairwiseHistParams(sample_size=None, min_points=200, seed=scale.seed)

    measurements = run_sharded_benchmark(
        table,
        sql_queries,
        batches,
        tmp_path,
        num_shards=NUM_SHARDS,
        params=params,
        partition_size=PARTITION_SIZE,
        num_clients=NUM_CLIENTS,
        duration_seconds=WINDOW_SECONDS,
        ingest_interval_seconds=INGEST_INTERVAL_SECONDS,
        # Both deployments run with the result cache off: the closed-loop
        # clients rotate 20 SQL strings, so with caching the single process
        # answers mostly at memory speed between ingest invalidations and
        # the ratio stops measuring multi-process synopsis-evaluation
        # scaling (cache behaviour has its own bars in
        # benchmarks/test_wire_latency.py).
        result_cache_size=0,
    )
    single = next(m for m in measurements if m.mode == "single-process")
    cluster = next(m for m in measurements if m.mode.endswith("-shard-cluster"))
    ratio = cluster.combined_ops_per_second / single.combined_ops_per_second
    cpus = _usable_cpus()

    rows = [
        [
            m.mode,
            str(m.num_clients),
            fmt(m.queries_per_second, 1),
            fmt(m.ingested_rows_per_second, 0),
            fmt(m.combined_ops_per_second, 1),
            str(m.ingests),
        ]
        for m in measurements
    ]
    required = _required_ratio(cpus)
    rows.append([f"combined speedup ({cpus} cpu)", "-", "-", "-", f"{ratio:.2f}x", "-"])
    note = (
        f"bar >= {required}x at {cpus} usable CPU(s)"
        if cpus >= 4
        else f"{cpus} usable CPU(s): floor >= {required}x here; the "
        f"{REQUIRED_MULTICORE_SPEEDUP}x scaling bar is enforced on the "
        "multi-core CI stress job"
    )
    record(
        "sharded_throughput",
        format_table(
            ["deployment", "clients", "queries/s", "rows-in/s", "combined/s", "batches"],
            rows,
            title=(
                f"Combined ingest+query throughput (queries/s + ingested rows/s), "
                f"{NUM_SHARDS}-shard subprocess cluster vs single process "
                f"({ROWS} rows power, {INGEST_BATCH_ROWS}-row batch offered every "
                f"{int(INGEST_INTERVAL_SECONDS * 1000)} ms; {note})"
            ),
        ),
    )
    record_json(
        "sharded_throughput",
        {
            "num_shards": NUM_SHARDS,
            "usable_cpus": cpus,
            "required_ratio": required,
            "combined_speedup": ratio,
            "measurements": [m.payload() for m in measurements],
        },
    )

    # The load really ran on both deployments.
    assert single.ingests >= 2 and cluster.ingests >= 2
    assert single.queries > 0 and cluster.queries > 0
    assert ratio >= required, (
        f"{NUM_SHARDS}-shard cluster sustained only {ratio:.2f}x the "
        f"single-process combined throughput "
        f"({cluster.combined_ops_per_second:.1f} vs "
        f"{single.combined_ops_per_second:.1f} ops/s) on {cpus} usable CPU(s); "
        f"required >= {required}x"
    )
