"""Observability overhead benchmark: instrumented vs disabled throughput.

The unified metrics/tracing layer sits on every hot path — admission
control, the parse and result caches, WAL appends, scatter-gather — so
this benchmark pins its cost: the same warm, wire-dominated query
workload is driven through one in-process binary server with the
observability registry **enabled** and with it **disabled**
(``repro.obs.metrics.set_enabled(False)``, the switch behind
``REPRO_OBS=off``), in alternating rounds so scheduler drift hits both
arms equally.  Instrumented throughput must stay within 5% of the
disabled baseline.

A registry microbenchmark (single labelled-counter increment) rides
along in the JSON payload so a regression in the primitive itself is
visible even before it moves the end-to-end number.
"""

from __future__ import annotations

import asyncio
import sys
import time
from pathlib import Path

import pytest
from bench_utils import record, record_json

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from conftest import make_simple_table  # noqa: E402  (tests/ dir, see above)

from repro import AsyncQueryService, PairwiseHistParams, QueryServer  # noqa: E402
from repro.bench.harness import fmt, format_table  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.service.wire import PipelinedClient  # noqa: E402

ROWS = 20_000
PARTITION_SIZE = 1_000

#: Warm cached queries — the wire + dispatch path dominates, which is
#: exactly where per-request instrumentation (latency histogram, cache
#: counters, span bookkeeping) could hurt.
SQLS = [
    f"SELECT AVG(x) FROM stream WHERE y > {threshold}"
    for threshold in (10, 20, 30, 40, 50, 60, 70, 80)
]
TOTAL_QUERIES = 300
#: Alternating enabled/disabled rounds; each arm is scored by its best
#: round (the standard guard against scheduler jitter).  The order within
#: each pair flips round to round so slow-start drift cannot favour
#: whichever arm happens to run second.
ROUNDS_PER_ARM = 4
WARMUP_ROUNDS = 3

#: The acceptance bar: instrumented throughput >= 95% of disabled.
MAX_OVERHEAD_FRACTION = 0.05

COUNTER_INC_ITERATIONS = 200_000


def _run_round(client: PipelinedClient, expected: dict) -> float:
    workload = [SQLS[i % len(SQLS)] for i in range(TOTAL_QUERIES)]
    start = time.perf_counter()
    futures = [(sql, client.submit_query(sql)) for sql in workload]
    for sql, future in futures:
        assert future.result(timeout=30.0) == expected[sql]
    return time.perf_counter() - start


@pytest.mark.slow
def test_observability_overhead_within_budget():
    async def measure():
        async with AsyncQueryService(
            partition_size=PARTITION_SIZE, max_workers=2
        ) as service:
            await service.register_table(
                make_simple_table(rows=ROWS, seed=50, name="stream"),
                params=PairwiseHistParams.with_defaults(sample_size=None, seed=1),
            )
            # The round submits all its frames at once; lift the admission
            # limit so none are shed (shedding is not what we measure).
            async with QueryServer(service, max_inflight_queries=None) as server:
                return await asyncio.to_thread(scenario, server.address)

    def scenario(address):
        walls: dict[bool, list[float]] = {True: [], False: []}
        with PipelinedClient(*address) as client:
            # Warm the server's parse + result caches (and the process —
            # allocator, branch predictors, CPU clocks) so every measured
            # round sees the identical steady-state path.
            expected = {sql: client.query(sql) for sql in SQLS}
            for _ in range(WARMUP_ROUNDS):
                _run_round(client, expected)
            for index in range(ROUNDS_PER_ARM):
                order = (True, False) if index % 2 == 0 else (False, True)
                for enabled in order:
                    obs_metrics.set_enabled(enabled)
                    try:
                        walls[enabled].append(_run_round(client, expected))
                    finally:
                        obs_metrics.set_enabled(True)
        return walls

    walls = asyncio.run(measure())

    enabled_qps = TOTAL_QUERIES / min(walls[True])
    disabled_qps = TOTAL_QUERIES / min(walls[False])
    ratio = enabled_qps / disabled_qps
    overhead = max(0.0, 1.0 - ratio)

    # Registry primitive microbenchmark (info-only, recorded in the JSON).
    counter = obs_metrics.counter(
        "bench_obs_overhead_total", "Microbenchmark counter.", labelnames=("kind",)
    )
    start = time.perf_counter()
    for _ in range(COUNTER_INC_ITERATIONS):
        counter.inc(kind="bench")
    inc_ns = (time.perf_counter() - start) / COUNTER_INC_ITERATIONS * 1e9

    record(
        "obs_overhead",
        format_table(
            ["registry", "queries", "best wall s", "queries/s"],
            [
                [
                    "enabled",
                    str(TOTAL_QUERIES),
                    fmt(min(walls[True]), 3),
                    fmt(enabled_qps, 0),
                ],
                [
                    "disabled (REPRO_OBS=off)",
                    str(TOTAL_QUERIES),
                    fmt(min(walls[False]), 3),
                    fmt(disabled_qps, 0),
                ],
                ["instrumented / baseline", "-", "-", f"{ratio:.3f}x"],
            ],
            title=(
                f"Observability overhead: {TOTAL_QUERIES} warm pipelined "
                f"queries per round, best of {ROUNDS_PER_ARM} alternating "
                f"rounds per arm (bar: >= {1 - MAX_OVERHEAD_FRACTION:.2f}x)"
            ),
        ),
    )
    record_json(
        "obs_overhead",
        {
            "total_queries": TOTAL_QUERIES,
            "rounds_per_arm": ROUNDS_PER_ARM,
            "enabled": {
                "wall_seconds": min(walls[True]),
                "queries_per_second": enabled_qps,
                "all_walls": walls[True],
            },
            "disabled": {
                "wall_seconds": min(walls[False]),
                "queries_per_second": disabled_qps,
                "all_walls": walls[False],
            },
            "throughput_ratio": ratio,
            "overhead_fraction": overhead,
            "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
            "counter_inc_ns": inc_ns,
        },
    )
    assert ratio >= 1.0 - MAX_OVERHEAD_FRACTION, (
        f"instrumented throughput is {ratio:.3f}x the REPRO_OBS=off baseline "
        f"({enabled_qps:.0f} vs {disabled_qps:.0f} queries/s); required >= "
        f"{1 - MAX_OVERHEAD_FRACTION:.2f}x"
    )
