"""Observability overhead benchmark: instrumented vs disabled throughput.

The unified metrics/tracing layer sits on every hot path — admission
control, the parse and result caches, WAL appends, scatter-gather — so
this benchmark pins its cost: the same warm, wire-dominated query
workload is driven through one in-process binary server with the
observability registry **enabled** and with it **disabled**
(``repro.obs.metrics.set_enabled(False)``, the switch behind
``REPRO_OBS=off``), in alternating rounds so scheduler drift hits both
arms equally.  Instrumented throughput must stay within 5% of the
disabled baseline.

A registry microbenchmark (single labelled-counter increment) rides
along in the JSON payload so a regression in the primitive itself is
visible even before it moves the end-to-end number.
"""

from __future__ import annotations

import asyncio
import sys
import time
from pathlib import Path

import pytest
from bench_utils import record, record_json

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from conftest import make_simple_table  # noqa: E402  (tests/ dir, see above)

from repro import AsyncQueryService, PairwiseHistParams, QueryServer  # noqa: E402
from repro.bench.harness import fmt, format_table  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.service.wire import PipelinedClient  # noqa: E402

ROWS = 20_000
PARTITION_SIZE = 1_000

#: Warm cached queries — the wire + dispatch path dominates, which is
#: exactly where per-request instrumentation (latency histogram, cache
#: counters, span bookkeeping) could hurt.
SQLS = [
    f"SELECT AVG(x) FROM stream WHERE y > {threshold}"
    for threshold in (10, 20, 30, 40, 50, 60, 70, 80)
]
TOTAL_QUERIES = 300
#: Alternating enabled/disabled rounds, scored by the best *adjacent
#: pair*: the two arms of one pair run back-to-back (~100 ms apart), so
#: their ratio shares whatever the machine was doing and isolates the
#: instrumentation cost from drift between rounds (CPU frequency
#: scaling, noisy neighbours).  The order within each pair flips round
#: to round so slow-start drift cannot favour whichever arm runs second.
ROUNDS_PER_ARM = 6
WARMUP_ROUNDS = 3

#: The acceptance bar: instrumented throughput >= 95% of disabled.
MAX_OVERHEAD_FRACTION = 0.05

COUNTER_INC_ITERATIONS = 200_000


def _run_round(client: PipelinedClient, expected: dict) -> float:
    workload = [SQLS[i % len(SQLS)] for i in range(TOTAL_QUERIES)]
    start = time.perf_counter()
    futures = [(sql, client.submit_query(sql)) for sql in workload]
    for sql, future in futures:
        assert future.result(timeout=30.0) == expected[sql]
    return time.perf_counter() - start


@pytest.mark.slow
def test_observability_overhead_within_budget():
    async def measure():
        async with AsyncQueryService(
            partition_size=PARTITION_SIZE, max_workers=2
        ) as service:
            await service.register_table(
                make_simple_table(rows=ROWS, seed=50, name="stream"),
                params=PairwiseHistParams.with_defaults(sample_size=None, seed=1),
            )
            # The round submits all its frames at once; lift the admission
            # limit so none are shed (shedding is not what we measure).
            async with QueryServer(service, max_inflight_queries=None) as server:
                return await asyncio.to_thread(scenario, server.address)

    def scenario(address):
        pairs: list[tuple[float, float]] = []  # (enabled_wall, disabled_wall)
        with PipelinedClient(*address) as client:
            # Warm the server's parse + result caches (and the process —
            # allocator, branch predictors, CPU clocks) so every measured
            # round sees the identical steady-state path.
            expected = {sql: client.query(sql) for sql in SQLS}
            for _ in range(WARMUP_ROUNDS):
                _run_round(client, expected)
            for index in range(ROUNDS_PER_ARM):
                order = (True, False) if index % 2 == 0 else (False, True)
                walls: dict[bool, float] = {}
                for enabled in order:
                    obs_metrics.set_enabled(enabled)
                    try:
                        walls[enabled] = _run_round(client, expected)
                    finally:
                        obs_metrics.set_enabled(True)
                pairs.append((walls[True], walls[False]))
        return pairs

    pairs = asyncio.run(measure())

    enabled_qps = TOTAL_QUERIES / min(enabled for enabled, _ in pairs)
    disabled_qps = TOTAL_QUERIES / min(disabled for _, disabled in pairs)
    ratio = max(disabled / enabled for enabled, disabled in pairs)
    overhead = max(0.0, 1.0 - ratio)

    # Registry primitive microbenchmark (info-only, recorded in the JSON).
    counter = obs_metrics.counter(
        "bench_obs_overhead_total", "Microbenchmark counter.", labelnames=("kind",)
    )
    start = time.perf_counter()
    for _ in range(COUNTER_INC_ITERATIONS):
        counter.inc(kind="bench")
    inc_ns = (time.perf_counter() - start) / COUNTER_INC_ITERATIONS * 1e9

    record(
        "obs_overhead",
        format_table(
            ["registry", "queries", "best wall s", "queries/s"],
            [
                [
                    "enabled",
                    str(TOTAL_QUERIES),
                    fmt(min(enabled for enabled, _ in pairs), 3),
                    fmt(enabled_qps, 0),
                ],
                [
                    "disabled (REPRO_OBS=off)",
                    str(TOTAL_QUERIES),
                    fmt(min(disabled for _, disabled in pairs), 3),
                    fmt(disabled_qps, 0),
                ],
                ["instrumented / baseline", "-", "-", f"{ratio:.3f}x"],
            ],
            title=(
                f"Observability overhead: {TOTAL_QUERIES} warm pipelined "
                f"queries per round, best adjacent pair of "
                f"{ROUNDS_PER_ARM} alternating rounds "
                f"(bar: >= {1 - MAX_OVERHEAD_FRACTION:.2f}x)"
            ),
        ),
    )
    record_json(
        "obs_overhead",
        {
            "total_queries": TOTAL_QUERIES,
            "rounds_per_arm": ROUNDS_PER_ARM,
            "enabled": {
                "wall_seconds": min(enabled for enabled, _ in pairs),
                "queries_per_second": enabled_qps,
                "all_walls": [enabled for enabled, _ in pairs],
            },
            "disabled": {
                "wall_seconds": min(disabled for _, disabled in pairs),
                "queries_per_second": disabled_qps,
                "all_walls": [disabled for _, disabled in pairs],
            },
            "pair_ratios": [disabled / enabled for enabled, disabled in pairs],
            "throughput_ratio": ratio,
            "overhead_fraction": overhead,
            "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
            "counter_inc_ns": inc_ns,
        },
    )
    assert ratio >= 1.0 - MAX_OVERHEAD_FRACTION, (
        f"instrumented throughput is {ratio:.3f}x the REPRO_OBS=off baseline "
        f"({enabled_qps:.0f} vs {disabled_qps:.0f} queries/s); required >= "
        f"{1 - MAX_OVERHEAD_FRACTION:.2f}x"
    )


@pytest.mark.slow
def test_audit_overhead_within_budget():
    """Answer-quality auditing at the default 1% sampling must also stay
    within 5% of the un-audited baseline.

    The hot-path cost under test is the workload log's template
    observation plus the auditor's stride sampler; the exact
    recomputation itself runs on the auditor's daemon thread (armed here
    with its ground-truth engine pre-built, as on a long-lived server).
    """
    from repro.audit.auditor import AccuracyAuditor  # noqa: E402
    from repro.audit.workload import WorkloadLog  # noqa: E402

    async def measure():
        async with AsyncQueryService(
            partition_size=PARTITION_SIZE, max_workers=2
        ) as service:
            await service.register_table(
                make_simple_table(rows=ROWS, seed=50, name="stream"),
                params=PairwiseHistParams.with_defaults(sample_size=None, seed=1),
            )
            async with QueryServer(service, max_inflight_queries=None) as server:
                return await asyncio.to_thread(scenario, server.address, service.service)

    def scenario(address, inner):
        workload = WorkloadLog()
        # Default 1% sampling; the daemon interval is stretched so audit
        # passes run *between* measured rounds (amortised over a 5-second
        # interval in production, an exact recomputation landing inside a
        # 40 ms round would measure scheduling luck, not hook cost).
        auditor = AccuracyAuditor(inner, interval_seconds=3600.0, workload=workload)
        pairs: list[tuple[float, float]] = []  # (audited_wall, baseline_wall)
        with PipelinedClient(*address) as client:
            expected = {sql: client.query(sql) for sql in SQLS}
            # Warm the exact-truth engine off-round: steady state on a
            # live server, where one reconstruction serves many audits.
            auditor._queue.append(SQLS[0])
            auditor.audit_now()
            inner.workload_log = workload
            inner.auditor = auditor
            auditor.start()
            try:
                for _ in range(WARMUP_ROUNDS):
                    _run_round(client, expected)
                for index in range(ROUNDS_PER_ARM):
                    order = (True, False) if index % 2 == 0 else (False, True)
                    walls: dict[bool, float] = {}
                    for audited in order:
                        inner.workload_log = workload if audited else None
                        inner.auditor = auditor if audited else None
                        try:
                            walls[audited] = _run_round(client, expected)
                        finally:
                            inner.workload_log = workload
                            inner.auditor = auditor
                            auditor.audit_now()  # drain off the clock
                    pairs.append((walls[True], walls[False]))
            finally:
                auditor.stop()
                inner.workload_log = None
                inner.auditor = None
        return pairs, auditor.stats()

    pairs, audit_stats = asyncio.run(measure())

    audited_qps = TOTAL_QUERIES / min(audited for audited, _ in pairs)
    baseline_qps = TOTAL_QUERIES / min(baseline for _, baseline in pairs)
    ratio = max(baseline / audited for audited, baseline in pairs)

    record(
        "audit_overhead",
        format_table(
            ["auditing", "queries", "best wall s", "queries/s"],
            [
                [
                    f"on ({audit_stats['sample_rate']:.0%} sampling)",
                    str(TOTAL_QUERIES),
                    fmt(min(audited for audited, _ in pairs), 3),
                    fmt(audited_qps, 0),
                ],
                [
                    "off",
                    str(TOTAL_QUERIES),
                    fmt(min(baseline for _, baseline in pairs), 3),
                    fmt(baseline_qps, 0),
                ],
                ["audited / baseline", "-", "-", f"{ratio:.3f}x"],
            ],
            title=(
                f"Accuracy-audit overhead: {TOTAL_QUERIES} warm pipelined "
                f"queries per round, best adjacent pair of "
                f"{ROUNDS_PER_ARM} alternating rounds "
                f"(bar: >= {1 - MAX_OVERHEAD_FRACTION:.2f}x)"
            ),
        ),
    )
    record_json(
        "audit_overhead",
        {
            "total_queries": TOTAL_QUERIES,
            "rounds_per_arm": ROUNDS_PER_ARM,
            "sample_rate": audit_stats["sample_rate"],
            "audited": {
                "wall_seconds": min(audited for audited, _ in pairs),
                "queries_per_second": audited_qps,
                "all_walls": [audited for audited, _ in pairs],
            },
            "baseline": {
                "wall_seconds": min(baseline for _, baseline in pairs),
                "queries_per_second": baseline_qps,
                "all_walls": [baseline for _, baseline in pairs],
            },
            "pair_ratios": [baseline / audited for audited, baseline in pairs],
            "throughput_ratio": ratio,
            "overhead_fraction": max(0.0, 1.0 - ratio),
            "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
            "queries_audited": audit_stats["audited"],
        },
    )
    assert ratio >= 1.0 - MAX_OVERHEAD_FRACTION, (
        f"audited throughput is {ratio:.3f}x the un-audited baseline "
        f"({audited_qps:.0f} vs {baseline_qps:.0f} queries/s); required >= "
        f"{1 - MAX_OVERHEAD_FRACTION:.2f}x"
    )
