"""Fast-wire-path latency benchmarks: pipelining, cluster p50, result cache.

Three claims from the binary-protocol PR, each recorded as a rendered
table (``benchmarks/results/*.txt``) plus a machine-readable JSON payload
(``*.json``) with latency percentiles and throughput:

* **Pipelining** — a :class:`PipelinedClient` issuing many in-flight
  binary frames over one loopback connection completes a repeated-query
  workload at >= 2x the throughput of the serialized JSON-lines client
  (one request-response turnaround at a time), against the identical
  single-process server.
* **Cluster latency** — the small-query p50 through a 2-shard subprocess
  cluster (scatter over the multiplexed binary channels + gather) stays
  within 2x of querying one single-process server directly.  On a 1-CPU
  host the two worker processes and the driver share one core, so the
  bar degrades to a documented floor — the same policy as the sharded
  throughput benchmark.
* **Result cache** — a repeated query is served from the
  synopsis-version-keyed cache in well under 0.1 ms, returns the
  bit-identical result an uncached execution produces, and an ingest
  (version bump) invalidates it: the re-query matches a cache-bypassing
  execution exactly.
"""

from __future__ import annotations

import os
import statistics
import sys
import time
from pathlib import Path

import pytest
from bench_utils import record, record_json

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from conftest import make_simple_table  # noqa: E402  (tests/ dir, see above)

from repro import PairwiseHistParams, QueryService  # noqa: E402
from repro.bench.harness import fmt, format_table, latency_percentiles  # noqa: E402
from repro.cluster import ClusterQueryService  # noqa: E402
from repro.cluster.supervisor import ShardSupervisor  # noqa: E402
from repro.service.wire import ClusterClient, PipelinedClient  # noqa: E402

ROWS = 20_000
PARTITION_SIZE = 1_000
NUM_SHARDS = 2

#: Pipelined-vs-serialized workload: a dashboard cycling a small set of
#: query strings (cache hits after the first round — the wire dominates).
PIPELINE_SQLS = [
    f"SELECT AVG(x) FROM stream WHERE y > {threshold}"
    for threshold in (10, 20, 30, 40, 50, 60, 70, 80)
]
PIPELINE_TOTAL = 200
#: Measurement rounds per client; the best round is scored (the standard
#: guard against scheduler jitter on a ~20 ms window).
PIPELINE_ROUNDS = 3
#: Throughput bar with >= 2 usable CPUs: client-side encode and the
#: server's frame handling overlap, which is what pipelining buys.
REQUIRED_PIPELINE_SPEEDUP = 2.0
#: One CPU: client and server time-slice a single core, so the win
#: reduces to the saved turnarounds + JSON codec (measured ~1.9-2.0x
#: when frozen); bound it rather than assert overlap that cannot exist.
SINGLE_CORE_PIPELINE_FLOOR = 1.4

#: Cluster-p50 workload: distinct thresholds so every query pays real
#: synopsis work, not just a cache lookup.
CLUSTER_QUERY_COUNT = 60
CLUSTER_WARMUP = 10
#: p50 bar with >= 2 usable CPUs (the worker processes get their own core).
REQUIRED_CLUSTER_P50_RATIO = 2.0
#: One CPU: both workers and the driver time-slice a single core, so the
#: scatter adds scheduling latency no protocol can hide; bounded overhead
#: is all that can be asserted (measured ~2.2x when frozen).
SINGLE_CORE_CLUSTER_P50_FLOOR = 4.0

CACHE_HIT_BUDGET_MS = 0.1


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _params() -> PairwiseHistParams:
    return PairwiseHistParams.with_defaults(sample_size=None, seed=1)


@pytest.mark.slow
def test_pipelined_binary_client_beats_serialized_json_client(tmp_path):
    supervisor = ShardSupervisor(
        data_dirs=[tmp_path / "single"],
        partition_size=PARTITION_SIZE,
        checkpoint_interval=3600.0,
        workers_per_shard=4,
    )
    try:
        handle = supervisor.spawn(0)
        address = (supervisor.host, handle.port)
        table = make_simple_table(rows=ROWS, seed=50, name="stream")
        with ClusterClient(*address) as admin:
            admin.register(table, params=_params(), partition_size=PARTITION_SIZE)

        # Warm every query once (parse + result caches on the server), so
        # both measurements see the identical steady-state wire path.
        with PipelinedClient(*address) as warm:
            expected = {sql: warm.query(sql) for sql in PIPELINE_SQLS}

        workload = [
            PIPELINE_SQLS[i % len(PIPELINE_SQLS)] for i in range(PIPELINE_TOTAL)
        ]

        serial_walls, pipelined_walls = [], []
        serial_latencies: list[float] = []
        with ClusterClient(*address) as serialized:
            for _ in range(PIPELINE_ROUNDS):
                round_latencies = []
                start = time.perf_counter()
                for sql in workload:
                    began = time.perf_counter()
                    assert serialized.query(sql) == expected[sql]
                    round_latencies.append(time.perf_counter() - began)
                serial_walls.append(time.perf_counter() - start)
                serial_latencies = round_latencies

        with PipelinedClient(*address) as pipelined:
            for _ in range(PIPELINE_ROUNDS):
                start = time.perf_counter()
                futures = [(sql, pipelined.submit_query(sql)) for sql in workload]
                for sql, future in futures:
                    assert future.result(timeout=30.0) == expected[sql]
                pipelined_walls.append(time.perf_counter() - start)
    finally:
        supervisor.stop(graceful=True)

    serial_wall = min(serial_walls)
    pipelined_wall = min(pipelined_walls)
    serial_qps = PIPELINE_TOTAL / serial_wall
    pipelined_qps = PIPELINE_TOTAL / pipelined_wall
    speedup = pipelined_qps / serial_qps
    serial_pcts = latency_percentiles(serial_latencies)
    cpus = _usable_cpus()
    required = (
        REQUIRED_PIPELINE_SPEEDUP if cpus >= 2 else SINGLE_CORE_PIPELINE_FLOOR
    )
    note = (
        f"bar >= {required}x at {cpus} usable CPU(s)"
        if cpus >= 2
        else f"{cpus} usable CPU: floor >= {required}x here; the "
        f"{REQUIRED_PIPELINE_SPEEDUP}x overlap bar is enforced on the "
        "multi-core CI latency job"
    )

    record(
        "wire_latency_pipelining",
        format_table(
            ["client", "queries", "wall s", "queries/s", "p50 ms"],
            [
                [
                    "serialized JSON-lines",
                    str(PIPELINE_TOTAL),
                    fmt(serial_wall, 3),
                    fmt(serial_qps, 0),
                    fmt(serial_pcts["p50_ms"], 3),
                ],
                [
                    "pipelined binary",
                    str(PIPELINE_TOTAL),
                    fmt(pipelined_wall, 3),
                    fmt(pipelined_qps, 0),
                    "-",
                ],
                ["speedup", "-", "-", f"{speedup:.2f}x", "-"],
            ],
            title=(
                f"Pipelined binary vs serialized JSON client, one loopback "
                f"connection, {PIPELINE_TOTAL} warm queries over "
                f"{len(PIPELINE_SQLS)} distinct SQL strings, best of "
                f"{PIPELINE_ROUNDS} rounds ({note})"
            ),
        ),
    )
    record_json(
        "wire_latency_pipelining",
        {
            "total_queries": PIPELINE_TOTAL,
            "distinct_sqls": len(PIPELINE_SQLS),
            "serialized": {
                "wall_seconds": serial_wall,
                "queries_per_second": serial_qps,
                "latency": serial_pcts,
            },
            "pipelined": {
                "wall_seconds": pipelined_wall,
                "queries_per_second": pipelined_qps,
            },
            "speedup": speedup,
            "usable_cpus": cpus,
            "required_speedup": required,
        },
    )
    assert speedup >= required, (
        f"pipelined binary client reached only {speedup:.2f}x the serialized "
        f"JSON client ({pipelined_qps:.0f} vs {serial_qps:.0f} queries/s) on "
        f"{cpus} usable CPU(s); required >= {required}x"
    )


@pytest.mark.slow
def test_cluster_small_query_p50_within_bar_of_single_node(tmp_path):
    table = make_simple_table(rows=ROWS, seed=50, name="stream")
    sqls = [
        f"SELECT AVG(x) FROM stream WHERE y > {90 * i / CLUSTER_QUERY_COUNT:.3f}"
        for i in range(CLUSTER_QUERY_COUNT)
    ]

    # ---- single-node: one subprocess server, direct binary client ------- #
    supervisor = ShardSupervisor(
        data_dirs=[tmp_path / "single"],
        partition_size=PARTITION_SIZE,
        checkpoint_interval=3600.0,
        workers_per_shard=4,
    )
    try:
        handle = supervisor.spawn(0)
        with ClusterClient(supervisor.host, handle.port) as admin:
            admin.register(table, params=_params(), partition_size=PARTITION_SIZE)
        with PipelinedClient(supervisor.host, handle.port) as client:
            for sql in sqls[:CLUSTER_WARMUP]:
                client.query(sql)
            single_latencies = []
            for sql in sqls:
                began = time.perf_counter()
                client.query(sql)
                single_latencies.append(time.perf_counter() - began)
    finally:
        supervisor.stop(graceful=True)

    # ---- 2-shard cluster: scatter-gather over multiplexed channels ------ #
    cluster = ClusterQueryService(
        num_shards=NUM_SHARDS,
        path=tmp_path / "cluster",
        mode="process",
        partition_size=PARTITION_SIZE,
        worker_options={"checkpoint_interval": 3600.0, "workers_per_shard": 4},
    )
    try:
        cluster.register_table(table, params=_params())
        for sql in sqls[:CLUSTER_WARMUP]:
            cluster.execute(sql)
        cluster_latencies = []
        for sql in sqls:
            began = time.perf_counter()
            cluster.execute(sql)
            cluster_latencies.append(time.perf_counter() - began)
    finally:
        cluster.close()

    single = latency_percentiles(single_latencies)
    clustered = latency_percentiles(cluster_latencies)
    ratio = clustered["p50_ms"] / single["p50_ms"]
    cpus = _usable_cpus()
    required = (
        REQUIRED_CLUSTER_P50_RATIO if cpus >= 2 else SINGLE_CORE_CLUSTER_P50_FLOOR
    )
    note = (
        f"bar <= {required}x at {cpus} usable CPU(s)"
        if cpus >= 2
        else f"{cpus} usable CPU: floor <= {required}x here; the "
        f"{REQUIRED_CLUSTER_P50_RATIO}x bar is enforced on the multi-core "
        "CI latency job"
    )

    record(
        "wire_latency_cluster_p50",
        format_table(
            ["deployment", "p50 ms", "p90 ms", "p99 ms"],
            [
                ["single-process"]
                + [fmt(single[k], 3) for k in ("p50_ms", "p90_ms", "p99_ms")],
                [f"{NUM_SHARDS}-shard cluster"]
                + [fmt(clustered[k], 3) for k in ("p50_ms", "p90_ms", "p99_ms")],
                ["p50 ratio", f"{ratio:.2f}x", "-", "-"],
            ],
            title=(
                f"Small-query latency, {NUM_SHARDS}-shard subprocess cluster vs "
                f"one single-process server ({ROWS} rows, "
                f"{CLUSTER_QUERY_COUNT} distinct queries; {note})"
            ),
        ),
    )
    record_json(
        "wire_latency_cluster_p50",
        {
            "num_shards": NUM_SHARDS,
            "usable_cpus": cpus,
            "queries": CLUSTER_QUERY_COUNT,
            "single_node": single,
            "cluster": clustered,
            "p50_ratio": ratio,
            "required_ratio": required,
        },
    )
    assert ratio <= required, (
        f"{NUM_SHARDS}-shard cluster p50 is {ratio:.2f}x the single-node p50 "
        f"({clustered['p50_ms']:.3f} vs {single['p50_ms']:.3f} ms) on {cpus} "
        f"usable CPU(s); required <= {required}x"
    )


@pytest.mark.slow
def test_result_cache_hit_is_fast_identical_and_invalidated_by_ingest():
    service = QueryService(partition_size=PARTITION_SIZE)
    service.register_table(
        make_simple_table(rows=4_000, seed=50, name="stream"), params=_params()
    )
    uncached = QueryService(database=service.database, result_cache_size=0)
    sql = "SELECT AVG(x) FROM stream WHERE y > 50"

    first = service.execute_scalar(sql)  # the miss that populates the cache
    hit_timings = []
    for _ in range(50):
        began = time.perf_counter()
        hit = service.execute_scalar(sql)
        hit_timings.append(time.perf_counter() - began)
        assert hit is first  # the exact object — bit-identical by construction
    hit_ms = statistics.median(hit_timings) * 1e3
    assert service.cache_stats["stream"] == {"hits": 50, "misses": 1}

    # A hit equals what a cache-bypassing service answers over the same
    # database, field for field.
    bypass = uncached.execute_scalar(sql)
    assert (first.value, first.lower, first.upper) == (
        bypass.value,
        bypass.lower,
        bypass.upper,
    )

    # Ingest bumps the synopsis version: the next lookup misses and the
    # fresh answer again matches the cache-bypassing execution exactly.
    service.ingest("stream", make_simple_table(rows=400, seed=9, name="stream"))
    requeried = service.execute_scalar(sql)
    assert requeried is not first
    assert service.cache_stats["stream"]["misses"] == 2
    bypass_after = uncached.execute_scalar(sql)
    assert (requeried.value, requeried.lower, requeried.upper) == (
        bypass_after.value,
        bypass_after.lower,
        bypass_after.upper,
    )

    record(
        "wire_latency_result_cache",
        format_table(
            ["metric", "value"],
            [
                ["median hit latency (ms)", fmt(hit_ms, 4)],
                ["budget (ms)", fmt(CACHE_HIT_BUDGET_MS, 1)],
                ["hits", "50"],
                ["misses (initial + post-ingest)", "2"],
            ],
            title="Synopsis-version result cache: hit latency and invalidation",
        ),
    )
    record_json(
        "wire_latency_result_cache",
        {
            "median_hit_ms": hit_ms,
            "budget_ms": CACHE_HIT_BUDGET_MS,
            "hits": 50,
            "misses": 2,
        },
    )
    assert hit_ms < CACHE_HIT_BUDGET_MS, (
        f"median cache-hit latency {hit_ms:.4f} ms exceeds the "
        f"{CACHE_HIT_BUDGET_MS} ms budget"
    )
