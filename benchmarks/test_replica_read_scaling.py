"""Replica read-scaling benchmark: one shard, N WAL-shipping replicas.

The claim: read-only query throughput of a replicated shard scales with
the replica count, because the staleness-bounded router scatters the
closed-loop clients across the primary *and* every caught-up follower —
three worker processes evaluating synopses instead of one.

The acceptance bar is tiered by usable CPUs, same policy as
``test_sharded_throughput.py``:

* >= 4 CPUs (the CI failover-drill job): 1 primary + 2 replicas must
  deliver >= 1.8x the queries/s of the primary alone — the router keeps
  all three processes busy and loses at most ~10% per process to the
  front end and driver sharing cores.
* 2-3 CPUs: the replicas parallelize but contend with the driver; the
  replicated deployment must at least break even (>= 1.05x).
* 1 CPU: three processes time-slice one core, so there is nothing to
  harvest and every query still pays the two extra wire hops; the
  deployment must merely stay within a bounded overhead of the lone
  primary (measured 0.45x when frozen — context-switch churn across
  three interpreters dominates at ~1ms/query) and the measured ratio
  is recorded with an explicit note.

Both deployments run with the result cache off and checkpoints pushed
out of the window, so the ratio measures multi-process synopsis
evaluation, not cache hits (cache behaviour has its own bars in
``test_wire_latency.py``).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest
from bench_utils import bench_scale, record, record_json

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from repro import load_dataset  # noqa: E402
from repro.bench.harness import fmt, format_table, run_replication_benchmark  # noqa: E402
from repro.core.params import PairwiseHistParams  # noqa: E402
from repro.workload.generator import QueryGenerator, WorkloadSpec  # noqa: E402

ROWS = 30_000
PARTITION_SIZE = 2_000
WINDOW_SECONDS = 8.0
NUM_CLIENTS = 4
REPLICAS = 2
#: >= 4 usable CPUs: primary + 2 replicas + driver each get a core.
REQUIRED_MULTICORE_SPEEDUP = 1.8
#: 2-3 CPUs: partial parallelism; must at least break even.
REQUIRED_DUAL_CORE_FLOOR = 1.05
#: 1 CPU: no parallelism to harvest; bounded routing/scheduling overhead
#: (0.45x measured when frozen, with headroom for a noisy box).
REQUIRED_SINGLE_CORE_FLOOR = 0.35


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _required_ratio(cpus: int) -> float:
    if cpus >= 4:
        return REQUIRED_MULTICORE_SPEEDUP
    if cpus >= 2:
        return REQUIRED_DUAL_CORE_FLOOR
    return REQUIRED_SINGLE_CORE_FLOOR


@pytest.mark.slow
def test_replica_read_scaling(tmp_path):
    scale = bench_scale()
    table = load_dataset("power", rows=ROWS, seed=scale.seed)
    spec = WorkloadSpec.initial_experiments(num_queries=20, seed=scale.seed)
    sql_queries = [str(q) for q in QueryGenerator(table, spec).generate()]
    params = PairwiseHistParams(sample_size=None, min_points=200, seed=scale.seed)

    measurements = run_replication_benchmark(
        table,
        sql_queries,
        tmp_path,
        replica_counts=(0, REPLICAS),
        params=params,
        partition_size=PARTITION_SIZE,
        num_clients=NUM_CLIENTS,
        duration_seconds=WINDOW_SECONDS,
    )
    alone = next(m for m in measurements if m.mode == "1-primary-0-replica")
    replicated = next(
        m for m in measurements if m.mode == f"1-primary-{REPLICAS}-replica"
    )
    ratio = replicated.queries_per_second / alone.queries_per_second
    cpus = _usable_cpus()
    required = _required_ratio(cpus)

    rows = [
        [m.mode, str(m.num_clients), str(m.queries), fmt(m.queries_per_second, 1)]
        for m in measurements
    ]
    rows.append([f"read speedup ({cpus} cpu)", "-", "-", f"{ratio:.2f}x"])
    note = (
        f"bar >= {required}x at {cpus} usable CPU(s)"
        if cpus >= 4
        else f"{cpus} usable CPU(s): floor >= {required}x here; the "
        f"{REQUIRED_MULTICORE_SPEEDUP}x scaling bar is enforced on the "
        "multi-core CI failover-drill job"
    )
    record(
        "replication_read_scaling",
        format_table(
            ["deployment", "clients", "queries", "queries/s"],
            rows,
            title=(
                f"Read-only throughput, 1-shard cluster with {REPLICAS} "
                f"WAL-shipping replicas vs primary alone ({ROWS} rows power, "
                f"{NUM_CLIENTS} closed-loop clients, {WINDOW_SECONDS:.0f}s "
                f"window, result cache off; {note})"
            ),
        ),
    )
    record_json(
        "replication_read_scaling",
        {
            "rows": ROWS,
            "num_clients": NUM_CLIENTS,
            "replicas": REPLICAS,
            "window_seconds": WINDOW_SECONDS,
            "usable_cpus": cpus,
            "required_ratio": required,
            "ratio": ratio,
            "deployments": [
                {
                    "mode": m.mode,
                    "queries": m.queries,
                    "queries_per_second": m.queries_per_second,
                    "wall_seconds": m.wall_seconds,
                }
                for m in measurements
            ],
        },
    )
    assert ratio >= required, (
        f"1-primary-{REPLICAS}-replica read throughput ratio {ratio:.2f}x "
        f"below the {required}x bar at {cpus} usable CPU(s)"
    )
