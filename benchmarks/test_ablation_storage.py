"""Ablation — adaptive dense/sparse (Golomb) bin-count encoding vs dense-only."""

from bench_utils import bench_scale, record

from repro.bench import AblationStorageEncoding


def test_ablation_storage_encoding(benchmark):
    """Isolates the benefit of the §4.3 sparse bin-count encoding."""
    experiment = AblationStorageEncoding(scale=bench_scale())
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    record("ablation_storage_encoding", experiment.render())

    assert results["adaptive_mb"] <= results["dense_only_mb"]
