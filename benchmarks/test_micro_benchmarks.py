"""Micro-benchmarks of the core kernels (repeated-measurement timings).

Unlike the experiment benches (one full table/figure per test), these use
pytest-benchmark's statistics to time the individual kernels the paper's
latency and construction claims rest on: synopsis construction, single-query
execution, synopsis serialization and GreedyGD compression.
"""

import pytest

from bench_utils import bench_scale

from repro import PairwiseHistEngine, PairwiseHistParams, load_dataset, parse_query
from repro.core.serialization import deserialize, serialize
from repro.gd.store import CompressedStore


@pytest.fixture(scope="module")
def scale():
    return bench_scale()


@pytest.fixture(scope="module")
def power(scale):
    return load_dataset("power", rows=scale.dataset_rows, seed=scale.seed)


@pytest.fixture(scope="module")
def engine(power, scale):
    params = PairwiseHistParams.with_defaults(sample_size=scale.sample_small, seed=scale.seed)
    return PairwiseHistEngine.from_table(power, params=params)


def test_synopsis_construction(benchmark, power, scale):
    """Time to build the full PairwiseHist synopsis (Fig. 11(d) kernel)."""
    params = PairwiseHistParams.with_defaults(sample_size=scale.sample_tiny, seed=scale.seed)
    benchmark.pedantic(
        PairwiseHistEngine.from_table, args=(power,), kwargs={"params": params},
        rounds=3, iterations=1,
    )


def test_single_predicate_query_latency(benchmark, engine):
    """Single-predicate AVG query latency (Fig. 11(c) kernel)."""
    query = parse_query("SELECT AVG(global_active_power) FROM power WHERE voltage > 240")
    result = benchmark(engine.execute_scalar, query)
    assert result.lower <= result.value <= result.upper


def test_multi_predicate_query_latency(benchmark, engine):
    """Five-predicate mixed AND/OR query latency."""
    query = parse_query(
        "SELECT SUM(global_active_power) FROM power WHERE "
        "voltage > 238 AND voltage < 244 AND hour >= 6 AND hour < 22 OR global_intensity > 12"
    )
    result = benchmark(engine.execute_scalar, query)
    assert result.value >= 0


@pytest.fixture(scope="module")
def light_engine(scale):
    table = load_dataset("light", rows=scale.dataset_rows, seed=scale.seed)
    params = PairwiseHistParams.with_defaults(sample_size=scale.sample_tiny, seed=scale.seed)
    return PairwiseHistEngine.from_table(table, params=params)


def test_group_by_query_latency(benchmark, light_engine):
    """GROUP BY query latency (one estimate per category of a categorical column)."""
    query = parse_query("SELECT COUNT(lux) FROM light WHERE battery > 50 GROUP BY device")
    results = benchmark(light_engine.execute, query)
    assert len(results) >= 1


def test_synopsis_serialization_round_trip(benchmark, engine):
    """Serialize + deserialize the synopsis (storage encoding of §4.3)."""
    def round_trip():
        return deserialize(serialize(engine.synopsis))

    restored = benchmark(round_trip)
    assert restored.columns == engine.synopsis.columns


def test_greedygd_compression(benchmark, power):
    """GreedyGD compression of the Power dataset (ingestion kernel of Fig. 2)."""
    store = benchmark.pedantic(CompressedStore.compress, args=(power,), rounds=3, iterations=1)
    assert store.num_rows == power.num_rows
