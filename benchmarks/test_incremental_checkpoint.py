"""Incremental checkpoint benchmark: O(tail) wall time, not O(table).

The v2 snapshot format hard-links every sealed partition blob from the
previous snapshot and rewrites only the tail blob, the parts index, the
synopsis payload (memoized per sealed partition) and the catalog /
manifest.  Steady-state checkpoint cost should therefore track the
*ingest batch*, not the table: this benchmark checkpoints two databases
whose tables differ 10x in size after identical ingests and pins the
median wall-time ratio at <= 2x (the paper-adjacent acceptance bar from
the issue; a full v1 rewrite is measured alongside for contrast and
scales linearly).

Results land in ``benchmarks/results/incremental_checkpoint.txt`` with a
machine-readable twin in ``incremental_checkpoint.json``.
"""

from __future__ import annotations

import statistics
import time

import numpy as np
import pytest
from bench_utils import bench_scale, record, record_json

from repro import load_dataset
from repro.bench.harness import fmt, format_table
from repro.core.params import PairwiseHistParams
from repro.storage import DurableDatabase, write_snapshot

SMALL_ROWS = 6_000
BIG_ROWS = 60_000
PARTITION_SIZE = 2_000
INGEST_ROWS = 500
CYCLES = 3
#: The tentpole acceptance bar: 10x the table, at most 2x the checkpoint.
REQUIRED_RATIO = 2.0
#: Guards the ratio against timer noise when a cycle is only a few ms.
FLOOR_SECONDS = 0.02

QUERY = "SELECT AVG(global_active_power) FROM power WHERE voltage > 240"


def _checkpoint_cycles(tmp_path, name: str, rows: int, table):
    """Register ``rows`` of ``table``, checkpoint, then time CYCLES
    ingest-and-checkpoint rounds.  Returns (db, per-cycle seconds)."""
    base = table.select_rows(np.arange(rows))
    db = DurableDatabase.open(
        tmp_path / name,
        default_params=PairwiseHistParams.with_defaults(sample_size=5_000),
        partition_size=PARTITION_SIZE,
    )
    db.register(base)
    db.checkpoint()  # the link source for the incremental chain
    seconds = []
    offset = rows
    for cycle in range(CYCLES):
        batch = table.select_rows(np.arange(offset, offset + INGEST_ROWS))
        offset += INGEST_ROWS
        db.ingest("power", batch)
        result = db.checkpoint()
        assert not result.skipped
        seconds.append(result.seconds)
    return db, seconds


@pytest.mark.slow
def test_checkpoint_cost_tracks_tail_not_table(tmp_path):
    scale = bench_scale()
    table = load_dataset(
        "power", rows=BIG_ROWS + CYCLES * INGEST_ROWS, seed=scale.seed
    )

    small_db, small_seconds = _checkpoint_cycles(
        tmp_path, "small", SMALL_ROWS, table
    )
    big_db, big_seconds = _checkpoint_cycles(tmp_path, "big", BIG_ROWS, table)
    small_median = statistics.median(small_seconds)
    big_median = statistics.median(big_seconds)

    # Contrast point: what the pre-v2 behaviour costs — a full monolithic
    # rewrite of the big table's snapshot (every sealed partition
    # re-serialized), which scales with the table instead of the tail.
    state = big_db._capture()
    start = time.perf_counter()
    write_snapshot(tmp_path / "v1-rewrite", state, format_version=1)
    full_rewrite = time.perf_counter() - start

    # Both databases must recover bit-identically to their live state.
    for db, name in ((small_db, "small"), (big_db, "big")):
        from repro.service.database import QueryService

        expected = QueryService(database=db).execute_scalar(QUERY).value
        db.close()
        recovered = DurableDatabase.open(
            tmp_path / name,
            default_params=PairwiseHistParams.with_defaults(sample_size=5_000),
            partition_size=PARTITION_SIZE,
        )
        assert recovered.recovery_info.replayed_records == 0
        got = QueryService(database=recovered).execute_scalar(QUERY).value
        assert got == expected
        recovered.close()

    ratio = big_median / max(small_median, FLOOR_SECONDS)
    text = format_table(
        ["table", "rows", "median ckpt", "notes"],
        [
            [
                "small",
                str(SMALL_ROWS),
                fmt(small_median, 4),
                f"{CYCLES} ingest+checkpoint cycles of {INGEST_ROWS} rows",
            ],
            [
                "big (10x)",
                str(BIG_ROWS),
                fmt(big_median, 4),
                f"ratio {ratio:.2f}x (required <= {REQUIRED_RATIO:.1f}x)",
            ],
            [
                "big, v1 full rewrite",
                str(BIG_ROWS),
                fmt(full_rewrite, 4),
                "monolithic format: every sealed partition re-serialized",
            ],
        ],
        title=(
            f"Incremental checkpoint cost vs table size "
            f"(partition size {PARTITION_SIZE})"
        ),
    )
    record("incremental_checkpoint", text)
    record_json(
        "incremental_checkpoint",
        {
            "small_rows": SMALL_ROWS,
            "big_rows": BIG_ROWS,
            "partition_size": PARTITION_SIZE,
            "ingest_rows": INGEST_ROWS,
            "cycles": CYCLES,
            "small_seconds": small_seconds,
            "big_seconds": big_seconds,
            "small_median_seconds": small_median,
            "big_median_seconds": big_median,
            "big_v1_full_rewrite_seconds": full_rewrite,
            "ratio": ratio,
            "required_ratio": REQUIRED_RATIO,
        },
    )

    assert big_median <= REQUIRED_RATIO * max(small_median, FLOOR_SECONDS), (
        f"checkpointing a 10x table cost {big_median:.4f}s vs "
        f"{small_median:.4f}s on the small table "
        f"({ratio:.2f}x > {REQUIRED_RATIO:.1f}x): the incremental path is "
        f"doing O(table) work"
    )
