"""GreedyGD warm-start benchmark: append-path bit-selection speedup.

On append-heavy workloads every fresh overflow partition re-runs the
greedy deviation-bit search.  Rows arriving on one stream share a
distribution, so seeding the search from the previous tail partition's
bits usually starts at (or one move from) the optimum: the warm search
pays one bidirectional sweep instead of walking up from zero deviation
bits one move per bit.

The workload is machine-generated-style telemetry — one noisy ADC
channel plus low-cardinality status channels — where the cold search
genuinely walks (the repo's uniform synthetic datasets stall at zero
deviation bits, making the search trivially cheap for both paths).

Results land in ``benchmarks/results/gd_warm_start.txt``.
"""

from __future__ import annotations

import time

import numpy as np
from bench_utils import bench_scale, record

from repro.gd.greedygd import select_deviation_bits

ROWS = 20_000
BATCHES = 4
REQUIRED_SPEEDUP = 1.5


def _telemetry_batch(rng) -> tuple[np.ndarray, np.ndarray]:
    """One append batch: 16 device baselines << 10 bits of ADC noise,
    plus clean low-cardinality device / status channels."""
    noisy = (rng.integers(0, 16, ROWS) << 10) | rng.integers(0, 2**10, ROWS)
    device = rng.integers(0, 8, ROWS)
    status = rng.integers(0, 4, ROWS)
    codes = np.column_stack([noisy, device, status]).astype(np.int64)
    return codes, np.array([14, 3, 2], dtype=np.int64)


def test_warm_start_speeds_up_append_path_bit_selection():
    scale = bench_scale()
    rng = np.random.default_rng(scale.seed)
    batches = [_telemetry_batch(rng) for _ in range(BATCHES)]

    cold_seconds = 0.0
    cold_bits = []
    for codes, total_bits in batches:
        start = time.perf_counter()
        cold_bits.append(select_deviation_bits(codes, total_bits))
        cold_seconds += time.perf_counter() - start

    warm_seconds = 0.0
    warm_bits = []
    previous = None
    for codes, total_bits in batches:
        start = time.perf_counter()
        bits = select_deviation_bits(codes, total_bits, warm_start=previous)
        warm_seconds += time.perf_counter() - start
        warm_bits.append(bits)
        previous = bits

    # The warm search may settle in a different local optimum than the
    # cold one; what matters is that compression quality does not regress
    # (first warm batch has no predecessor, so it runs cold — included in
    # the timing, as on the real append path).
    from repro.gd.greedygd import _estimate_bits

    quality = []
    for (codes, total_bits), cold, warm in zip(batches, cold_bits, warm_bits):
        cold_size, _ = _estimate_bits(codes, cold, total_bits)
        warm_size, _ = _estimate_bits(codes, warm, total_bits)
        quality.append(warm_size / cold_size)
        assert warm_size <= cold_size * 1.02, (
            f"warm-started split {warm.tolist()} compresses {warm_size} bits vs "
            f"cold {cold.tolist()} at {cold_size} bits"
        )

    speedup = cold_seconds / warm_seconds
    from repro.bench.harness import fmt, format_table

    text = format_table(
        ["search", "seconds", "bits found", "size vs cold"],
        [
            [
                "cold (from zero)",
                fmt(cold_seconds, 3),
                str(cold_bits[-1].tolist()),
                "1.000",
            ],
            [
                "warm (previous tail)",
                fmt(warm_seconds, 3),
                str(warm_bits[-1].tolist()),
                fmt(max(quality), 3),
            ],
            [
                "speedup",
                f"{speedup:.1f}x",
                f"required >= {REQUIRED_SPEEDUP:.1f}x",
                "",
            ],
        ],
        title=(
            f"GreedyGD bit-selection: cold vs warm-started search "
            f"({BATCHES} append batches x {ROWS} rows, 3 columns)"
        ),
    )
    record("gd_warm_start", text)

    assert speedup >= REQUIRED_SPEEDUP, (
        f"warm-started search only {speedup:.2f}x faster "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s)"
    )
