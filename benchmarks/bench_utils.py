"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at a
configurable scale.  The scale is selected with the ``REPRO_BENCH_SCALE``
environment variable:

* ``smoke``   (default) — minutes on a laptop, preserves relative rankings,
* ``default`` — tens of minutes, closer to the paper's sample-size ratios,
* ``paper``   — overnight-sized run.

Rendered result tables are printed and also written to
``benchmarks/results/<name>.txt`` so the regenerated rows survive pytest's
output capturing and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

from repro.bench import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> ExperimentScale:
    """Experiment scale selected by the ``REPRO_BENCH_SCALE`` env var."""
    name = os.environ.get("REPRO_BENCH_SCALE", "smoke").lower()
    if name == "paper":
        return ExperimentScale.paper()
    if name == "default":
        return ExperimentScale.default()
    return ExperimentScale.smoke()


def record(name: str, text: str) -> None:
    """Print a rendered experiment table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def _jsonable(value):
    """NaN/inf are not valid JSON; encode them as null, recursively."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def record_json(name: str, payload: dict) -> None:
    """Persist a machine-readable result next to the rendered ``.txt`` table.

    Written to ``benchmarks/results/<name>.json`` so dashboards and
    regression tooling can track latency percentiles / throughput numbers
    without screen-scraping the fixed-width tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(_jsonable(payload), indent=2, sort_keys=True) + "\n"
    )
