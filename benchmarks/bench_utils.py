"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at a
configurable scale.  The scale is selected with the ``REPRO_BENCH_SCALE``
environment variable:

* ``smoke``   (default) — minutes on a laptop, preserves relative rankings,
* ``default`` — tens of minutes, closer to the paper's sample-size ratios,
* ``paper``   — overnight-sized run.

Rendered result tables are printed and also written to
``benchmarks/results/<name>.txt`` so the regenerated rows survive pytest's
output capturing and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.bench import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> ExperimentScale:
    """Experiment scale selected by the ``REPRO_BENCH_SCALE`` env var."""
    name = os.environ.get("REPRO_BENCH_SCALE", "smoke").lower()
    if name == "paper":
        return ExperimentScale.paper()
    if name == "default":
        return ExperimentScale.default()
    return ExperimentScale.smoke()


def record(name: str, text: str) -> None:
    """Print a rendered experiment table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
