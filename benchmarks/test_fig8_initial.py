"""Fig. 8 — median error and synopsis size across the 11 real-world datasets."""

from bench_utils import bench_scale, record

from repro.bench import Fig8InitialExperiments


def test_fig8_initial_experiments(benchmark):
    """Regenerates Fig. 8(a) (median error) and Fig. 8(b) (synopsis size)."""
    experiment = Fig8InitialExperiments(scale=bench_scale())
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    record("fig8_initial_experiments", experiment.render())

    # Shape check mirroring the paper's headline claim against DeepDB:
    # PairwiseHist is at least as accurate on a majority of the 11 datasets.
    # (The DBEst++ stand-in is only trained on the workload's templates, so
    # its size/accuracy at laptop scale is not directly comparable.)
    ph_beats_deepdb = 0
    for per_dataset in results.values():
        ph = per_dataset["PairwiseHist 100k"]
        dd = per_dataset["DeepDB 100k"]
        if ph["median_error_percent"] <= dd["median_error_percent"] + 1e-9:
            ph_beats_deepdb += 1
    assert ph_beats_deepdb >= len(results) // 2
