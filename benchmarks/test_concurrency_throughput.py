"""Concurrency benchmark: query throughput under clients + background ingest.

Closed-loop dashboard clients (2 ms think time) hammer one table while a
background writer streams a 1 000-row batch in every 50 ms — each append
recompresses the tail partition and re-merges the synopsis, which costs
~100 ms, so in a serialized service (one global mutex, the no-concurrency
baseline) ingestion holds the lock most of the time and queries starve.
The concurrent service (per-table reader-writer locks, copy-on-write
refresh: stage off-lock, swap under the write lock) keeps answering at
full speed through the same ingest stream.

The acceptance bar is >=2x aggregate throughput at 4 clients over the
serialized baseline; the copy-on-write design typically clears it by more
than an order of magnitude.
"""

import pytest
from bench_utils import bench_scale, record

from repro import load_dataset
from repro.bench.harness import fmt, format_table, run_concurrency_benchmark
from repro.workload.generator import QueryGenerator, WorkloadSpec

#: The contention scenario is fixed regardless of REPRO_BENCH_SCALE: what
#: matters is the ingest duty cycle, not the table size.
ROWS = 20_000
PARTITION_SIZE = 2_000
INGEST_BATCH_ROWS = 1_000
INGEST_INTERVAL_SECONDS = 0.05
WINDOW_SECONDS = 2.0
CLIENT_COUNTS = (1, 4, 16)


@pytest.mark.slow
def test_concurrent_throughput_beats_serialized_under_ingest():
    scale = bench_scale()
    table = load_dataset("power", rows=ROWS, seed=scale.seed)
    spec = WorkloadSpec.initial_experiments(num_queries=20, seed=scale.seed)
    queries = QueryGenerator(table, spec).generate()
    batches = [table.sample(INGEST_BATCH_ROWS)]

    measurements = run_concurrency_benchmark(
        table,
        queries,
        client_counts=CLIENT_COUNTS,
        baseline_clients=(4,),
        duration_seconds=WINDOW_SECONDS,
        partition_size=PARTITION_SIZE,
        ingest_batches=batches,
        ingest_interval_seconds=INGEST_INTERVAL_SECONDS,
        seed=scale.seed,
    )

    serialized = next(
        m for m in measurements if m.mode == "serialized" and m.num_clients == 4
    )
    concurrent4 = next(
        m for m in measurements if m.mode == "concurrent" and m.num_clients == 4
    )
    speedup = concurrent4.queries_per_second / serialized.queries_per_second

    rows = [
        [
            m.mode,
            str(m.num_clients),
            fmt(m.queries_per_second, 1),
            fmt(m.wall_seconds, 2),
            str(m.ingest_batches),
        ]
        for m in measurements
    ]
    rows.append(["speedup @4 clients", "-", f"{speedup:.1f}x", "-", "-"])
    record(
        "concurrency_throughput",
        format_table(
            ["service", "clients", "queries/s", "window (s)", "ingests"],
            rows,
            title=(
                f"Query throughput with background ingest "
                f"({ROWS} rows, power, {INGEST_BATCH_ROWS}-row batch every "
                f"{int(INGEST_INTERVAL_SECONDS * 1000)} ms)"
            ),
        ),
    )

    # Background ingest really ran in both compared modes.
    assert serialized.ingest_batches >= 1
    assert concurrent4.ingest_batches >= 1
    # The acceptance criterion: >=2x aggregate throughput at 4 clients.
    assert speedup >= 2.0, f"concurrent/serialized speedup {speedup:.2f}x < 2x"
    # More clients should not collapse throughput.
    by_clients = {
        m.num_clients: m for m in measurements if m.mode == "concurrent"
    }
    assert by_clients[4].queries_per_second > by_clients[1].queries_per_second
