"""Persistence benchmark: warm restart vs rebuilding from raw rows.

A service restarted on its data directory loads the GD-compressed
partitions, the per-partition PWHP synopses and the exact (``PWHX``)
merged synopsis from the latest snapshot, then replays only the WAL tail
— skipping the pre-processor fit, the GreedyGD bit-selection search and
every sealed partition's synopsis build.  Two restart flavours are
measured against cold re-ingestion from raw rows
(:func:`repro.bench.harness.run_persistence_benchmark`):

* **warm-clean** — the server checkpointed on shutdown (what
  ``QueryServer`` does on SIGTERM), so recovery is a pure snapshot load;
  the acceptance bar is >=5x over the cold rebuild.
* **warm-crash** — one ingest was never checkpointed, so recovery
  additionally replays its WAL record and rebuilds the touched tail
  partition's synopsis; bar >=2x (typically ~4.5x).

All three paths must answer every probe query identically.  Results land
in ``benchmarks/results/persistence.txt``.
"""

from __future__ import annotations

import numpy as np
from bench_utils import bench_scale, record

from repro import load_dataset
from repro.bench.harness import fmt, format_table, run_persistence_benchmark
from repro.core.params import PairwiseHistParams

ROWS = 60_000
PARTITION_SIZE = 4_000
INGEST_BATCHES = 3
INGEST_ROWS = 2_000
REQUIRED_CLEAN_SPEEDUP = 5.0
REQUIRED_CRASH_SPEEDUP = 2.0

QUERIES = [
    "SELECT AVG(global_active_power) FROM power WHERE voltage > 240",
    "SELECT COUNT(*) FROM power WHERE global_intensity > 10",
    "SELECT SUM(sub_metering_3) FROM power WHERE voltage < 245",
]


def test_warm_restart_beats_cold_reingest(tmp_path):
    scale = bench_scale()
    table = load_dataset("power", rows=ROWS, seed=scale.seed)
    base = table.select_rows(np.arange(ROWS - INGEST_BATCHES * INGEST_ROWS))
    batches = [
        table.select_rows(
            np.arange(
                ROWS - (INGEST_BATCHES - i) * INGEST_ROWS,
                ROWS - (INGEST_BATCHES - 1 - i) * INGEST_ROWS,
            )
        )
        for i in range(INGEST_BATCHES)
    ]

    measurements = run_persistence_benchmark(
        base,
        batches,
        QUERIES,
        tmp_path,
        params=PairwiseHistParams.with_defaults(sample_size=20_000),
        partition_size=PARTITION_SIZE,
    )
    by_mode = {m.mode: m for m in measurements}
    cold = by_mode["cold"]
    clean = by_mode["warm-clean"]
    crash = by_mode["warm-crash"]

    # Every path answers every probe identically.
    assert clean.answers == cold.answers == crash.answers
    assert clean.replayed_records == 0
    assert crash.replayed_records == 1 and crash.rebuilt_partitions >= 1

    # Lazy snapshot hydration: a query-only restart never decodes the
    # per-partition synopses (queries run off the exact merged payload) —
    # that is the restart-latency win; the crash path must hydrate because
    # WAL replay rebuilds the touched tail.
    assert clean.unhydrated_tables == 1
    assert crash.unhydrated_tables == 0
    # Restart-latency assertion: the query-only restart does strictly less
    # work (no replay, no synopsis decode, no rebuild) than the crash
    # restart, so it must also be faster.
    assert clean.seconds < crash.seconds, (
        f"query-only warm restart ({clean.seconds:.3f}s) should beat the "
        f"replaying crash restart ({crash.seconds:.3f}s)"
    )

    clean_speedup = cold.seconds / clean.seconds
    crash_speedup = cold.seconds / crash.seconds
    text = format_table(
        ["path", "seconds", "speedup", "notes"],
        [
            [
                "cold re-ingest",
                fmt(cold.seconds),
                "1.0x",
                f"register {base.num_rows} rows + {INGEST_BATCHES} ingests "
                f"of {INGEST_ROWS}",
            ],
            [
                "warm, clean shutdown",
                fmt(clean.seconds, 3),
                f"{clean_speedup:.1f}x",
                f"snapshot only (required >= {REQUIRED_CLEAN_SPEEDUP:.0f}x)",
            ],
            [
                "warm, crash",
                fmt(crash.seconds, 3),
                f"{crash_speedup:.1f}x",
                f"snapshot + {crash.replayed_records} WAL record, "
                f"{crash.rebuilt_partitions} synopsis rebuild(s) "
                f"(required >= {REQUIRED_CRASH_SPEEDUP:.1f}x)",
            ],
        ],
        title=(
            f"Warm restart vs cold re-ingest ({ROWS} rows, power, "
            f"partition size {PARTITION_SIZE})"
        ),
    )
    record("persistence", text)

    assert clean_speedup >= REQUIRED_CLEAN_SPEEDUP, (
        f"clean warm restart only {clean_speedup:.1f}x faster than cold "
        f"re-ingest ({clean.seconds:.3f}s vs {cold.seconds:.3f}s)"
    )
    assert crash_speedup >= REQUIRED_CRASH_SPEEDUP, (
        f"crash warm restart only {crash_speedup:.1f}x faster than cold "
        f"re-ingest ({crash.seconds:.3f}s vs {cold.seconds:.3f}s)"
    )
