"""Fig. 11 — synopsis size, total storage, query latency and construction time."""

from bench_utils import bench_scale, record

from repro.bench import Fig11ScaledPerformance


def test_fig11_storage_latency_construction(benchmark):
    """Regenerates all four panels of Fig. 11 on the scaled datasets."""
    experiment = Fig11ScaledPerformance(scale=bench_scale())
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    record("fig11_scaled_performance", experiment.render())

    for dataset, per_system in results.items():
        ph = per_system["PairwiseHist"]
        dd = per_system["DeepDB"]
        raw = per_system["Raw data"]["total_storage_mb"]
        # (a) the synopsis is smaller than the data it summarises.
        assert ph["synopsis_mb"] < raw
        # (b) compression makes PairwiseHist's total storage smaller than raw.
        assert ph["total_storage_mb"] < raw
        # (c) PairwiseHist answers queries faster than DeepDB (median).
        assert ph["median_latency_ms"] <= dd["median_latency_ms"]
        # (d) construction stays in the "seconds" regime claimed by Table 1.
        #     (At laptop scale the DBEst++ stand-in trains only the handful of
        #     workload templates, so the paper's hours-vs-minutes gap cannot
        #     be asserted here; it is recorded in the table instead.)
        assert ph["construction_seconds"] < 600.0
