"""Ablation — GD-base-seeded initial bins vs min/max initial bins."""

from bench_utils import bench_scale, record

from repro.bench import AblationGDSeeding


def test_ablation_gd_seeding(benchmark):
    """Isolates the effect of seeding initial bin edges from GreedyGD bases (§3)."""
    experiment = AblationGDSeeding(scale=bench_scale())
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    record("ablation_gd_seeding", experiment.render())

    seeded = results["GD-seeded (with compression)"]
    standalone = results["Min/max seeded (stand-alone)"]
    # Both variants stay accurate; accuracy should not collapse either way.
    assert seeded["median_error_percent"] < 20.0
    assert standalone["median_error_percent"] < 20.0
