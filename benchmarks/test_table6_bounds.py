"""Table 6 — query-bound accuracy rate and width, PairwiseHist vs DeepDB."""

import numpy as np

from bench_utils import bench_scale, record

from repro.bench import Table6Bounds


def test_table6_bounds(benchmark):
    """Regenerates Table 6 on original and scaled Power / Flights datasets."""
    experiment = Table6Bounds(scale=bench_scale())
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    record("table6_bounds", experiment.render())

    correct_ph = [v["PairwiseHist correct (%)"] for v in results.values()]
    correct_dd = [v["DeepDB correct (%)"] for v in results.values()]
    finite_ph = [v for v in correct_ph if np.isfinite(v)]
    finite_dd = [v for v in correct_dd if np.isfinite(v)]
    # Shape check (paper): PairwiseHist's bounds are correct more often than
    # DeepDB's on average.
    if finite_ph and finite_dd:
        assert np.mean(finite_ph) >= np.mean(finite_dd) - 10.0
