"""Table 5 — median relative error per aggregation function on the scaled datasets."""

import numpy as np

from bench_utils import bench_scale, record

from repro.bench import Table5AccuracyByAggregation


def test_table5_accuracy_by_aggregation(benchmark):
    """Regenerates Table 5 for the scaled Power and Flights datasets."""
    experiment = Table5AccuracyByAggregation(scale=bench_scale())
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    record("table5_accuracy_by_aggregation", experiment.render())

    for dataset, per_system in results.items():
        ph = per_system["PairwiseHist"]
        # PairwiseHist answers every query; the baselines answer a subset.
        assert ph["supported"] >= per_system["DeepDB"]["supported"]
        assert ph["supported"] >= per_system["DBEst++"]["supported"]
        # Overall error should be small (paper: 0.20-0.43 %; we allow laptop-scale slack).
        assert np.isfinite(ph["Overall"])
        assert ph["Overall"] < 15.0
