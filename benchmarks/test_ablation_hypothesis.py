"""Ablation — recursive hypothesis-testing refinement vs equi-width histograms."""

from bench_utils import bench_scale, record

from repro.bench import AblationHypothesisTesting


def test_ablation_hypothesis_testing(benchmark):
    """Isolates the contribution of the chi-squared refinement (§4.1)."""
    experiment = AblationHypothesisTesting(scale=bench_scale())
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    record("ablation_hypothesis_testing", experiment.render())

    refined = results["PairwiseHist (refined)"]["median_error_percent"]
    equi = results["Equi-width (no refinement)"]["median_error_percent"]
    # Refinement should not hurt accuracy.
    assert refined <= equi * 1.5 + 0.5
