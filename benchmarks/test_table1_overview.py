"""Table 1 — qualitative overview with PairwiseHist's row measured live."""

from bench_utils import bench_scale, record

from repro.bench import Table1Qualitative


def test_table1_overview(benchmark):
    """Measures the PairwiseHist row of Table 1 (accuracy / latency / size / build)."""
    experiment = Table1Qualitative(scale=bench_scale())
    measured = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    record("table1_overview", experiment.render())

    # The qualitative claims of Table 1's PairwiseHist row.
    assert measured["median_error_percent"] < 5.0          # "<1%" at paper scale
    assert measured["median_latency_ms"] < 50.0             # "sub-ms" at paper scale
    assert measured["synopsis_mb"] < 5.0                    # "sub-MB" at paper scale
    assert measured["construction_seconds"] < 600.0         # "secs"
