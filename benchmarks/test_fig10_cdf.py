"""Fig. 10 — error CDFs per supported-query subset and real vs IDEBench data."""

from bench_utils import bench_scale, record

from repro.bench import Fig10ErrorCDF, Fig10RealVsIdebench


def test_fig10_error_cdf(benchmark):
    """Regenerates Fig. 10(a)-(c): error distributions over query subsets."""
    experiment = Fig10ErrorCDF(scale=bench_scale())
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    record("fig10_error_cdf", experiment.render())

    # Shape check: on the DeepDB-supported subset, PairwiseHist's median
    # error is competitive (within 2x) with DeepDB's.
    panel = results["vs DeepDB (supported subset)"]
    ph_median = panel["PairwiseHist"]["error_percentiles"][1]
    dd_median = panel["DeepDB"]["error_percentiles"][1]
    assert ph_median <= dd_median * 2.0 + 1.0


def test_fig10_real_vs_idebench(benchmark):
    """Regenerates Fig. 10(d): accuracy on real vs IDEBench-generated data."""
    experiment = Fig10RealVsIdebench(scale=bench_scale())
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    record("fig10_real_vs_idebench", experiment.render())

    for row in results.values():
        # PairwiseHist stays accurate on the real (less well-behaved) data.
        assert row["PairwiseHist Real"] < 20.0
