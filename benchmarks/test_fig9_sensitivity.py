"""Fig. 9 — parameter sensitivity (M, alpha, Ns) on the scaled Flights dataset."""

from bench_utils import bench_scale, record

from repro.bench import Fig9ParameterSensitivity


def test_fig9_parameter_sensitivity(benchmark):
    """Regenerates Fig. 9(a) (median error) and Fig. 9(b) (synopsis size) series."""
    experiment = Fig9ParameterSensitivity(scale=bench_scale())
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    record("fig9_parameter_sensitivity", experiment.render())

    # Shape check: synopsis size decreases (weakly) as M grows, for every series.
    for points in results.values():
        sizes = [p["synopsis_mb"] for p in points]
        assert all(sizes[i + 1] <= sizes[i] + 1e-6 for i in range(len(sizes) - 1))
