"""Fig. 1 — relative performance summary of PairwiseHist vs the baselines."""

from bench_utils import bench_scale, record

from repro.bench import Fig1Summary


def test_fig1_relative_performance(benchmark):
    """Regenerates the Fig. 1 radar axes as improvement factors."""
    experiment = Fig1Summary(scale=bench_scale())
    results = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    record("fig1_summary", experiment.render())

    # Shape checks for the headline claims: PairwiseHist is faster than
    # DeepDB and builds faster than DBEst++.
    assert results["DeepDB"]["latency"] >= 1.0
    assert results["DBEst++"]["construction_time"] >= 1.0
