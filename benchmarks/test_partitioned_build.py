"""Partitioned vs monolithic synopsis construction on a >=200k-row table.

The partitioned engine builds one PairwiseHist per partition (fanned out
via ``concurrent.futures``) and merges them, instead of one monolithic
build over all rows.  This benchmark times both paths on the same
compressed data and runs the Fig. 8 workload against both engines to show
the merged synopsis holds query accuracy.
"""

import time

import numpy as np
from bench_utils import bench_scale, record

from repro import PairwiseHistParams, load_dataset
from repro.baselines.adapter import PairwiseHistSystem
from repro.bench.harness import fmt, format_table
from repro.core.builder import PartitionInput, build_pairwise_hist, build_partition_synopses
from repro.core.synopsis import PairwiseHist
from repro.gd.partitioned import PartitionedStore
from repro.gd.store import CompressedStore
from repro.service import QueryServiceSystem
from repro.workload.generator import QueryGenerator, WorkloadSpec
from repro.workload.runner import WorkloadRunner

#: The acceptance scenario is fixed at >=200k rows regardless of
#: REPRO_BENCH_SCALE (the scale only grows the workload).
ROWS = 200_000
PARTITION_SIZE = 20_000
SAMPLE = 100_000


def _partition_inputs(store: PartitionedStore) -> list[PartitionInput]:
    inputs = []
    for partition in store.partitions:
        codes, nulls = partition.decoded_codes()
        edges = {
            name: partition.base_values(name)
            for name in store.column_order
            if not store.preprocessor[name].is_categorical
        }
        inputs.append(
            PartitionInput(
                codes=codes,
                population_rows=partition.num_rows,
                null_masks=nulls,
                initial_edges=edges,
            )
        )
    return inputs


def test_partitioned_parallel_build_beats_monolithic(benchmark):
    scale = bench_scale()
    table = load_dataset("power", rows=ROWS, seed=scale.seed)
    params = PairwiseHistParams.with_defaults(sample_size=SAMPLE, seed=scale.seed)

    mono_store = CompressedStore.compress(table)
    part_store = PartitionedStore.compress(table, partition_size=PARTITION_SIZE)

    # Monolithic: one synopsis over all decoded rows.
    codes, nulls = mono_store.decoded_codes()
    seed_edges = {
        name: mono_store.base_values(name)
        for name in table.column_names
        if not mono_store.preprocessor[name].is_categorical
    }
    def monolithic_build() -> PairwiseHist:
        return build_pairwise_hist(
            codes,
            params,
            population_rows=table.num_rows,
            null_masks=nulls,
            initial_edges=seed_edges,
            columns=table.column_names,
        )

    # Partitioned: per-partition synopses in parallel, then one merge.
    inputs = _partition_inputs(part_store)

    def partitioned_build() -> PairwiseHist:
        synopses = build_partition_synopses(inputs, params, columns=table.column_names)
        return PairwiseHist.merge(synopses, params=params)

    def best_of_two(builder) -> float:
        seconds = []
        for _ in range(2):
            start = time.perf_counter()
            builder()
            seconds.append(time.perf_counter() - start)
        return min(seconds)

    mono_seconds = best_of_two(monolithic_build)
    benchmark.pedantic(partitioned_build, rounds=1, iterations=1)
    part_seconds = best_of_two(partitioned_build)

    # Fig. 8 workload accuracy on both engines.
    spec = WorkloadSpec.initial_experiments(num_queries=scale.queries, seed=scale.seed)
    queries = QueryGenerator(table, spec).generate()
    runner = WorkloadRunner(table)
    mono_summary = runner.run(
        PairwiseHistSystem.fit(table, sample_size=SAMPLE), queries
    )
    part_summary = runner.run(
        QueryServiceSystem.fit(table, sample_size=SAMPLE, partition_size=PARTITION_SIZE),
        queries,
    )
    mono_error = mono_summary.median_error_percent()
    part_error = part_summary.median_error_percent()

    rows = [
        ["monolithic", fmt(mono_seconds), "1", fmt(mono_error)],
        [
            "partitioned",
            fmt(part_seconds),
            str(part_store.num_partitions),
            fmt(part_error),
        ],
        ["speedup", f"{mono_seconds / part_seconds:.2f}x", "-", "-"],
    ]
    record(
        "partitioned_build",
        format_table(
            ["system", "build (s)", "partitions", "median error (%)"],
            rows,
            f"Partitioned vs monolithic synopsis build ({ROWS} rows, power)",
        ),
    )

    # The headline claims: partitioned parallel construction is faster and
    # the merged synopsis keeps Fig. 8 accuracy within the seed's tolerance.
    # The 5% slack absorbs shared-runner timing noise in CI; on a quiet
    # 1-CPU box the measured margin is ~1.15x and grows with core count
    # (per-partition builds fan out via the thread pool).
    assert part_seconds < mono_seconds * 1.05
    assert np.isfinite(part_error)
    assert part_error <= max(5.0, mono_error + 3.0)
