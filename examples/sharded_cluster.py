"""Sharded analytics cluster: N durable worker processes, one SQL front end.

A single Python process bounds both ingest and query throughput with one
GIL.  The cluster layer breaks that ceiling: every table's rows are
hash-partitioned across worker shards — each a full durable engine
(``QueryServer`` subprocess with its own data directory, WAL and
checkpointer) — and every query scatters to all shards concurrently, the
per-shard synopsis answers recombining exactly because the summaries are
mergeable (COUNT/SUM add, AVG via weighted sums, bounds conservatively).

This example walks the whole lifecycle on a 2-shard subprocess cluster:

1. boot the fleet (supervisor spawns the workers, scrapes their ports);
2. register a table — rows fan out by row hash, each shard compresses
   and summarises only its share;
3. stream batches in and query through the scatter-gather front end;
4. ``kill -9`` one worker mid-flight: the next call revives it through
   the supervisor and the replacement recovers from its own snapshot +
   WAL before serving — the answer is identical;
5. shut down and reopen the whole cluster from the ``CLUSTER`` manifest.

Run with:  python examples/sharded_cluster.py
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro import ClusterQueryService, PairwiseHistParams, load_dataset

QUERY = "SELECT AVG(global_active_power) FROM power WHERE voltage > 240"
COUNTED = "SELECT COUNT(*) FROM power WHERE global_intensity > 10"


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="aqp-cluster-")) / "cluster"
    params = PairwiseHistParams.with_defaults(sample_size=20_000)
    history = load_dataset("power", rows=30_000, seed=2)
    live = [load_dataset("power", rows=2_000, seed=100 + i) for i in range(2)]

    print(f"cluster root: {root}\n")

    # ---- boot + register ------------------------------------------------ #
    boot_start = time.perf_counter()
    cluster = ClusterQueryService(
        num_shards=2, path=root, mode="process", partition_size=8_192
    )
    ports = [h.port for h in cluster.supervisor.handles.values()]
    print(f"booted {cluster.num_shards} worker(s) on ports {ports} "
          f"in {time.perf_counter() - boot_start:.2f}s")

    cluster.register_table(history, params=params)
    entry = cluster.table("power")
    print(f"registered 'power': {entry.rows} rows hash-routed across "
          f"shards {sorted(entry.registered)}")
    for batch in live:
        result = cluster.ingest("power", batch)
        print(f"  ingest {result.appended_rows} rows -> "
              f"{ {s: r for s, r in sorted(result.shard_rows.items())} } "
              f"({result.seconds * 1000:.0f} ms)")
    cluster.checkpoint()

    before = cluster.execute_scalar(QUERY)
    print(f"\n{QUERY}")
    print(f"  -> {before.value:.4f}  [{before.lower:.4f}, {before.upper:.4f}]")
    counted = cluster.execute_scalar(COUNTED)
    print(f"{COUNTED}")
    print(f"  -> {counted.value:.1f}  (per-shard COUNTs summed, "
          f"bounds [{counted.lower:.1f}, {counted.upper:.1f}])")

    # ---- kill a worker, query through the failure ----------------------- #
    print("\nkill -9 shard 0 ...")
    cluster.supervisor.kill(0)
    revive_start = time.perf_counter()
    after = cluster.execute_scalar(QUERY)
    print(f"  next query revived + recovered the worker in "
          f"{time.perf_counter() - revive_start:.2f}s")
    identical = (after.value, after.lower, after.upper) == (
        before.value, before.lower, before.upper,
    )
    print(f"  identical to the pre-kill answer: {identical}")

    # ---- full cluster restart from the manifest ------------------------- #
    cluster.close()  # SIGTERM -> each worker takes a final checkpoint
    reopen_start = time.perf_counter()
    cluster = ClusterQueryService.open(root, mode="process")
    print(f"\nreopened the whole cluster in "
          f"{time.perf_counter() - reopen_start:.2f}s "
          f"(tables: {cluster.table_names})")
    reopened = cluster.execute_scalar(QUERY)
    print(f"  -> {reopened.value:.4f}  "
          f"[{reopened.lower:.4f}, {reopened.upper:.4f}]")
    cluster.close()

    print("\nThe TCP front end does all of this behind one port:")
    print("  python -m repro.service --shards 2 --data-dir /var/lib/aqp-cluster")
    shutil.rmtree(root.parent, ignore_errors=True)


if __name__ == "__main__":
    main()
