"""Quickstart: build a PairwiseHist synopsis and run bounded approximate queries.

Run with:  python examples/quickstart.py
"""

from repro import (
    ExactQueryEngine,
    PairwiseHistEngine,
    PairwiseHistParams,
    load_dataset,
    parse_query,
)


def main() -> None:
    # 1. Load a dataset (a synthetic stand-in for the paper's Power dataset).
    table = load_dataset("power", rows=50_000, seed=0)
    print(f"dataset: {table.name} with {table.num_rows} rows and {table.num_columns} columns")

    # 2. Build the engine: GreedyGD compression + PairwiseHist synopsis.
    #    The paper's defaults: M = 1 % of the sample, alpha = 0.001.
    params = PairwiseHistParams.with_defaults(sample_size=20_000)
    engine = PairwiseHistEngine.from_table(table, params=params)
    print(f"synopsis built in {engine.construction_seconds:.2f} s, "
          f"size {engine.synopsis_bytes() / 1e6:.3f} MB, "
          f"sampling ratio {engine.sampling_ratio:.2f}")

    # 3. Ask SQL questions and get bounded estimates in milliseconds.
    queries = [
        "SELECT COUNT(voltage) FROM power WHERE voltage > 240",
        "SELECT AVG(global_active_power) FROM power WHERE hour >= 18 AND hour < 22",
        "SELECT SUM(sub_metering_3) FROM power WHERE global_intensity > 10",
        "SELECT MEDIAN(global_active_power) FROM power WHERE voltage < 242",
        "SELECT MAX(global_intensity) FROM power WHERE hour < 6",
    ]
    exact = ExactQueryEngine(table)  # ground truth, for demonstration only
    print(f"\n{'query':70s} {'estimate':>12s} {'bounds':>24s} {'exact':>12s} {'err %':>7s}")
    for sql in queries:
        result = engine.execute_scalar(sql)
        truth = exact.execute_scalar(parse_query(sql))
        error = 100 * result.relative_error(truth)
        bounds = f"[{result.lower:,.2f}, {result.upper:,.2f}]"
        print(f"{sql:70s} {result.value:12,.2f} {bounds:>24s} {truth:12,.2f} {error:7.2f}")

    # 4. GROUP BY works on categorical columns (here: the Light dataset's devices).
    light = load_dataset("light", rows=20_000, seed=0)
    light_engine = PairwiseHistEngine.from_table(
        light, params=PairwiseHistParams.with_defaults(sample_size=10_000)
    )
    groups = light_engine.execute(
        "SELECT AVG(lux) FROM light WHERE battery > 40 GROUP BY device"
    )
    print("\nAVG(lux) per device (battery > 40):")
    for device, results in sorted(groups.items()):
        print(f"  {device:12s} {results[0].value:8.1f}  [{results[0].lower:.1f}, {results[0].upper:.1f}]")


if __name__ == "__main__":
    main()
