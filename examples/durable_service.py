"""Durable analytics service: survive a crash, restart warm.

The in-memory engine stack (GD-compressed partitions + per-partition
PairwiseHist synopses) is exactly the artifact worth persisting: tiny
relative to the raw stream, and already serializable per partition.  This
example walks the whole durability lifecycle on one data directory:

1. open a durable database (``Database.open``) — WAL + snapshots live
   under the directory;
2. register a table and stream batches in; every committed ingest is
   write-ahead logged *before* it is acknowledged;
3. checkpoint (what the server's background checkpointer does every 30s);
4. ingest more — these records exist only in the WAL;
5. "crash" (drop the object without any shutdown), reopen, and show that
   recovery = snapshot load + WAL tail replay reproduces the exact same
   query answers at a fraction of the cold rebuild cost.

Run with:  python examples/durable_service.py
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro import Database, PairwiseHistParams, QueryService, load_dataset

QUERY = "SELECT AVG(global_active_power) FROM power WHERE voltage > 240"


def main() -> None:
    data_dir = Path(tempfile.mkdtemp(prefix="aqp-durable-")) / "data"
    params = PairwiseHistParams.with_defaults(sample_size=20_000)
    history = load_dataset("power", rows=40_000, seed=2)
    live = [load_dataset("power", rows=2_000, seed=100 + i) for i in range(3)]

    print(f"data directory: {data_dir}\n")

    # ---- day 0: ingest, checkpoint, keep streaming ---------------------- #
    build_start = time.perf_counter()
    db = Database.open(data_dir, default_params=params, partition_size=8_192)
    db.register(history)
    db.ingest("power", live[0])
    checkpoint = db.checkpoint()
    db.ingest("power", live[1])
    db.ingest("power", live[2])
    build_seconds = time.perf_counter() - build_start

    service = QueryService(database=db)
    before = service.execute_scalar(QUERY)
    wal_records = db.wal.last_lsn - checkpoint.checkpoint_lsn
    print("before the crash")
    print(f"  cold build + ingest : {build_seconds:6.2f}s "
          f"({db.table('power').num_rows} rows, "
          f"{db.table('power').num_partitions} partitions)")
    print(f"  snapshot            : {checkpoint.path.name} "
          f"(lsn {checkpoint.checkpoint_lsn}, {checkpoint.seconds:.2f}s)")
    print(f"  WAL tail            : {wal_records} record(s) past the checkpoint")
    print(f"  {QUERY}")
    print(f"    -> {before.value:.4f}  [{before.lower:.4f}, {before.upper:.4f}]\n")

    # ---- crash: the process dies, nothing is shut down ------------------ #
    db.wal.close()  # the OS would do this for us on a real kill -9
    del db, service

    # ---- restart: snapshot + WAL replay --------------------------------- #
    restart_start = time.perf_counter()
    db = Database.open(data_dir, default_params=params, partition_size=8_192)
    restart_seconds = time.perf_counter() - restart_start
    info = db.recovery_info
    after = QueryService(database=db).execute_scalar(QUERY)

    print("after restart")
    print(f"  warm recovery       : {restart_seconds:6.2f}s "
          f"({build_seconds / restart_seconds:.1f}x faster than the cold build)")
    print(f"    snapshot lsn {info.snapshot_lsn}, "
          f"{info.replayed_records} WAL record(s) replayed "
          f"({info.replayed_rows} rows), "
          f"{info.rebuilt_partitions} tail synopsis rebuild(s)")
    print(f"  {QUERY}")
    print(f"    -> {after.value:.4f}  [{after.lower:.4f}, {after.upper:.4f}]")
    identical = (after.value, after.lower, after.upper) == (
        before.value,
        before.lower,
        before.upper,
    )
    print(f"  identical to the pre-crash answer: {identical}\n")

    print("The TCP server does all of this for you:")
    print("  python -m repro.service --data-dir /var/lib/aqp --checkpoint-interval 30")
    db.wal.close()
    shutil.rmtree(data_dir.parent, ignore_errors=True)


if __name__ == "__main__":
    main()
