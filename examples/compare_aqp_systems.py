"""Head-to-head comparison of AQP systems on one workload (a mini Fig. 8/11).

Builds PairwiseHist, the DeepDB-like SPN baseline, the DBEst++-like
density+regression baseline and a plain uniform-sampling baseline on the
same dataset, runs an identical random workload against each and prints the
accuracy / latency / storage / construction summary the paper reports.

Run with:  python examples/compare_aqp_systems.py
"""

from repro import load_dataset
from repro.baselines import DBEstPlusPlusLike, DeepDBLike, PairwiseHistSystem, SamplingAQP
from repro.bench.harness import fmt, format_table, workload_templates
from repro.workload import QueryGenerator, WorkloadRunner, WorkloadSpec


def main() -> None:
    table = load_dataset("power", rows=60_000, seed=5)
    print(f"dataset: {table.name}, {table.num_rows} rows x {table.num_columns} columns\n")

    spec = WorkloadSpec.initial_experiments(num_queries=60, seed=5)
    queries = QueryGenerator(table, spec).generate()
    templates = workload_templates(queries)
    runner = WorkloadRunner(table)

    sample = 20_000
    systems = [
        PairwiseHistSystem.fit(table, sample_size=sample),
        DeepDBLike.fit(table, sample_size=sample),
        DBEstPlusPlusLike.fit(table, sample_size=sample // 4, templates=templates),
        SamplingAQP.fit(table, sample_size=sample),
    ]

    rows = []
    for system in systems:
        summary = runner.run(system, queries)
        rows.append([
            system.name,
            str(len(summary.supported_records)),
            fmt(summary.median_error_percent()),
            fmt(summary.median_latency_ms()),
            fmt(summary.bounds_correct_rate_percent(), 1),
            fmt(system.synopsis_bytes() / 1e6, 3),
            fmt(system.construction_seconds, 2),
        ])

    headers = ["system", "queries", "median err (%)", "latency (ms)",
               "bounds ok (%)", "synopsis (MB)", "build (s)"]
    print(format_table(headers, rows, title=f"AQP systems on {len(queries)} random queries"))
    print("\n(the sampling baseline stores the raw sample itself, which is what the paper's")
    print(" Table 1 means by GB-scale synopses at production data sizes)")


if __name__ == "__main__":
    main()
