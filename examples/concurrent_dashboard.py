"""Many dashboard clients over TCP while rows stream in (heavy traffic).

The paper pitches PairwiseHist for interactive AQP under dashboard-style
load.  This example stands up the full concurrent stack:

* a :class:`~repro.service.ConcurrentQueryService` (per-table
  reader-writer locks, copy-on-write synopsis refresh),
* the :class:`~repro.service.AsyncQueryService` coroutine front end with
  its coalescing ingest queue,
* a :class:`~repro.service.QueryServer` speaking both negotiated wire
  dialects on one port — binary pipelined frames and the JSON-lines
  fallback,

then drives it with several concurrent dashboard sessions issuing SQL
over the wire while a writer task streams new rows in.  Half the
sessions use the legacy JSON client, half the binary
:class:`~repro.service.PipelinedClient` — the server sniffs each
connection's first bytes, so both coexist transparently.  Queries keep
answering at full speed through the ingest stream — the writer only takes
each table's write lock for the final synopsis swap.

Run with:  python examples/concurrent_dashboard.py
"""

import asyncio
import time

from repro import (
    AsyncQueryClient,
    AsyncQueryService,
    PairwiseHistParams,
    PipelinedClient,
    QueryServer,
    load_dataset,
)

DASHBOARDS = 6
QUERIES_PER_DASHBOARD = 40
INGEST_BATCHES = 8
INGEST_BATCH_ROWS = 2_000

DASHBOARD_SQL = [
    "SELECT COUNT(*) FROM power",
    "SELECT AVG(global_active_power) FROM power WHERE voltage > 240",
    "SELECT SUM(sub_metering_3) FROM power WHERE global_active_power > 1.0",
    "SELECT MAX(voltage) FROM power WHERE global_intensity < 10",
    "SELECT COUNT(voltage) FROM power WHERE voltage > 235 AND voltage < 245",
]


async def dashboard(host: str, port: int, session: int, latencies: list) -> int:
    """One closed-loop dashboard session issuing SQL over its own socket."""
    async with AsyncQueryClient(host, port) as client:
        for step in range(QUERIES_PER_DASHBOARD):
            sql = DASHBOARD_SQL[(session + step) % len(DASHBOARD_SQL)]
            began = time.perf_counter()
            await client.query(sql)
            latencies.append(time.perf_counter() - began)
            await asyncio.sleep(0.002)  # render time between refreshes
    return QUERIES_PER_DASHBOARD


async def binary_dashboard(
    host: str, port: int, session: int, latencies: list
) -> int:
    """The same session over the binary pipelined protocol.

    The blocking client runs in a worker thread so the server's event
    loop keeps serving; one refresh submits the whole SQL rotation as
    in-flight frames and waits for them together.
    """

    def drive() -> int:
        refreshes = QUERIES_PER_DASHBOARD // len(DASHBOARD_SQL)
        with PipelinedClient(host, port) as client:
            for _ in range(refreshes):
                began = time.perf_counter()
                futures = [client.submit_query(sql) for sql in DASHBOARD_SQL]
                for future in futures:
                    future.result(timeout=30.0)
                elapsed = time.perf_counter() - began
                latencies.extend([elapsed / len(futures)] * len(futures))
                time.sleep(0.002)  # render time between refreshes
        return refreshes * len(DASHBOARD_SQL)

    return await asyncio.to_thread(drive)


async def writer(service: AsyncQueryService, source) -> None:
    """Stream batches in; concurrent small appends coalesce automatically."""
    for index in range(INGEST_BATCHES):
        batch = source.sample(INGEST_BATCH_ROWS)
        outcome = await service.ingest("power", batch)
        print(
            f"  writer: +{outcome.appended_rows} rows, rebuilt partitions "
            f"{outcome.rebuilt_partitions} of {outcome.total_partitions} "
            f"in {outcome.seconds * 1e3:.0f} ms"
        )
        await asyncio.sleep(0.05)


async def main() -> None:
    table = load_dataset("power", rows=30_000, seed=7)
    async with AsyncQueryService(
        partition_size=4_096, max_workers=4
    ) as service:
        managed = await service.register_table(
            table, params=PairwiseHistParams.with_defaults(sample_size=15_000)
        )
        print(
            f"registered {managed.name!r}: {managed.num_rows} rows in "
            f"{managed.num_partitions} partitions\n"
        )
        async with QueryServer(service) as server:
            host, port = server.address
            print(
                f"serving binary pipelined frames + JSON-lines on {host}:{port}"
            )
            print(
                f"driving {DASHBOARDS} dashboards x {QUERIES_PER_DASHBOARD} "
                f"queries (half JSON-lines, half pipelined binary) with "
                f"background ingest\n"
            )
            latencies: list[float] = []
            started = time.perf_counter()
            results = await asyncio.gather(
                writer(service, table),
                *[
                    (binary_dashboard if session % 2 else dashboard)(
                        host, port, session, latencies
                    )
                    for session in range(DASHBOARDS)
                ],
            )
            wall = time.perf_counter() - started
            completed = sum(r for r in results if isinstance(r, int))
            latencies.sort()
            print("\ndashboard traffic summary")
            print(f"  completed queries : {completed} in {wall:.2f} s "
                  f"({completed / wall:.0f} queries/s aggregate)")
            print(f"  median latency    : {latencies[len(latencies) // 2] * 1e3:.1f} ms")
            print(f"  p95 latency       : {latencies[int(len(latencies) * 0.95)] * 1e3:.1f} ms")
            final = await service.query_scalar("SELECT COUNT(*) FROM power")
            print(f"  COUNT(*) after ingest stream: {final.value:.0f} "
                  f"(started at {table.num_rows})")


if __name__ == "__main__":
    asyncio.run(main())
