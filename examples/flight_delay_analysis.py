"""Flight-delay analytics: the workload that motivates the paper's introduction.

Interactive analysts ask aggregate questions over hundreds of millions of
flight records; PairwiseHist answers them from a sub-MB synopsis with
bounds, instead of scanning the table.  This example uses the synthetic
Flights dataset (32 columns, categorical carriers / airports, missing delay
components) and compares every answer against exact execution.

Run with:  python examples/flight_delay_analysis.py
"""

from repro import (
    ExactQueryEngine,
    PairwiseHistEngine,
    PairwiseHistParams,
    load_dataset,
    parse_query,
    scale_dataset,
)


def show(engine: PairwiseHistEngine, exact: ExactQueryEngine, sql: str) -> None:
    result = engine.execute_scalar(sql)
    truth = exact.execute_scalar(parse_query(sql))
    error = 100 * result.relative_error(truth)
    print(f"  {sql}")
    print(f"    estimate {result.value:14,.2f}   bounds [{result.lower:,.2f}, {result.upper:,.2f}]"
          f"   exact {truth:14,.2f}   error {error:.2f}%")


def main() -> None:
    original = load_dataset("flights", rows=40_000, seed=1)
    # The paper scales Flights to 10^9 rows with IDEBench; we scale it to a
    # laptop-friendly size with the same mechanism.
    flights = scale_dataset(original, rows=120_000, seed=1, name="flights")
    print(f"flights table: {flights.num_rows} rows x {flights.num_columns} columns "
          f"({flights.memory_bytes() / 1e6:.1f} MB raw)")

    params = PairwiseHistParams.with_defaults(sample_size=30_000)
    engine = PairwiseHistEngine.from_table(flights, params=params)
    print(f"PairwiseHist synopsis: {engine.synopsis_bytes() / 1e6:.3f} MB, "
          f"built in {engine.construction_seconds:.1f} s")
    store = engine.store
    print(f"GreedyGD compressed data: {store.compressed_bytes() / 1e6:.1f} MB "
          f"({store.compression_ratio(flights.memory_bytes()):.2f}x smaller than raw)\n")

    exact = ExactQueryEngine(flights)

    print("single-predicate questions:")
    show(engine, exact, "SELECT COUNT(arrival_delay) FROM flights WHERE arrival_delay > 60")
    show(engine, exact, "SELECT AVG(departure_delay) FROM flights WHERE distance > 1000")

    print("\nmulti-predicate questions (AND / OR, the Fig. 7 query shape):")
    show(engine, exact,
         "SELECT AVG(arrival_delay) FROM flights WHERE "
         "distance > 150 AND distance < 300 OR distance < 450 AND air_time > 90.5")
    show(engine, exact,
         "SELECT SUM(arrival_delay) FROM flights WHERE "
         "distance > 500 AND scheduled_departure > 800 AND scheduled_departure < 2000")

    print("\ncategorical predicates:")
    show(engine, exact, "SELECT AVG(arrival_delay) FROM flights WHERE airline = 'AA'")
    show(engine, exact, "SELECT COUNT(distance) FROM flights WHERE origin_airport = 'ATL' AND distance > 400")

    print("\ndelay rate per carrier (GROUP BY):")
    groups = engine.execute(
        "SELECT COUNT(arrival_delay) FROM flights WHERE arrival_delay > 15 GROUP BY airline"
    )
    truth = exact.execute(parse_query(
        "SELECT COUNT(arrival_delay) FROM flights WHERE arrival_delay > 15 GROUP BY airline"
    ))
    for airline in sorted(groups, key=lambda a: -groups[a][0].value)[:8]:
        estimate = groups[airline][0].value
        exact_value = truth.get(airline, [None])[0].value if airline in truth else 0.0
        print(f"  {airline:4s} delayed flights ~ {estimate:10,.0f}   (exact {exact_value:10,.0f})")


if __name__ == "__main__":
    main()
