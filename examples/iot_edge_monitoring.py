"""Edge analytics over compressed IoT data (the paper's deployment scenario).

An edge gateway receives a stream of sensor rows, keeps only the GreedyGD-
compressed form plus a PairwiseHist synopsis, and answers monitoring
queries locally — the Fig. 2 pipeline including incremental data updates
(red arrows).

Run with:  python examples/iot_edge_monitoring.py
"""

import numpy as np

from repro import PairwiseHistEngine, PairwiseHistParams, load_dataset
from repro.gd.store import CompressedStore


def main() -> None:
    # The gateway has seen the first day of data ...
    history = load_dataset("gas", rows=40_000, seed=2)
    # ... and new readings keep arriving in batches.
    incoming = load_dataset("gas", rows=5_000, seed=99)

    raw_bytes = history.memory_bytes()
    store = CompressedStore.compress(history)
    print("ingestion")
    print(f"  raw data          : {raw_bytes / 1e6:8.2f} MB")
    print(f"  GreedyGD compressed: {store.compressed_bytes() / 1e6:8.2f} MB "
          f"({store.compression_ratio(raw_bytes):.2f}x)")
    print(f"  deduplicated bases : {store.num_bases} for {store.num_rows} rows")

    # Build the synopsis directly from the compressed store: bases seed the
    # initial histogram bins (Algorithm 1, line 4).
    params = PairwiseHistParams.with_defaults(sample_size=20_000)
    engine = PairwiseHistEngine.from_compressed(store, params=params)
    total = store.compressed_bytes() + engine.synopsis_bytes()
    print(f"  PairwiseHist       : {engine.synopsis_bytes() / 1e6:8.2f} MB "
          f"(total storage {total / 1e6:.2f} MB vs {raw_bytes / 1e6:.2f} MB raw)\n")

    # Local monitoring queries with bounds — no cloud round trip.
    print("edge monitoring queries")
    for sql in [
        "SELECT AVG(temperature) FROM gas WHERE humidity > 60",
        "SELECT COUNT(gas_flow) FROM gas WHERE gas_flow > 2.0",
        "SELECT MAX(sensor_r1) FROM gas WHERE temperature > 24",
        "SELECT VAR(humidity) FROM gas WHERE temperature < 23",
    ]:
        result = engine.execute_scalar(sql)
        print(f"  {sql}")
        print(f"    -> {result.value:10.3f}   bounds [{result.lower:.3f}, {result.upper:.3f}]")

    # New rows arrive: append to the compressed store (incremental, no full
    # recompression) and rebuild the synopsis from the updated store.
    updated_store = store.append(incoming)
    updated_engine = PairwiseHistEngine.from_compressed(updated_store, params=params)
    print("\nincremental update")
    print(f"  rows: {store.num_rows} -> {updated_store.num_rows}")
    before = engine.execute_scalar("SELECT AVG(temperature) FROM gas WHERE humidity > 60")
    after = updated_engine.execute_scalar("SELECT AVG(temperature) FROM gas WHERE humidity > 60")
    drift = after.value - before.value
    print(f"  AVG(temperature | humidity > 60): {before.value:.3f} -> {after.value:.3f} "
          f"(drift {drift:+.3f})")

    # A tiny anomaly check an edge device could run every few seconds.
    p99_proxy = updated_engine.execute_scalar(
        "SELECT MAX(gas_flow) FROM gas WHERE temperature > 20"
    )
    if np.isfinite(p99_proxy.value) and p99_proxy.value > 5.0:
        print(f"  ALERT: gas flow peak estimate {p99_proxy.value:.2f} exceeds threshold 5.0")
    else:
        print(f"  gas flow peak estimate {p99_proxy.value:.2f} within normal range")


if __name__ == "__main__":
    main()
