"""Edge analytics over compressed IoT data (the paper's deployment scenario).

An edge gateway receives a stream of sensor rows and keeps only the
partitioned GreedyGD-compressed form plus per-partition PairwiseHist
synopses, merged into one queryable synopsis — the Fig. 2 pipeline
including incremental data updates (red arrows), served through the
multi-table :class:`~repro.service.QueryService`.  Streaming batches only
recompress and re-summarise the tail partition, so ingest cost stays
bounded no matter how much history the gateway has accumulated.

Run with:  python examples/iot_edge_monitoring.py
"""

import numpy as np

from repro import PairwiseHistParams, QueryService, load_dataset


def main() -> None:
    # The gateway has seen the first day of data ...
    history = load_dataset("gas", rows=40_000, seed=2)
    # ... and new readings keep arriving in batches.
    incoming = load_dataset("gas", rows=15_000, seed=99)

    raw_bytes = history.memory_bytes()
    service = QueryService(
        default_params=PairwiseHistParams.with_defaults(sample_size=20_000),
        partition_size=8_192,
    )
    gas = service.register_table(history)
    store = gas.store
    print("ingestion")
    print(f"  raw data           : {raw_bytes / 1e6:8.2f} MB")
    print(f"  GreedyGD compressed: {store.compressed_bytes() / 1e6:8.2f} MB "
          f"({store.compression_ratio(raw_bytes):.2f}x) in {store.num_partitions} partitions")
    total = store.compressed_bytes() + gas.synopsis_bytes()
    print(f"  PairwiseHist       : {gas.synopsis_bytes() / 1e6:8.2f} MB across "
          f"{len(gas.partition_synopses)} partition synopses "
          f"(total storage {total / 1e6:.2f} MB vs {raw_bytes / 1e6:.2f} MB raw)\n")

    # Local monitoring queries with bounds — no cloud round trip.  The
    # service routes each query to the table named in its FROM clause.
    print("edge monitoring queries")
    for sql in [
        "SELECT AVG(temperature) FROM gas WHERE humidity > 60",
        "SELECT COUNT(gas_flow) FROM gas WHERE gas_flow > 2.0",
        "SELECT MAX(sensor_r1) FROM gas WHERE temperature > 24",
        "SELECT VAR(humidity) FROM gas WHERE temperature < 23",
    ]:
        result = service.execute_scalar(sql)
        print(f"  {sql}")
        print(f"    -> {result.value:10.3f}   bounds [{result.lower:.3f}, {result.upper:.3f}]")

    # New rows arrive in batches: each ingest appends to the partitioned
    # store and refreshes only the affected tail partition's synopsis.
    before = service.execute_scalar("SELECT AVG(temperature) FROM gas WHERE humidity > 60")
    print("\nincremental updates")
    for start in range(0, incoming.num_rows, 5_000):
        batch = incoming.select_rows(np.arange(start, min(start + 5_000, incoming.num_rows)))
        outcome = service.ingest("gas", batch)
        print(f"  +{outcome.appended_rows} rows -> rebuilt partitions "
              f"{outcome.rebuilt_partitions} of {outcome.total_partitions} "
              f"({outcome.untouched_partitions} untouched) in {outcome.seconds * 1e3:.0f} ms")
    after = service.execute_scalar("SELECT AVG(temperature) FROM gas WHERE humidity > 60")
    drift = after.value - before.value
    print(f"  rows: {history.num_rows} -> {gas.num_rows}; lifetime synopsis builds: "
          f"{gas.synopsis_builds}")
    print(f"  AVG(temperature | humidity > 60): {before.value:.3f} -> {after.value:.3f} "
          f"(drift {drift:+.3f})")

    # A tiny anomaly check an edge device could run every few seconds.
    p99_proxy = service.execute_scalar(
        "SELECT MAX(gas_flow) FROM gas WHERE temperature > 20"
    )
    if np.isfinite(p99_proxy.value) and p99_proxy.value > 5.0:
        print(f"  ALERT: gas flow peak estimate {p99_proxy.value:.2f} exceeds threshold 5.0")
    else:
        print(f"  gas flow peak estimate {p99_proxy.value:.2f} within normal range")


if __name__ == "__main__":
    main()
