"""Setuptools shim so editable installs work in offline environments
where the ``wheel`` package (needed for PEP 660 builds) is unavailable."""

from setuptools import setup

setup()
