"""Benchmark harness: one experiment class per table / figure of the paper."""

from .harness import (
    ExperimentScale,
    SystemSuite,
    build_suite,
    format_table,
    generate_workload,
    load_scaled_dataset,
    run_suite,
    workload_templates,
)
from .experiments import (
    Fig1Summary,
    Fig8InitialExperiments,
    Fig9ParameterSensitivity,
    Fig10ErrorCDF,
    Fig10RealVsIdebench,
    Fig11ScaledPerformance,
    Table1Qualitative,
    Table5AccuracyByAggregation,
    Table6Bounds,
)
from .ablations import AblationGDSeeding, AblationHypothesisTesting, AblationStorageEncoding

__all__ = [
    "ExperimentScale",
    "SystemSuite",
    "build_suite",
    "format_table",
    "generate_workload",
    "load_scaled_dataset",
    "run_suite",
    "workload_templates",
    "Fig1Summary",
    "Fig8InitialExperiments",
    "Fig9ParameterSensitivity",
    "Fig10ErrorCDF",
    "Fig10RealVsIdebench",
    "Fig11ScaledPerformance",
    "Table1Qualitative",
    "Table5AccuracyByAggregation",
    "Table6Bounds",
    "AblationGDSeeding",
    "AblationHypothesisTesting",
    "AblationStorageEncoding",
]
