"""Ablation experiments for the design choices the paper motivates.

Three decisions are called out in DESIGN.md as worth isolating:

1. recursive hypothesis-testing refinement (§4.1) vs plain equi-width bins,
2. seeding initial bin edges from GreedyGD bases (§3) vs min/max seeding,
3. the sparse Golomb-coded bin-count encoding (§4.3) vs dense encoding.

Each ablation builds PairwiseHist with and without the feature and reports
accuracy, synopsis size and construction time on the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.adapter import PairwiseHistSystem
from ..core.builder import build_pairwise_hist
from ..core.params import PairwiseHistParams
from ..core.serialization import synopsis_size_bytes
from ..data.datasets import load_dataset
from ..gd.preprocessor import Preprocessor
from ..workload.runner import WorkloadRunner
from .experiments import _initial_workload
from .harness import ExperimentScale, fmt, format_table

_MB = 1e6


@dataclass
class AblationHypothesisTesting:
    """Hypothesis-test-driven refinement vs equi-width histograms with the same bin budget."""

    scale: ExperimentScale = field(default_factory=ExperimentScale.default)
    dataset: str = "power"
    results: dict[str, dict[str, float]] = field(default_factory=dict)

    def run(self) -> dict[str, dict[str, float]]:
        table = load_dataset(self.dataset, rows=self.scale.dataset_rows, seed=self.scale.seed)
        queries = _initial_workload(table, self.scale)
        runner = WorkloadRunner(table)

        refined = PairwiseHistSystem.fit(
            table, sample_size=self.scale.sample_small, name="PairwiseHist (refined)"
        )
        refined_summary = runner.run(refined, queries)
        mean_bins = float(
            np.mean([h.num_bins for h in refined.engine.synopsis.hist1d.values()])
        )

        # Equi-width variant: same mean bin budget per column, no hypothesis
        # testing (min_points larger than the sample prevents every split).
        preprocessor = Preprocessor.fit(table)
        codes, nulls = preprocessor.transform_table(table)
        sample = self.scale.sample_small
        bins = max(2, int(round(mean_bins)))
        params = PairwiseHistParams(
            sample_size=sample,
            min_points=sample + 1,   # no bin ever reaches M, so nothing is refined
            alpha=0.5,
            seed=self.scale.seed,
            max_initial_bins=bins,   # keep the provided equi-width grid intact
        )
        equi_edges = {}
        for name in table.column_names:
            col = np.asarray(codes[name], dtype=float)
            col = col[~np.asarray(nulls[name], dtype=bool)] if name in nulls else col
            if col.size == 0:
                continue
            equi_edges[name] = np.linspace(col.min(), col.max(), bins + 1)
        synopsis = build_pairwise_hist(
            codes,
            params,
            population_rows=table.num_rows,
            null_masks=nulls,
            initial_edges=equi_edges,
            columns=table.column_names,
        )
        from ..core.engine import PairwiseHistEngine

        equi_engine = PairwiseHistEngine(
            synopsis=synopsis, preprocessor=preprocessor, table_name=table.name
        )
        equi_system = PairwiseHistSystem(engine=equi_engine, name="Equi-width (no refinement)")
        equi_summary = runner.run(equi_system, queries)

        self.results = {
            "PairwiseHist (refined)": {
                "median_error_percent": refined_summary.median_error_percent(),
                "synopsis_mb": refined.synopsis_bytes() / _MB,
                "mean_bins_per_column": mean_bins,
            },
            "Equi-width (no refinement)": {
                "median_error_percent": equi_summary.median_error_percent(),
                "synopsis_mb": synopsis_size_bytes(synopsis) / _MB,
                "mean_bins_per_column": float(bins),
            },
        }
        return self.results

    def render(self) -> str:
        if not self.results:
            self.run()
        headers = ["variant", "median error (%)", "synopsis (MB)", "bins/column"]
        rows = [
            [name, fmt(v["median_error_percent"]), fmt(v["synopsis_mb"], 3), fmt(v["mean_bins_per_column"], 1)]
            for name, v in self.results.items()
        ]
        return format_table(headers, rows, "Ablation — recursive hypothesis testing")


@dataclass
class AblationGDSeeding:
    """GD-base-seeded initial bin edges vs min/max initial edges."""

    scale: ExperimentScale = field(default_factory=ExperimentScale.default)
    dataset: str = "power"
    results: dict[str, dict[str, float]] = field(default_factory=dict)

    def run(self) -> dict[str, dict[str, float]]:
        table = load_dataset(self.dataset, rows=self.scale.dataset_rows, seed=self.scale.seed)
        queries = _initial_workload(table, self.scale)
        runner = WorkloadRunner(table)
        for label, use_compression in (("GD-seeded (with compression)", True), ("Min/max seeded (stand-alone)", False)):
            system = PairwiseHistSystem.fit(
                table,
                sample_size=self.scale.sample_small,
                use_compression=use_compression,
                name=label,
            )
            summary = runner.run(system, queries)
            self.results[label] = {
                "median_error_percent": summary.median_error_percent(),
                "construction_seconds": system.construction_seconds,
                "synopsis_mb": system.synopsis_bytes() / _MB,
            }
        return self.results

    def render(self) -> str:
        if not self.results:
            self.run()
        headers = ["variant", "median error (%)", "construction (s)", "synopsis (MB)"]
        rows = [
            [name, fmt(v["median_error_percent"]), fmt(v["construction_seconds"]), fmt(v["synopsis_mb"], 3)]
            for name, v in self.results.items()
        ]
        return format_table(headers, rows, "Ablation — GD base seeding of initial bins")


@dataclass
class AblationStorageEncoding:
    """Adaptive dense/sparse (Golomb) bin-count encoding vs dense-only encoding."""

    scale: ExperimentScale = field(default_factory=ExperimentScale.default)
    dataset: str = "flights"
    results: dict[str, float] = field(default_factory=dict)

    def run(self) -> dict[str, float]:
        table = load_dataset(self.dataset, rows=self.scale.dataset_rows, seed=self.scale.seed)
        system = PairwiseHistSystem.fit(table, sample_size=self.scale.sample_small)
        synopsis = system.engine.synopsis
        adaptive = synopsis_size_bytes(synopsis)
        dense = synopsis_size_bytes(synopsis, force_dense=True)
        self.results = {
            "adaptive_mb": adaptive / _MB,
            "dense_only_mb": dense / _MB,
            "savings_percent": 100.0 * (1.0 - adaptive / dense) if dense else 0.0,
        }
        return self.results

    def render(self) -> str:
        if not self.results:
            self.run()
        headers = ["encoding", "synopsis (MB)"]
        rows = [
            ["adaptive dense/sparse (paper)", fmt(self.results["adaptive_mb"], 3)],
            ["dense only", fmt(self.results["dense_only_mb"], 3)],
            ["savings", fmt(self.results["savings_percent"], 1) + "%"],
        ]
        return format_table(headers, rows, "Ablation — bin-count storage encoding")
