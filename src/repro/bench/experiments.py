"""Experiment classes regenerating every table and figure of §6.

Each class owns one artefact of the paper's evaluation, exposes ``run()``
returning structured results and ``render()`` producing the same rows /
series the paper reports.  Scales are configurable (see
:class:`~repro.bench.harness.ExperimentScale`): the defaults finish on a
laptop, and all claims are relative (PairwiseHist vs the baselines on the
same host and data), matching how the paper's findings are stated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.adapter import PairwiseHistSystem
from ..baselines.dbest import DBEstPlusPlusLike
from ..baselines.deepdb import DeepDBLike
from ..core.params import PairwiseHistParams
from ..data.datasets import available_datasets, load_dataset
from ..data.idebench import scale_dataset
from ..data.table import Table
from ..gd.store import CompressedStore
from ..sql.ast import AggregateFunction, Query
from ..workload.generator import QueryGenerator, WorkloadSpec
from ..workload.metrics import WorkloadSummary
from ..workload.runner import WorkloadRunner
from .harness import ExperimentScale, fmt, format_table, workload_templates

_MB = 1e6


def _initial_workload(table: Table, scale: ExperimentScale) -> list[Query]:
    spec = WorkloadSpec.initial_experiments(num_queries=scale.queries, seed=scale.seed)
    return QueryGenerator(table, spec).generate()


def _scaled_workload(table: Table, scale: ExperimentScale) -> list[Query]:
    spec = WorkloadSpec.scaled_experiments(num_queries=scale.queries, seed=scale.seed)
    # The paper's minimum selectivity of 1e-6 targets 10^9-row tables (>=1000
    # matching rows).  At laptop scale keep queries meaningful by requiring a
    # comparable number of matching rows rather than the raw fraction.
    spec.min_selectivity = max(spec.min_selectivity, 30.0 / max(table.num_rows, 1))
    return QueryGenerator(table, spec).generate()


# --------------------------------------------------------------------------- #
# Fig. 8 — initial experiments across the 11 real-world datasets


@dataclass
class Fig8InitialExperiments:
    """Fig. 8: median error (a) and synopsis size (b) across the 11 datasets."""

    scale: ExperimentScale = field(default_factory=ExperimentScale.default)
    datasets: list[str] = field(default_factory=available_datasets)
    results: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def run(self) -> dict[str, dict[str, dict[str, float]]]:
        for name in self.datasets:
            table = load_dataset(name, rows=self.scale.dataset_rows, seed=self.scale.seed)
            queries = _initial_workload(table, self.scale)
            runner = WorkloadRunner(table)
            templates = workload_templates(queries)
            systems = {
                "PairwiseHist 100k": PairwiseHistSystem.fit(
                    table, sample_size=self.scale.sample_small, name="PairwiseHist 100k"
                ),
                "PairwiseHist 10k": PairwiseHistSystem.fit(
                    table, sample_size=self.scale.sample_tiny, name="PairwiseHist 10k"
                ),
                "DeepDB 100k": DeepDBLike.fit(table, sample_size=self.scale.sample_small),
                "DeepDB 10k": DeepDBLike.fit(table, sample_size=self.scale.sample_tiny),
                "DBEst++ 100k": DBEstPlusPlusLike.fit(
                    table, sample_size=self.scale.sample_small, templates=templates
                ),
                "DBEst++ 10k": DBEstPlusPlusLike.fit(
                    table, sample_size=self.scale.sample_tiny, templates=templates
                ),
            }
            per_dataset: dict[str, dict[str, float]] = {}
            for label, system in systems.items():
                summary = runner.run(system, queries)
                per_dataset[label] = {
                    "median_error_percent": summary.median_error_percent(),
                    "synopsis_mb": system.synopsis_bytes() / _MB,
                    "supported_queries": float(len(summary.supported_records)),
                }
            self.results[name] = per_dataset
        return self.results

    def render(self) -> str:
        if not self.results:
            self.run()
        labels = next(iter(self.results.values())).keys()
        error_rows = [
            [name] + [fmt(self.results[name][label]["median_error_percent"]) for label in labels]
            for name in self.results
        ]
        size_rows = [
            [name] + [fmt(self.results[name][label]["synopsis_mb"], 3) for label in labels]
            for name in self.results
        ]
        headers = ["dataset"] + list(labels)
        return "\n\n".join(
            [
                format_table(headers, error_rows, "Fig. 8(a) — median error (%)"),
                format_table(headers, size_rows, "Fig. 8(b) — synopsis size (MB)"),
            ]
        )


# --------------------------------------------------------------------------- #
# Fig. 9 — parameter sensitivity


@dataclass
class Fig9ParameterSensitivity:
    """Fig. 9: accuracy and synopsis size vs M, alpha and Ns on scaled Flights."""

    scale: ExperimentScale = field(default_factory=ExperimentScale.default)
    dataset: str = "flights"
    min_points_fractions: tuple[float, ...] = (0.01, 0.04, 0.07, 0.10)
    series: tuple[tuple[str, str, float], ...] = (
        ("1m, alpha=0.01", "large", 0.01),
        ("100k, alpha=0.001", "small", 0.001),
        ("100k, alpha=0.01", "small", 0.01),
        ("100k, alpha=0.1", "small", 0.1),
    )
    results: dict[str, list[dict[str, float]]] = field(default_factory=dict)

    def run(self) -> dict[str, list[dict[str, float]]]:
        original = load_dataset(self.dataset, rows=self.scale.dataset_rows, seed=self.scale.seed)
        table = scale_dataset(original, rows=self.scale.scaled_rows, seed=self.scale.seed)
        queries = _initial_workload(table, self.scale)
        runner = WorkloadRunner(table)
        for label, size_key, alpha in self.series:
            sample = self.scale.sample_large if size_key == "large" else self.scale.sample_small
            points: list[dict[str, float]] = []
            for fraction in self.min_points_fractions:
                min_points = max(10, int(round(sample * fraction)))
                params = PairwiseHistParams(
                    sample_size=sample, min_points=min_points, alpha=alpha, seed=self.scale.seed
                )
                system = PairwiseHistSystem.fit(table, params=params, name=f"PH {label}")
                summary = runner.run(system, queries)
                points.append(
                    {
                        "min_points": float(min_points),
                        "median_error_percent": summary.median_error_percent(),
                        "synopsis_mb": system.synopsis_bytes() / _MB,
                    }
                )
            self.results[label] = points
        return self.results

    def render(self) -> str:
        if not self.results:
            self.run()
        headers = ["series", "M", "median error (%)", "synopsis (MB)"]
        rows = []
        for label, points in self.results.items():
            for point in points:
                rows.append(
                    [
                        label,
                        fmt(point["min_points"], 0),
                        fmt(point["median_error_percent"]),
                        fmt(point["synopsis_mb"], 3),
                    ]
                )
        return format_table(headers, rows, "Fig. 9 — parameter sensitivity (scaled Flights)")


# --------------------------------------------------------------------------- #
# Table 5 / Fig. 10 — scaled-up experiments


@dataclass
class ScaledExperimentRun:
    """Shared machinery: run the scaled workload for one dataset on all systems."""

    scale: ExperimentScale
    dataset: str

    def execute(self) -> tuple[Table, list[Query], dict[str, WorkloadSummary], dict[str, object]]:
        original = load_dataset(self.dataset, rows=self.scale.dataset_rows, seed=self.scale.seed)
        table = scale_dataset(original, rows=self.scale.scaled_rows, seed=self.scale.seed,
                              name=f"{self.dataset}_scaled")
        queries = _scaled_workload(table, self.scale)
        runner = WorkloadRunner(table)
        templates = workload_templates(queries)
        systems = {
            "PairwiseHist": PairwiseHistSystem.fit(table, sample_size=self.scale.sample_large),
            "DeepDB": DeepDBLike.fit(table, sample_size=self.scale.sample_large),
            "DBEst++": DBEstPlusPlusLike.fit(
                table, sample_size=self.scale.sample_tiny, templates=templates
            ),
        }
        summaries = {name: runner.run(system, queries) for name, system in systems.items()}
        return table, queries, summaries, systems


@dataclass
class Table5AccuracyByAggregation:
    """Table 5: median relative error (%) per aggregation function and system."""

    scale: ExperimentScale = field(default_factory=ExperimentScale.default)
    datasets: tuple[str, ...] = ("power", "flights")
    results: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def run(self) -> dict[str, dict[str, dict[str, float]]]:
        for dataset in self.datasets:
            _, _, summaries, _ = ScaledExperimentRun(self.scale, dataset).execute()
            per_system: dict[str, dict[str, float]] = {}
            for system_name, summary in summaries.items():
                by_agg = {
                    agg: sub.median_error_percent() for agg, sub in summary.by_aggregation().items()
                }
                by_agg["Overall"] = summary.median_error_percent()
                by_agg["supported"] = float(len(summary.supported_records))
                per_system[system_name] = by_agg
            self.results[dataset] = per_system
        return self.results

    def render(self) -> str:
        if not self.results:
            self.run()
        functions = [f.value for f in AggregateFunction] + ["Overall"]
        blocks = []
        for dataset, per_system in self.results.items():
            headers = ["aggregation"] + list(per_system.keys())
            rows = []
            for func in functions:
                rows.append(
                    [func] + [fmt(per_system[system].get(func, float("nan"))) for system in per_system]
                )
            rows.append(
                ["supported queries"]
                + [fmt(per_system[system].get("supported", float("nan")), 0) for system in per_system]
            )
            blocks.append(format_table(headers, rows, f"Table 5 — median relative error (%), {dataset} (scaled)"))
        return "\n\n".join(blocks)


@dataclass
class Fig10ErrorCDF:
    """Fig. 10(a)-(c): error CDFs over system-supported query subsets."""

    scale: ExperimentScale = field(default_factory=ExperimentScale.default)
    datasets: tuple[str, ...] = ("power", "flights")
    percentiles: tuple[float, ...] = (25.0, 50.0, 75.0, 90.0, 95.0, 99.0)
    results: dict[str, dict[str, object]] = field(default_factory=dict)

    def run(self) -> dict[str, dict[str, object]]:
        all_records: dict[str, list] = {"PairwiseHist": [], "DeepDB": [], "DBEst++": []}
        for dataset in self.datasets:
            _, _, summaries, _ = ScaledExperimentRun(self.scale, dataset).execute()
            for system_name, summary in summaries.items():
                all_records[system_name].extend(summary.records)
        merged = {name: WorkloadSummary(records) for name, records in all_records.items()}

        def subset(records, keep_sql: set[str]) -> WorkloadSummary:
            return WorkloadSummary([r for r in records if r.sql in keep_sql])

        deepdb_supported = {r.sql for r in merged["DeepDB"].records if r.supported}
        dbest_supported = {r.sql for r in merged["DBEst++"].records if r.supported}
        panels = {
            "vs DBEst++ (supported subset)": {
                "PairwiseHist": subset(merged["PairwiseHist"].records, dbest_supported),
                "DBEst++": subset(merged["DBEst++"].records, dbest_supported),
            },
            "vs DeepDB (supported subset)": {
                "PairwiseHist": subset(merged["PairwiseHist"].records, deepdb_supported),
                "DeepDB": subset(merged["DeepDB"].records, deepdb_supported),
            },
            "all queries": {"PairwiseHist": merged["PairwiseHist"]},
        }
        rendered: dict[str, dict[str, object]] = {}
        for panel, systems in panels.items():
            rendered[panel] = {
                name: {
                    "num_queries": float(len(summary.supported_records)),
                    "error_percentiles": summary.error_percentiles(list(self.percentiles)) * 100.0,
                    "fraction_below_10pct": summary.fraction_below(0.10),
                    "fraction_below_1pct": summary.fraction_below(0.01),
                }
                for name, summary in systems.items()
            }
        self.results = rendered
        return rendered

    def render(self) -> str:
        if not self.results:
            self.run()
        blocks = []
        for panel, systems in self.results.items():
            headers = ["system", "n"] + [f"p{int(p)} err (%)" for p in self.percentiles] + [
                "<1% err", "<10% err"
            ]
            rows = []
            for name, stats in systems.items():
                rows.append(
                    [name, fmt(stats["num_queries"], 0)]
                    + [fmt(v) for v in stats["error_percentiles"]]
                    + [fmt(stats["fraction_below_1pct"] * 100, 1) + "%",
                       fmt(stats["fraction_below_10pct"] * 100, 1) + "%"]
                )
            blocks.append(format_table(headers, rows, f"Fig. 10 — error distribution, {panel}"))
        return "\n\n".join(blocks)


@dataclass
class Fig10RealVsIdebench:
    """Fig. 10(d): PairwiseHist / DeepDB error on real vs IDEBench-generated data."""

    scale: ExperimentScale = field(default_factory=ExperimentScale.default)
    datasets: tuple[str, ...] = ("power", "flights")
    results: dict[str, dict[str, float]] = field(default_factory=dict)

    def run(self) -> dict[str, dict[str, float]]:
        for dataset in self.datasets:
            real = load_dataset(dataset, rows=self.scale.dataset_rows, seed=self.scale.seed)
            synthetic = scale_dataset(
                real, rows=self.scale.dataset_rows, seed=self.scale.seed, name=f"{dataset}_idebench"
            )
            queries = _initial_workload(real, self.scale)
            row: dict[str, float] = {}
            for label, table in (("Real", real), ("IDEBench", synthetic)):
                runner = WorkloadRunner(table)
                ph = PairwiseHistSystem.fit(table, sample_size=self.scale.sample_large)
                dd = DeepDBLike.fit(table, sample_size=self.scale.sample_large)
                row[f"PairwiseHist {label}"] = runner.run(ph, queries).median_error_percent()
                row[f"DeepDB {label}"] = runner.run(dd, queries).median_error_percent()
            self.results[dataset] = row
        return self.results

    def render(self) -> str:
        if not self.results:
            self.run()
        labels = list(next(iter(self.results.values())).keys())
        headers = ["dataset"] + labels
        rows = [
            [dataset] + [fmt(self.results[dataset][label]) for label in labels]
            for dataset in self.results
        ]
        return format_table(headers, rows, "Fig. 10(d) — median error (%), real vs IDEBench data")


# --------------------------------------------------------------------------- #
# Table 6 — bounds accuracy and width


@dataclass
class Table6Bounds:
    """Table 6: bounds correct-rate (%) and median width (%) for PairwiseHist vs DeepDB."""

    scale: ExperimentScale = field(default_factory=ExperimentScale.default)
    datasets: tuple[str, ...] = ("power", "flights")
    results: dict[str, dict[str, float]] = field(default_factory=dict)

    def run(self) -> dict[str, dict[str, float]]:
        for dataset in self.datasets:
            for variant in ("original", "scaled"):
                if variant == "original":
                    table = load_dataset(dataset, rows=self.scale.dataset_rows, seed=self.scale.seed)
                else:
                    original = load_dataset(dataset, rows=self.scale.dataset_rows, seed=self.scale.seed)
                    table = scale_dataset(original, rows=self.scale.scaled_rows, seed=self.scale.seed)
                queries = _initial_workload(table, self.scale)
                runner = WorkloadRunner(table)
                ph = PairwiseHistSystem.fit(table, sample_size=self.scale.sample_large)
                dd = DeepDBLike.fit(table, sample_size=self.scale.sample_large)
                ph_summary = runner.run(ph, queries)
                dd_summary = runner.run(dd, queries)
                supported = {r.sql for r in dd_summary.records if r.supported}
                ph_subset = WorkloadSummary([r for r in ph_summary.records if r.sql in supported])
                dd_subset = WorkloadSummary([r for r in dd_summary.records if r.sql in supported])
                self.results[f"{dataset} ({variant})"] = {
                    "PairwiseHist correct (%)": ph_subset.bounds_correct_rate_percent(),
                    "DeepDB correct (%)": dd_subset.bounds_correct_rate_percent(),
                    "PairwiseHist width (%)": ph_subset.median_bound_width_percent(),
                    "DeepDB width (%)": dd_subset.median_bound_width_percent(),
                }
        return self.results

    def render(self) -> str:
        if not self.results:
            self.run()
        labels = list(next(iter(self.results.values())).keys())
        headers = ["dataset"] + labels
        rows = [
            [name] + [fmt(values[label], 1) for label in labels]
            for name, values in self.results.items()
        ]
        return format_table(headers, rows, "Table 6 — bounds accuracy rate and width")


# --------------------------------------------------------------------------- #
# Fig. 11 — storage and runtime on the scaled datasets


@dataclass
class Fig11ScaledPerformance:
    """Fig. 11(a)-(d): synopsis size, total storage, query latency, construction time."""

    scale: ExperimentScale = field(default_factory=ExperimentScale.default)
    datasets: tuple[str, ...] = ("power", "flights")
    results: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def run(self) -> dict[str, dict[str, dict[str, float]]]:
        for dataset in self.datasets:
            table, _, summaries, systems = ScaledExperimentRun(self.scale, dataset).execute()
            raw_bytes = table.memory_bytes()
            ph_system = systems["PairwiseHist"]
            store: CompressedStore | None = ph_system.engine.store
            compressed_bytes = store.compressed_bytes() if store is not None else raw_bytes
            per_system: dict[str, dict[str, float]] = {}
            for name, system in systems.items():
                summary = summaries[name]
                synopsis_mb = system.synopsis_bytes() / _MB
                if name == "PairwiseHist":
                    total_storage = (compressed_bytes + system.synopsis_bytes()) / _MB
                else:
                    total_storage = (raw_bytes + system.synopsis_bytes()) / _MB
                per_system[name] = {
                    "synopsis_mb": synopsis_mb,
                    "total_storage_mb": total_storage,
                    "median_latency_ms": summary.median_latency_ms(),
                    "construction_seconds": system.construction_seconds,
                    "median_error_percent": summary.median_error_percent(),
                }
            per_system["Raw data"] = {
                "synopsis_mb": float("nan"),
                "total_storage_mb": raw_bytes / _MB,
                "median_latency_ms": float("nan"),
                "construction_seconds": float("nan"),
                "median_error_percent": float("nan"),
            }
            self.results[dataset] = per_system
        return self.results

    def render(self) -> str:
        if not self.results:
            self.run()
        blocks = []
        metrics = [
            ("synopsis_mb", "Fig. 11(a) — synopsis size (MB)", 3),
            ("total_storage_mb", "Fig. 11(b) — total storage (MB)", 2),
            ("median_latency_ms", "Fig. 11(c) — median query latency (ms)", 2),
            ("construction_seconds", "Fig. 11(d) — construction time (s)", 2),
        ]
        for key, title, digits in metrics:
            systems = list(next(iter(self.results.values())).keys())
            headers = ["dataset"] + systems
            rows = [
                [dataset] + [fmt(self.results[dataset][system][key], digits) for system in systems]
                for dataset in self.results
            ]
            blocks.append(format_table(headers, rows, title))
        return "\n\n".join(blocks)


# --------------------------------------------------------------------------- #
# Fig. 1 and Table 1 — summaries


@dataclass
class Fig1Summary:
    """Fig. 1: relative performance of PairwiseHist vs DeepDB and DBEst++.

    Each axis is reported as "factor by which PairwiseHist is better"
    (>1 means PairwiseHist wins), derived from one scaled-experiment run.
    """

    scale: ExperimentScale = field(default_factory=ExperimentScale.default)
    dataset: str = "power"
    results: dict[str, dict[str, float]] = field(default_factory=dict)

    def run(self) -> dict[str, dict[str, float]]:
        table, queries, summaries, systems = ScaledExperimentRun(self.scale, self.dataset).execute()
        ph_summary = summaries["PairwiseHist"]
        ph = systems["PairwiseHist"]
        for name in ("DeepDB", "DBEst++"):
            summary = summaries[name]
            system = systems[name]
            self.results[name] = {
                "accuracy": summary.median_error_percent() / max(ph_summary.median_error_percent(), 1e-9),
                "latency": summary.median_latency_ms() / max(ph_summary.median_latency_ms(), 1e-9),
                "synopsis_size": system.synopsis_bytes() / max(ph.synopsis_bytes(), 1),
                "construction_time": system.construction_seconds / max(ph.construction_seconds, 1e-9),
                "query_bounds": (
                    ph_summary.bounds_correct_rate_percent()
                    / summary.bounds_correct_rate_percent()
                    if np.isfinite(summary.bounds_correct_rate_percent())
                    and summary.bounds_correct_rate_percent() > 0
                    else float("nan")
                ),
            }
        return self.results

    def render(self) -> str:
        if not self.results:
            self.run()
        headers = ["axis", *[f"vs {name} (x better)" for name in self.results]]
        axes = ["accuracy", "latency", "synopsis_size", "construction_time", "query_bounds"]
        rows = [
            [axis] + [fmt(self.results[name][axis], 2) for name in self.results] for axis in axes
        ]
        return format_table(headers, rows, "Fig. 1 — relative performance of PairwiseHist")


_TABLE1_LITERATURE = [
    # name, accuracy, latency, bounds, size, build, versatility (from Table 1)
    ("VerdictDB", "1%", "seconds", "yes", "GBs", "?", "very high"),
    ("Gapprox", "<5%", "seconds", "yes", "n/a", "n/a", "low"),
    ("BlinkDB", "<10%", "seconds", "yes", "GBs", "n/a", "high"),
    ("DigitHist", "1%", "sub-ms", "yes", "MBs", "mins", "very low"),
    ("DMMH", "1-2%", "ms", "no", "sub-MB", "secs", "very low"),
    ("STHoles", "10%", "?", "no", "sub-MB", "?", "very low"),
    ("DeepDB", "1%", "ms", "yes", "MBs", "mins", "high"),
    ("DBEst++", "1%*", "ms", "no", "MBs", "hours", "low"),
    ("NeuroSketch", "5%", "sub-ms", "yes", "sub-MB", "mins", "very high"),
    ("LAQP", "10%", "ms", "no", "sub-MB", "?", "very high"),
    ("Electra", "10%", "?", "no", "?", "?", "low"),
    ("PASS", "<1%", "ms", "yes", "MBs", "mins", "high"),
    ("AQP++", "<1%", "seconds", "yes", "MBs", "mins", "high"),
]


@dataclass
class Table1Qualitative:
    """Table 1: qualitative comparison, with PairwiseHist's row measured live."""

    scale: ExperimentScale = field(default_factory=ExperimentScale.default)
    dataset: str = "power"
    measured: dict[str, float] = field(default_factory=dict)

    def run(self) -> dict[str, float]:
        table = load_dataset(self.dataset, rows=self.scale.dataset_rows, seed=self.scale.seed)
        queries = _initial_workload(table, self.scale)
        runner = WorkloadRunner(table)
        system = PairwiseHistSystem.fit(table, sample_size=self.scale.sample_small)
        summary = runner.run(system, queries)
        self.measured = {
            "median_error_percent": summary.median_error_percent(),
            "median_latency_ms": summary.median_latency_ms(),
            "synopsis_mb": system.synopsis_bytes() / _MB,
            "construction_seconds": system.construction_seconds,
            "bounds_correct_rate": summary.bounds_correct_rate_percent(),
        }
        return self.measured

    def render(self) -> str:
        if not self.measured:
            self.run()
        headers = ["system", "accuracy", "latency", "bounds", "size", "build", "versatility"]
        measured_row = [
            "PairwiseHist (measured)",
            f"{fmt(self.measured['median_error_percent'])}%",
            f"{fmt(self.measured['median_latency_ms'])} ms",
            "yes",
            f"{fmt(self.measured['synopsis_mb'], 3)} MB",
            f"{fmt(self.measured['construction_seconds'])} s",
            "very high",
        ]
        rows = [measured_row] + [list(row) for row in _TABLE1_LITERATURE]
        return format_table(headers, rows, "Table 1 — PairwiseHist compared to previous AQP works")
