"""Shared infrastructure for the per-table / per-figure experiments.

The paper's evaluation runs on datasets of up to 10^9 rows with synopsis
samples of 10^4–10^6 rows.  Every experiment here is parameterised by an
:class:`ExperimentScale` so the same code can regenerate the paper's tables
and figures at laptop scale (the default) or at a larger scale when more
time is available.  Relative comparisons — who wins, by roughly what factor
— are preserved; absolute numbers shrink with the data.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..baselines.adapter import PairwiseHistSystem
from ..baselines.base import AqpSystem
from ..baselines.dbest import DBEstPlusPlusLike
from ..baselines.deepdb import DeepDBLike
from ..baselines.sampling_aqp import SamplingAQP
from ..core.params import PairwiseHistParams
from ..data.datasets import load_dataset
from ..data.idebench import scale_dataset
from ..data.table import Table
from ..service.concurrency import ConcurrentQueryService, SerializedQueryService
from ..service.database import QueryService
from ..service.system import QueryServiceSystem
from ..sql.ast import Query, predicate_conditions
from ..workload.generator import QueryGenerator, WorkloadSpec
from ..workload.metrics import WorkloadSummary
from ..workload.runner import WorkloadRunner


@dataclass(frozen=True)
class ExperimentScale:
    """Row counts / sample sizes / workload sizes for one experiment run."""

    #: Rows generated per original dataset.
    dataset_rows: int = 20_000
    #: Rows of the IDEBench-scaled datasets ("1 billion" in the paper).
    scaled_rows: int = 60_000
    #: The paper's "1 million" synopsis sample.
    sample_large: int = 10_000
    #: The paper's "100k" synopsis sample.
    sample_small: int = 3_000
    #: The paper's "10k" synopsis sample (used by DBEst++ and Fig. 8).
    sample_tiny: int = 1_000
    #: Queries per workload.
    queries: int = 40
    #: RNG seed shared by dataset generation and workloads.
    seed: int = 7

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """Tiny scale used by the unit/integration tests."""
        return cls(
            dataset_rows=6_000,
            scaled_rows=10_000,
            sample_large=3_000,
            sample_small=1_500,
            sample_tiny=600,
            queries=15,
            seed=7,
        )

    @classmethod
    def default(cls) -> "ExperimentScale":
        """Laptop-scale default used by the benchmark suite."""
        return cls()

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """A larger configuration for overnight runs (still far below 10^9 rows)."""
        return cls(
            dataset_rows=200_000,
            scaled_rows=1_000_000,
            sample_large=100_000,
            sample_small=30_000,
            sample_tiny=10_000,
            queries=200,
            seed=7,
        )


@dataclass
class SystemSuite:
    """The set of AQP systems compared in one experiment."""

    systems: list[AqpSystem] = field(default_factory=list)

    def __iter__(self):
        return iter(self.systems)

    def by_name(self, name: str) -> AqpSystem:
        for system in self.systems:
            if system.name == name:
                return system
        raise KeyError(f"no system named {name!r}")

    @property
    def names(self) -> list[str]:
        return [s.name for s in self.systems]


def workload_templates(queries: list[Query]) -> list[tuple[str, str]]:
    """The (aggregation column, predicate column) templates a workload touches.

    DBEst++ needs one model per template; this mirrors the paper's procedure
    of training every model required to support the evaluated queries.
    """
    templates: list[tuple[str, str]] = []
    for query in queries:
        agg_column = query.aggregation.column
        if agg_column is None:
            continue
        for condition in predicate_conditions(query.predicate):
            pair = (agg_column, condition.column)
            if pair not in templates and pair[0] != pair[1]:
                templates.append(pair)
    return templates


def build_suite(
    table: Table,
    scale: ExperimentScale,
    queries: list[Query] | None = None,
    include_sampling: bool = False,
    include_partitioned: bool = False,
    pairwisehist_sample: int | None = None,
    deepdb_sample: int | None = None,
    dbest_sample: int | None = None,
    partition_size: int | None = None,
) -> SystemSuite:
    """Build the PairwiseHist / DeepDB / DBEst++ (/ Sampling) suite for one table.

    ``include_partitioned=True`` adds the service-backed partitioned engine
    (parallel per-partition synopses merged into one), the configuration the
    streaming / multi-table benchmarks compare against the monolith.
    """
    ph_sample = pairwisehist_sample or scale.sample_large
    dd_sample = deepdb_sample or scale.sample_large
    db_sample = dbest_sample or scale.sample_tiny
    templates = workload_templates(queries) if queries else None
    systems: list[AqpSystem] = [
        PairwiseHistSystem.fit(table, sample_size=ph_sample),
        DeepDBLike.fit(table, sample_size=dd_sample),
        DBEstPlusPlusLike.fit(table, sample_size=db_sample, templates=templates),
    ]
    if include_partitioned:
        systems.append(
            QueryServiceSystem.fit(
                table, sample_size=ph_sample, partition_size=partition_size
            )
        )
    if include_sampling:
        systems.append(SamplingAQP.fit(table, sample_size=ph_sample))
    return SystemSuite(systems)


def generate_workload(
    table: Table, scale: ExperimentScale, spec: WorkloadSpec | None = None
) -> list[Query]:
    """Generate a workload for a table using the experiment scale's defaults."""
    if spec is None:
        spec = WorkloadSpec.initial_experiments(num_queries=scale.queries, seed=scale.seed)
    generator = QueryGenerator(table, spec)
    return generator.generate()


def load_scaled_dataset(name: str, scale: ExperimentScale) -> Table:
    """The paper's IDEBench scale-up: fit the original and sample more rows."""
    original = load_dataset(name, rows=scale.dataset_rows, seed=scale.seed)
    return scale_dataset(original, rows=scale.scaled_rows, seed=scale.seed, name=f"{name}_scaled")


def run_suite(
    table: Table, suite: SystemSuite, queries: list[Query]
) -> dict[str, WorkloadSummary]:
    """Run the workload against every system in the suite."""
    runner = WorkloadRunner(table)
    return runner.run_many(list(suite), queries)


# --------------------------------------------------------------------------- #
# Concurrency benchmark: queries/sec under parallel clients + background ingest


def latency_percentiles(latencies_seconds: list[float]) -> dict[str, float]:
    """p50/p90/p99 of per-request latencies, in milliseconds.

    The machine-readable summary every latency benchmark emits; an empty
    sample yields NaNs rather than raising so a failed run still writes a
    well-formed payload.
    """
    if not latencies_seconds:
        return {"p50_ms": float("nan"), "p90_ms": float("nan"), "p99_ms": float("nan")}
    p50, p90, p99 = np.percentile(np.asarray(latencies_seconds), [50, 90, 99])
    return {
        "p50_ms": float(p50) * 1e3,
        "p90_ms": float(p90) * 1e3,
        "p99_ms": float(p99) * 1e3,
    }


@dataclass
class ThroughputMeasurement:
    """One closed-loop throughput run: N clients, optional ingest stream."""

    mode: str
    num_clients: int
    completed_queries: int
    wall_seconds: float
    ingest_batches: int = 0

    @property
    def queries_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed_queries / self.wall_seconds


def build_service_under_test(
    table: Table,
    kind: str = "concurrent",
    partition_size: int = 2_000,
    sample_size: int | None = None,
    seed: int = 7,
) -> QueryService:
    """Stand up one registered-table service for the concurrency benchmark.

    ``kind`` selects ``"concurrent"`` (per-table reader-writer locks,
    copy-on-write ingest) or ``"serialized"`` (one global mutex around
    queries *and* ingest — the no-concurrency baseline).
    """
    classes = {
        "concurrent": ConcurrentQueryService,
        "serialized": SerializedQueryService,
    }
    if kind not in classes:
        raise ValueError(f"unknown service kind {kind!r}")
    service = classes[kind](partition_size=partition_size)
    service.register_table(
        table, params=PairwiseHistParams.with_defaults(sample_size=sample_size, seed=seed)
    )
    return service


def measure_query_throughput(
    service: QueryService,
    queries: list[Query],
    num_clients: int,
    duration_seconds: float = 2.0,
    think_seconds: float = 0.002,
    ingest_batches: list[Table] | None = None,
    ingest_interval_seconds: float = 0.05,
    mode: str = "concurrent",
) -> ThroughputMeasurement:
    """Closed-loop throughput over a fixed wall-clock window.

    Every client thread cycles through the query list with a small think
    time between requests (a dashboard rendering between refreshes) until
    the window elapses; the measurement counts completed queries.  When
    ``ingest_batches`` is given, a background writer streams one batch
    into the service's (single) table every ``ingest_interval_seconds``,
    cycling through the batches until all clients finish — so the window
    includes query/ingest contention, which is the whole point.
    """
    table_name = service.table_names[0]
    stop = threading.Event()
    ingest_count = [0]
    completed = [0] * num_clients
    failures: list[BaseException] = []
    deadline = [0.0]

    def ingester() -> None:
        index = 0
        try:
            while not stop.is_set():
                began = time.perf_counter()
                service.ingest(table_name, ingest_batches[index % len(ingest_batches)])
                ingest_count[0] += 1
                index += 1
                remaining = ingest_interval_seconds - (time.perf_counter() - began)
                if remaining > 0:
                    stop.wait(remaining)
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    def client(worker: int) -> None:
        step = 0
        try:
            while time.perf_counter() < deadline[0]:
                if think_seconds > 0:
                    time.sleep(think_seconds)
                query = queries[(worker + step * num_clients) % len(queries)]
                service.execute_scalar(query)
                completed[worker] += 1
                step += 1
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    threads = [
        threading.Thread(target=client, args=(worker,), daemon=True)
        for worker in range(num_clients)
    ]
    writer = (
        threading.Thread(target=ingester, daemon=True)
        if ingest_batches
        else None
    )
    start = time.perf_counter()
    deadline[0] = start + duration_seconds
    if writer is not None:
        writer.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - start
    stop.set()
    if writer is not None:
        writer.join()
    if failures:
        raise failures[0]
    return ThroughputMeasurement(
        mode=mode,
        num_clients=num_clients,
        completed_queries=sum(completed),
        wall_seconds=wall_seconds,
        ingest_batches=ingest_count[0],
    )


def run_concurrency_benchmark(
    table: Table,
    queries: list[Query],
    client_counts: tuple[int, ...] = (1, 4, 16),
    baseline_clients: tuple[int, ...] = (4,),
    duration_seconds: float = 2.0,
    think_seconds: float = 0.002,
    partition_size: int = 2_000,
    ingest_batches: list[Table] | None = None,
    ingest_interval_seconds: float = 0.05,
    seed: int = 7,
) -> list[ThroughputMeasurement]:
    """The concurrency experiment: the concurrent service at 1/4/16
    clients against the serialized (single global mutex) baseline, all
    with the same background ingest stream and measurement window.

    The baseline is measured only at ``baseline_clients`` counts — it is
    an order of magnitude slower under ingest, and one point suffices for
    the speedup ratio.  A fresh service is registered per measurement so
    earlier ingests never bleed into later runs.
    """
    measurements: list[ThroughputMeasurement] = []
    plan = [("serialized", n) for n in baseline_clients]
    plan += [("concurrent", n) for n in client_counts]
    for kind, num_clients in plan:
        service = build_service_under_test(
            table, kind=kind, partition_size=partition_size, seed=seed
        )
        measurements.append(
            measure_query_throughput(
                service,
                queries,
                num_clients=num_clients,
                duration_seconds=duration_seconds,
                think_seconds=think_seconds,
                ingest_batches=ingest_batches,
                ingest_interval_seconds=ingest_interval_seconds,
                mode=kind,
            )
        )
    return measurements


@dataclass
class PersistenceMeasurement:
    """One restart-path timing from :func:`run_persistence_benchmark`."""

    mode: str  # "cold" | "warm-clean" | "warm-crash"
    seconds: float
    answers: list[tuple]
    replayed_records: int = 0
    rebuilt_partitions: int = 0
    #: Tables whose per-partition synopses were still lazy (never decoded)
    #: after the probe queries ran — a query-only restart should leave every
    #: table unhydrated, which is where the warm-restart latency win comes
    #: from.  Always 0 for the cold path (it builds, not loads).
    unhydrated_tables: int = 0


def count_unhydrated_tables(db) -> int:
    """Tables whose snapshot-loaded partition synopses were never decoded."""
    from ..core.serialization import LazyPartitionSynopses

    return sum(
        1
        for name in db.table_names
        if isinstance(db.table(name).partition_synopses, LazyPartitionSynopses)
        and not db.table(name).partition_synopses.hydrated
    )


def run_persistence_benchmark(
    base: Table,
    ingest_batches: list[Table],
    queries: list[str],
    data_dir,
    params: PairwiseHistParams | None = None,
    partition_size: int = 4_000,
) -> list[PersistenceMeasurement]:
    """Cold rebuild-from-raw-rows vs warm restart from the data directory.

    Three measurements over identical committed operations (register the
    base table, then ingest every batch):

    * ``cold`` — a fresh in-memory database re-ingesting the raw rows;
    * ``warm-clean`` — reopening a data directory whose last act was a
      checkpoint (the server's SIGTERM behaviour): pure snapshot load;
    * ``warm-crash`` — reopening a directory where the final ingest was
      never checkpointed: snapshot load + WAL tail replay + tail synopsis
      rebuild.

    Each measurement carries the answers to ``queries`` so callers can
    assert all three paths agree exactly.
    """
    from pathlib import Path

    from ..service.database import Database
    from ..storage import DurableDatabase

    params = params or PairwiseHistParams.with_defaults(sample_size=20_000)
    data_dir = Path(data_dir)

    def answers(db) -> list[tuple]:
        service = QueryService(database=db)
        return [
            (r.value, r.lower, r.upper)
            for r in (service.execute_scalar(q) for q in queries)
        ]

    def populate(path, checkpoint_before_last: bool) -> list[tuple]:
        db = DurableDatabase.open(
            path, default_params=params, partition_size=partition_size
        )
        db.register(base)
        for batch in ingest_batches[:-1]:
            db.ingest(base.name, batch)
        if checkpoint_before_last:
            db.checkpoint()  # the last batch stays WAL-only
            db.ingest(base.name, ingest_batches[-1])
        else:
            db.ingest(base.name, ingest_batches[-1])
            db.checkpoint()  # clean shutdown: everything snapshotted
        expected = answers(db)
        db.close()
        return expected

    expected = populate(data_dir / "clean", checkpoint_before_last=False)
    if populate(data_dir / "crash", checkpoint_before_last=True) != expected:
        raise AssertionError(
            "the two populated data directories answered the probe queries "
            "differently before any restart"
        )

    measurements: list[PersistenceMeasurement] = []
    start = time.perf_counter()
    cold = Database(default_params=params, partition_size=partition_size)
    cold.register(base)
    for batch in ingest_batches:
        cold.ingest(base.name, batch)
    measurements.append(
        PersistenceMeasurement(
            mode="cold", seconds=time.perf_counter() - start, answers=answers(cold)
        )
    )

    for mode, sub_dir in (("warm-clean", "clean"), ("warm-crash", "crash")):
        start = time.perf_counter()
        db = DurableDatabase.open(
            data_dir / sub_dir, default_params=params, partition_size=partition_size
        )
        elapsed = time.perf_counter() - start
        info = db.recovery_info
        measurements.append(
            PersistenceMeasurement(
                mode=mode,
                seconds=elapsed,
                answers=answers(db),
                replayed_records=info.replayed_records,
                rebuilt_partitions=info.rebuilt_partitions,
                unhydrated_tables=count_unhydrated_tables(db),
            )
        )
        db.close()
    for measurement in measurements:
        if measurement.answers != expected:
            raise AssertionError(
                f"{measurement.mode} path answered the probe queries "
                "differently from the database that produced the data "
                "directories"
            )
    return measurements


# --------------------------------------------------------------------------- #
# Sharded-cluster benchmark: multi-process scaling past the one-GIL ceiling


@dataclass
class ShardedThroughputMeasurement:
    """One closed-loop window against a deployment (single server or cluster)."""

    mode: str  # "single-process" | "N-shard-cluster"
    num_clients: int
    queries: int
    ingests: int
    ingested_rows: int
    wall_seconds: float
    #: Per-query wall latencies (seconds) across every client thread.
    query_latencies: list[float] = field(default_factory=list)

    @property
    def queries_per_second(self) -> float:
        return self.queries / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def ingests_per_second(self) -> float:
        return self.ingests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def ingested_rows_per_second(self) -> float:
        return self.ingested_rows / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def combined_ops_per_second(self) -> float:
        """Queries answered plus rows ingested, per second — the headline.

        Query throughput is naturally queries/s and ingest throughput
        rows/s; the combined number adds them so a deployment cannot win
        by starving one side of the workload.  Both components are also
        reported separately.
        """
        if self.wall_seconds <= 0:
            return 0.0
        return (self.queries + self.ingested_rows) / self.wall_seconds

    def payload(self) -> dict:
        """Machine-readable summary (throughput + latency percentiles)."""
        return {
            "mode": self.mode,
            "num_clients": self.num_clients,
            "queries": self.queries,
            "ingests": self.ingests,
            "ingested_rows": self.ingested_rows,
            "wall_seconds": self.wall_seconds,
            "queries_per_second": self.queries_per_second,
            "ingested_rows_per_second": self.ingested_rows_per_second,
            "combined_ops_per_second": self.combined_ops_per_second,
            "latency": latency_percentiles(self.query_latencies),
        }


def _drive_closed_loop(
    execute_query,
    do_ingest,
    sql_queries: list[str],
    ingest_batches: list[Table],
    num_clients: int,
    duration_seconds: float,
    ingest_interval_seconds: float,
    mode: str,
) -> ShardedThroughputMeasurement:
    """Shared traffic driver: N closed-loop query clients + one paced writer.

    ``execute_query`` / ``do_ingest`` abstract the deployment (wire client
    per thread for the single server, scatter-gather front end for the
    cluster), so both sides see the identical offered load.
    """
    stop = threading.Event()
    completed = [0] * num_clients
    latencies: list[list[float]] = [[] for _ in range(num_clients)]
    ingests = [0]
    ingested_rows = [0]
    failures: list[BaseException] = []
    deadline = [0.0]

    def writer() -> None:
        index = 0
        if not ingest_batches:
            return  # read-only window (e.g. the replica read-scaling bench)
        try:
            while not stop.is_set():
                began = time.perf_counter()
                batch = ingest_batches[index % len(ingest_batches)]
                do_ingest(batch)
                ingests[0] += 1
                ingested_rows[0] += batch.num_rows
                index += 1
                remaining = ingest_interval_seconds - (time.perf_counter() - began)
                if remaining > 0:
                    stop.wait(remaining)
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    def client(worker: int) -> None:
        step = 0
        try:
            while time.perf_counter() < deadline[0]:
                sql = sql_queries[(worker + step * num_clients) % len(sql_queries)]
                began = time.perf_counter()
                execute_query(worker, sql)
                latencies[worker].append(time.perf_counter() - began)
                completed[worker] += 1
                step += 1
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    threads = [
        threading.Thread(target=client, args=(w,), daemon=True)
        for w in range(num_clients)
    ]
    ingester = threading.Thread(target=writer, daemon=True)
    start = time.perf_counter()
    deadline[0] = start + duration_seconds
    ingester.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - start
    stop.set()
    ingester.join()
    if failures:
        raise failures[0]
    return ShardedThroughputMeasurement(
        mode=mode,
        num_clients=num_clients,
        queries=sum(completed),
        ingests=ingests[0],
        ingested_rows=ingested_rows[0],
        wall_seconds=wall_seconds,
        query_latencies=[sample for worker in latencies for sample in worker],
    )


def run_sharded_benchmark(
    table: Table,
    sql_queries: list[str],
    ingest_batches: list[Table],
    data_dir,
    num_shards: int = 2,
    params: PairwiseHistParams | None = None,
    partition_size: int = 2_000,
    num_clients: int = 4,
    duration_seconds: float = 8.0,
    ingest_interval_seconds: float = 0.25,
    result_cache_size: int | None = None,
) -> list[ShardedThroughputMeasurement]:
    """Single-process server vs an ``num_shards``-worker subprocess cluster.

    Both deployments are durable (data directories under ``data_dir``),
    serve the same registered table and sustain the same offered load: N
    closed-loop dashboard clients plus a paced background ingest stream.
    The single server is driven over its JSON-lines TCP protocol (one
    connection per client); the cluster through the scatter-gather front
    end over the same protocol to each worker — so every operation pays
    its deployment's real wire cost.

    ``result_cache_size`` applies to every worker on both deployments
    (``None`` keeps the server default; ``0`` disables the result cache
    so the measurement stays a measure of synopsis evaluation rather than
    cache-hit serving).
    """
    from pathlib import Path

    from ..cluster.service import ClusterQueryService
    from ..cluster.supervisor import ShardSupervisor
    from ..service.wire import ClusterClient

    data_dir = Path(data_dir)
    params = params or PairwiseHistParams.with_defaults(sample_size=None)
    measurements: list[ShardedThroughputMeasurement] = []

    # ---- single-process baseline ---------------------------------------- #
    supervisor = ShardSupervisor(
        data_dirs=[data_dir / "single"],
        partition_size=partition_size,
        checkpoint_interval=3600.0,
        workers_per_shard=num_clients,
        result_cache_size=result_cache_size,
    )
    try:
        handle = supervisor.spawn(0)
        with ClusterClient(supervisor.host, handle.port) as admin:
            admin.register(table, params=params, partition_size=partition_size)
        clients = [
            ClusterClient(supervisor.host, handle.port).connect()
            for _ in range(num_clients)
        ]
        writer_client = ClusterClient(supervisor.host, handle.port).connect()
        try:
            measurements.append(
                _drive_closed_loop(
                    execute_query=lambda w, sql: clients[w].query(sql),
                    do_ingest=lambda batch: writer_client.ingest(table.name, batch),
                    sql_queries=sql_queries,
                    ingest_batches=ingest_batches,
                    num_clients=num_clients,
                    duration_seconds=duration_seconds,
                    ingest_interval_seconds=ingest_interval_seconds,
                    mode="single-process",
                )
            )
        finally:
            for client in clients:
                client.close()
            writer_client.close()
    finally:
        supervisor.stop(graceful=True)

    # ---- sharded cluster ------------------------------------------------- #
    cluster = ClusterQueryService(
        num_shards=num_shards,
        path=data_dir / "cluster",
        mode="process",
        partition_size=partition_size,
        worker_options={
            "checkpoint_interval": 3600.0,
            "workers_per_shard": num_clients,
            "result_cache_size": result_cache_size,
        },
    )
    try:
        cluster.register_table(table, params=params)
        measurements.append(
            _drive_closed_loop(
                execute_query=lambda w, sql: cluster.execute(sql),
                do_ingest=lambda batch: cluster.ingest(table.name, batch),
                sql_queries=sql_queries,
                ingest_batches=ingest_batches,
                num_clients=num_clients,
                duration_seconds=duration_seconds,
                ingest_interval_seconds=ingest_interval_seconds,
                mode=f"{num_shards}-shard-cluster",
            )
        )
    finally:
        cluster.close()
    return measurements


def wait_for_replica_catchup(cluster, timeout_seconds: float = 60.0) -> None:
    """Block until every replica's applied LSN matches its primary's durable
    LSN (quiescent cluster), then force a routing-eligibility refresh."""
    from ..cluster.shard import ReplicatedShard

    deadline = time.perf_counter() + timeout_seconds
    for shard in cluster.shards:
        if not isinstance(shard, ReplicatedShard):
            continue
        while True:
            durable = int(shard.primary.status().get("durable_lsn", 0))
            applied = [
                int(shard.replicas[slot].status().get("applied_lsn", -1))
                for slot in shard.replica_slots()
            ]
            if all(lsn >= durable for lsn in applied):
                break
            if time.perf_counter() > deadline:
                raise TimeoutError(
                    f"replicas of shard {shard.index} never caught up to "
                    f"lsn {durable} within {timeout_seconds:.0f}s "
                    f"(applied: {applied})"
                )
            time.sleep(0.05)
        shard._refresh_eligible()
        shard._next_refresh = time.monotonic() + shard.refresh_interval


def run_replication_benchmark(
    table: Table,
    sql_queries: list[str],
    data_dir,
    replica_counts: tuple[int, ...] = (0, 2),
    params: PairwiseHistParams | None = None,
    partition_size: int = 2_000,
    num_clients: int = 4,
    duration_seconds: float = 8.0,
    catchup_timeout: float = 120.0,
) -> list[ShardedThroughputMeasurement]:
    """Read-only throughput of one shard with varying replica counts.

    Each configuration boots a 1-shard process cluster (primary plus
    ``n`` WAL-shipping read replicas on the same host), registers the
    same table, waits for every replica to catch up, then drives N
    closed-loop query clients with **no** ingest stream — isolating the
    read-scaling effect of routing scatters across the replica set.

    The result cache is disabled on every worker so the measurement
    scales with synopsis evaluation (the paper's workload) rather than
    cache-hit serving, and checkpoints are pushed out of the window.
    """
    from pathlib import Path

    from ..cluster.service import ClusterQueryService

    data_dir = Path(data_dir)
    params = params or PairwiseHistParams.with_defaults(sample_size=None)
    measurements: list[ShardedThroughputMeasurement] = []
    for count in replica_counts:
        cluster = ClusterQueryService(
            num_shards=1,
            path=data_dir / f"replicas-{count}",
            mode="process",
            partition_size=partition_size,
            replicas=count,
            worker_options={
                "checkpoint_interval": 3600.0,
                "workers_per_shard": num_clients,
                "result_cache_size": 0,
            },
        )
        try:
            cluster.register_table(table, params=params)
            wait_for_replica_catchup(cluster, timeout_seconds=catchup_timeout)
            measurements.append(
                _drive_closed_loop(
                    execute_query=lambda w, sql: cluster.execute(sql),
                    do_ingest=lambda batch: None,
                    sql_queries=sql_queries,
                    ingest_batches=[],
                    num_clients=num_clients,
                    duration_seconds=duration_seconds,
                    ingest_interval_seconds=3600.0,
                    mode=f"1-primary-{count}-replica",
                )
            )
        finally:
            cluster.close()
    return measurements


def format_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Fixed-width table formatting for benchmark output."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def fmt(value: float, digits: int = 2) -> str:
    """Format a float for table cells, handling NaN / inf gracefully."""
    if value is None or not np.isfinite(value):
        return "-"
    return f"{value:.{digits}f}"
