"""Shared infrastructure for the per-table / per-figure experiments.

The paper's evaluation runs on datasets of up to 10^9 rows with synopsis
samples of 10^4–10^6 rows.  Every experiment here is parameterised by an
:class:`ExperimentScale` so the same code can regenerate the paper's tables
and figures at laptop scale (the default) or at a larger scale when more
time is available.  Relative comparisons — who wins, by roughly what factor
— are preserved; absolute numbers shrink with the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.adapter import PairwiseHistSystem
from ..baselines.base import AqpSystem
from ..baselines.dbest import DBEstPlusPlusLike
from ..baselines.deepdb import DeepDBLike
from ..baselines.sampling_aqp import SamplingAQP
from ..data.datasets import load_dataset
from ..data.idebench import scale_dataset
from ..data.table import Table
from ..service.system import QueryServiceSystem
from ..sql.ast import Query, predicate_conditions
from ..workload.generator import QueryGenerator, WorkloadSpec
from ..workload.metrics import WorkloadSummary
from ..workload.runner import WorkloadRunner


@dataclass(frozen=True)
class ExperimentScale:
    """Row counts / sample sizes / workload sizes for one experiment run."""

    #: Rows generated per original dataset.
    dataset_rows: int = 20_000
    #: Rows of the IDEBench-scaled datasets ("1 billion" in the paper).
    scaled_rows: int = 60_000
    #: The paper's "1 million" synopsis sample.
    sample_large: int = 10_000
    #: The paper's "100k" synopsis sample.
    sample_small: int = 3_000
    #: The paper's "10k" synopsis sample (used by DBEst++ and Fig. 8).
    sample_tiny: int = 1_000
    #: Queries per workload.
    queries: int = 40
    #: RNG seed shared by dataset generation and workloads.
    seed: int = 7

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """Tiny scale used by the unit/integration tests."""
        return cls(
            dataset_rows=6_000,
            scaled_rows=10_000,
            sample_large=3_000,
            sample_small=1_500,
            sample_tiny=600,
            queries=15,
            seed=7,
        )

    @classmethod
    def default(cls) -> "ExperimentScale":
        """Laptop-scale default used by the benchmark suite."""
        return cls()

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """A larger configuration for overnight runs (still far below 10^9 rows)."""
        return cls(
            dataset_rows=200_000,
            scaled_rows=1_000_000,
            sample_large=100_000,
            sample_small=30_000,
            sample_tiny=10_000,
            queries=200,
            seed=7,
        )


@dataclass
class SystemSuite:
    """The set of AQP systems compared in one experiment."""

    systems: list[AqpSystem] = field(default_factory=list)

    def __iter__(self):
        return iter(self.systems)

    def by_name(self, name: str) -> AqpSystem:
        for system in self.systems:
            if system.name == name:
                return system
        raise KeyError(f"no system named {name!r}")

    @property
    def names(self) -> list[str]:
        return [s.name for s in self.systems]


def workload_templates(queries: list[Query]) -> list[tuple[str, str]]:
    """The (aggregation column, predicate column) templates a workload touches.

    DBEst++ needs one model per template; this mirrors the paper's procedure
    of training every model required to support the evaluated queries.
    """
    templates: list[tuple[str, str]] = []
    for query in queries:
        agg_column = query.aggregation.column
        if agg_column is None:
            continue
        for condition in predicate_conditions(query.predicate):
            pair = (agg_column, condition.column)
            if pair not in templates and pair[0] != pair[1]:
                templates.append(pair)
    return templates


def build_suite(
    table: Table,
    scale: ExperimentScale,
    queries: list[Query] | None = None,
    include_sampling: bool = False,
    include_partitioned: bool = False,
    pairwisehist_sample: int | None = None,
    deepdb_sample: int | None = None,
    dbest_sample: int | None = None,
    partition_size: int | None = None,
) -> SystemSuite:
    """Build the PairwiseHist / DeepDB / DBEst++ (/ Sampling) suite for one table.

    ``include_partitioned=True`` adds the service-backed partitioned engine
    (parallel per-partition synopses merged into one), the configuration the
    streaming / multi-table benchmarks compare against the monolith.
    """
    ph_sample = pairwisehist_sample or scale.sample_large
    dd_sample = deepdb_sample or scale.sample_large
    db_sample = dbest_sample or scale.sample_tiny
    templates = workload_templates(queries) if queries else None
    systems: list[AqpSystem] = [
        PairwiseHistSystem.fit(table, sample_size=ph_sample),
        DeepDBLike.fit(table, sample_size=dd_sample),
        DBEstPlusPlusLike.fit(table, sample_size=db_sample, templates=templates),
    ]
    if include_partitioned:
        systems.append(
            QueryServiceSystem.fit(
                table, sample_size=ph_sample, partition_size=partition_size
            )
        )
    if include_sampling:
        systems.append(SamplingAQP.fit(table, sample_size=ph_sample))
    return SystemSuite(systems)


def generate_workload(
    table: Table, scale: ExperimentScale, spec: WorkloadSpec | None = None
) -> list[Query]:
    """Generate a workload for a table using the experiment scale's defaults."""
    if spec is None:
        spec = WorkloadSpec.initial_experiments(num_queries=scale.queries, seed=scale.seed)
    generator = QueryGenerator(table, spec)
    return generator.generate()


def load_scaled_dataset(name: str, scale: ExperimentScale) -> Table:
    """The paper's IDEBench scale-up: fit the original and sample more rows."""
    original = load_dataset(name, rows=scale.dataset_rows, seed=scale.seed)
    return scale_dataset(original, rows=scale.scaled_rows, seed=scale.seed, name=f"{name}_scaled")


def run_suite(
    table: Table, suite: SystemSuite, queries: list[Query]
) -> dict[str, WorkloadSummary]:
    """Run the workload against every system in the suite."""
    runner = WorkloadRunner(table)
    return runner.run_many(list(suite), queries)


def format_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Fixed-width table formatting for benchmark output."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def fmt(value: float, digits: int = 2) -> str:
    """Format a float for table cells, handling NaN / inf gracefully."""
    if value is None or not np.isfinite(value):
        return "-"
    return f"{value:.{digits}f}"
