"""Exact query execution over a :class:`~repro.data.table.Table`.

The paper uses SQLite to compute ground-truth results (§6.5).  This module
plays that role offline: it evaluates the same :class:`~repro.sql.ast.Query`
objects exactly, with standard SQL NULL handling (aggregates ignore missing
values, predicates never match them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.table import Table
from ..sql.ast import AggregateFunction, Aggregation, Query
from ..sql.predicate import predicate_mask


@dataclass(frozen=True)
class ExactResult:
    """Result of one aggregation evaluated exactly."""

    value: float
    rows_matched: int

    @property
    def is_empty(self) -> bool:
        """Whether the predicate matched no rows (value is NaN for most functions)."""
        return self.rows_matched == 0


class ExactQueryEngine:
    """Evaluates queries exactly over in-memory tables (the ground truth)."""

    def __init__(self, tables: dict[str, Table] | Table) -> None:
        if isinstance(tables, Table):
            tables = {tables.name: tables}
        self._tables = dict(tables)

    def register(self, table: Table) -> None:
        """Add (or replace) a table."""
        self._tables[table.name] = table

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------ #

    def execute(self, query: Query) -> dict[str, list[ExactResult]] | list[ExactResult]:
        """Execute a query exactly.

        Returns a list of :class:`ExactResult` (one per SELECT aggregation)
        or, for GROUP BY queries, a dict mapping group label to such a list.
        """
        table = self._lookup(query.table)
        mask = predicate_mask(query.predicate, table.columns)
        if query.group_by is None:
            return [self._aggregate(table, agg, mask) for agg in query.aggregations]
        group_col = table.column(query.group_by)
        results: dict[str, list[ExactResult]] = {}
        labels = sorted({v for v in group_col if v is not None}, key=str)
        for label in labels:
            group_mask = mask & np.array([v == label for v in group_col], dtype=bool)
            results[str(label)] = [self._aggregate(table, agg, group_mask) for agg in query.aggregations]
        return results

    def execute_scalar(self, query: Query) -> float:
        """Execute a non-GROUP BY query and return the first aggregation value."""
        result = self.execute(query)
        if isinstance(result, dict):
            raise ValueError("execute_scalar does not support GROUP BY queries")
        return result[0].value

    # ------------------------------------------------------------------ #

    def _lookup(self, name: str) -> Table:
        if name in self._tables:
            return self._tables[name]
        # Convenience: an engine serving a single table answers queries that
        # name it differently (e.g. a scaled/synthetic copy of the original).
        if len(self._tables) == 1:
            return next(iter(self._tables.values()))
        raise KeyError(f"unknown table {name!r}; registered: {self.table_names}")

    @staticmethod
    def _aggregate(table: Table, aggregation: Aggregation, mask: np.ndarray) -> ExactResult:
        func = aggregation.func
        if func is AggregateFunction.COUNT and aggregation.column is None:
            return ExactResult(value=float(mask.sum()), rows_matched=int(mask.sum()))
        column = table.column(aggregation.column)
        if column.dtype == object:
            valid = mask & np.array([v is not None for v in column], dtype=bool)
            matched = int(valid.sum())
            if func is AggregateFunction.COUNT:
                return ExactResult(value=float(matched), rows_matched=matched)
            raise ValueError(f"{func.value} is not defined for categorical column {aggregation.column!r}")
        valid = mask & np.isfinite(column)
        values = column[valid]
        matched = int(valid.sum())
        if func is AggregateFunction.COUNT:
            return ExactResult(value=float(matched), rows_matched=matched)
        if matched == 0:
            return ExactResult(value=float("nan"), rows_matched=0)
        if func is AggregateFunction.SUM:
            value = float(values.sum())
        elif func is AggregateFunction.AVG:
            value = float(values.mean())
        elif func is AggregateFunction.MIN:
            value = float(values.min())
        elif func is AggregateFunction.MAX:
            value = float(values.max())
        elif func is AggregateFunction.MEDIAN:
            value = float(np.median(values))
        elif func is AggregateFunction.VAR:
            value = float(values.var())
        else:  # pragma: no cover - exhaustive over the enum
            raise ValueError(f"unsupported aggregation {func}")
        return ExactResult(value=value, rows_matched=matched)
