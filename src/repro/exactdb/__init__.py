"""Exact (ground-truth) query execution."""

from .executor import ExactQueryEngine, ExactResult

__all__ = ["ExactQueryEngine", "ExactResult"]
