"""Answer-quality observability: EXPLAIN plans, accuracy auditing, and
the workload analytics log.

Three pieces, wired through the service / wire / cluster layers:

* :mod:`repro.audit.explain` — structured ``EXPLAIN`` /
  ``EXPLAIN ANALYZE`` plans (also reachable as a SQL prefix in both wire
  dialects) showing cache state, routing, synopsis consultation, bound
  derivation and the scatter-gather recombination plan;
* :mod:`repro.audit.auditor` — :class:`AccuracyAuditor`, the background
  daemon that recomputes a sample of served queries exactly against the
  GD store's lossless rows and alerts on bound violations;
* :mod:`repro.audit.workload` — :class:`WorkloadLog`, the bounded ring
  of normalized query templates the ``workload`` op exposes and the
  auditor replays from.
"""

from .auditor import AccuracyAuditor, AuditRecord
from .explain import build_explain, gather_section, split_explain
from .workload import WorkloadLog, normalize_query, normalize_sql

__all__ = [
    "AccuracyAuditor",
    "AuditRecord",
    "WorkloadLog",
    "build_explain",
    "gather_section",
    "normalize_query",
    "normalize_sql",
    "split_explain",
]
