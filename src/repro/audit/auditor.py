"""Background accuracy auditor: live ground truth for approximate answers.

The whole system sells approximate answers with error bounds; nothing in
PR 9's observability says whether those bounds actually *hold* on the
live workload.  :class:`AccuracyAuditor` closes the loop:

* the query hot path hands it a deterministic 1-in-N sample of served
  SQL (``sample_rate``; stride sampling, no RNG on the hot path),
* each audit interval it also replays a stratified round-robin sample
  from the :class:`~repro.audit.workload.WorkloadLog`, so low-frequency
  templates get audited even when live sampling misses them,
* off the hot path (a daemon thread) it recomputes each sampled query
  **exactly** against the GD store's lossless rows — reconstruction via
  :meth:`~repro.gd.partitioned.PartitionedStore.reconstruct_rows` into
  an :class:`~repro.exactdb.executor.ExactQueryEngine`, cached per
  ``(table, synopsis_version)`` so one reconstruction serves many audits,
* the observed relative error and bound-violation outcomes land in the
  PR 9 metrics registry (counters + error histogram, per table), in the
  workload log's per-template rollups, and — on violation — as a
  structured JSON ``bound_violation`` alert event.

Deployments with read replicas run the auditor on the replica process
(``repro-server --replica --audit-sample …``): replication applies the
same committed batches, so the replica's reconstructed rows are the
primary's rows and the exact recomputation never taxes the primary.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from ..exactdb.executor import ExactQueryEngine
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..sql.ast import UnsupportedQueryError
from ..sql.parser import ParseError, parse_query_cached
from .workload import WorkloadLog

__all__ = ["AccuracyAuditor", "AuditRecord"]

#: Default fraction of live queries sampled for auditing.
DEFAULT_SAMPLE_RATE = 0.01
#: Default seconds between background audit passes.
DEFAULT_INTERVAL_SECONDS = 5.0
#: Workload-log templates replayed per pass (round-robin across passes).
DEFAULT_REPLAY_LIMIT = 8

_AUDITED = obs_metrics.counter(
    "aqp_audited_queries_total",
    "Queries recomputed exactly by the accuracy auditor, by table.",
    labelnames=("table",),
)
_VIOLATIONS = obs_metrics.counter(
    "aqp_audit_bound_violations_total",
    "Audited queries whose exact answer fell outside the reported bounds.",
    labelnames=("table",),
)
_SKIPPED = obs_metrics.counter(
    "aqp_audit_skipped_total",
    "Sampled queries the auditor could not ground-truth, by reason.",
    labelnames=("reason",),
)
_ERRORS = obs_metrics.histogram(
    "aqp_audit_relative_error",
    "Observed relative error of audited queries (paper's error metric).",
    labelnames=("table",),
    buckets=(0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0),
)


class AuditRecord:
    """One audited query: estimate vs exact truth."""

    __slots__ = ("sql", "table", "value", "lower", "upper", "truth", "error", "violated")

    def __init__(self, sql, table, value, lower, upper, truth, error, violated):
        self.sql = sql
        self.table = table
        self.value = value
        self.lower = lower
        self.upper = upper
        self.truth = truth
        self.error = error
        self.violated = violated

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class AccuracyAuditor:
    """Samples served queries and recomputes them exactly off the hot path."""

    def __init__(
        self,
        service,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
        workload: WorkloadLog | None = None,
        queue_size: int = 512,
        replay_limit: int = DEFAULT_REPLAY_LIMIT,
        keep_records: int = 256,
        alert_stream=None,
    ) -> None:
        self.service = service
        self.sample_rate = sample_rate
        self.interval_seconds = interval_seconds
        self.workload = workload
        self.replay_limit = replay_limit
        #: 1-in-stride deterministic sampling (no RNG on the hot path).
        self._stride = max(1, round(1.0 / sample_rate)) if sample_rate > 0 else 0
        self._seen = 0
        self._queue: deque[str] = deque(maxlen=queue_size)
        #: Recent audit outcomes, newest last (tests + the ``audit`` op).
        self.records: deque[AuditRecord] = deque(maxlen=keep_records)
        self._stats_lock = threading.Lock()
        self.audited = 0
        self.violations = 0
        self.skipped = 0
        self.truth_failures = 0
        self.error_sum = 0.0
        self.error_max = 0.0
        #: table → (synopsis_version, ExactQueryEngine over lossless rows).
        self._exact_cache: dict[str, tuple[int, ExactQueryEngine]] = {}
        self._local = threading.local()
        self._alert_log = (
            obs_log.JsonLogger("audit", stream=alert_stream)
            if alert_stream is not None
            else obs_log.get_logger("audit")
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Hot-path hooks

    @property
    def in_audit(self) -> bool:
        """True on the auditor's own thread while it re-executes a query —
        the service's hooks use this to keep audit traffic out of the
        workload log and out of the sample stream (no feedback loop)."""
        return getattr(self._local, "active", False)

    def consider(self, sql: str) -> None:
        """Maybe enqueue one served query for auditing (hot path).

        Deliberately lock-free: a racing increment can at worst skew the
        sample stride by one, which sampling tolerates — a lock here
        would tax every served query to protect a statistic.
        """
        stride = self._stride
        if not stride:
            return
        self._seen += 1
        if self._seen % stride == 0:
            self._queue.append(sql)

    # ------------------------------------------------------------------ #
    # Background daemon

    def start(self) -> "AccuracyAuditor":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-accuracy-auditor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.audit_now()
            except Exception:  # never let an audit pass kill the daemon
                with self._stats_lock:
                    self.truth_failures += 1

    def audit_now(self) -> int:
        """One audit pass: drain the live sample queue + stratified replay.

        Synchronous (tests drive it directly); returns the number of
        queries audited this pass.
        """
        batch: list[str] = []
        while True:
            try:
                batch.append(self._queue.popleft())
            except IndexError:
                break
        if self.workload is not None:
            batch.extend(self.workload.replay_samples(self.replay_limit))
        audited = 0
        for sql in batch:
            if self._audit_one(sql):
                audited += 1
        return audited

    # ------------------------------------------------------------------ #
    # One audit

    def _audit_one(self, sql: str) -> bool:
        self._local.active = True
        try:
            return self._audit_inner(sql)
        finally:
            self._local.active = False

    def _audit_inner(self, sql: str) -> bool:
        try:
            query = parse_query_cached(sql)
        except ParseError:
            self._skip("parse_error")
            return False
        if query.group_by is not None:
            # GROUP BY audits would need per-group truth alignment; the
            # scalar workload is where the bounds story lives today.
            self._skip("group_by")
            return False
        try:
            estimate = self.service.execute_scalar(sql)
        except (KeyError, ValueError, UnsupportedQueryError):
            self._skip("execute_failed")
            return False
        exact = self._exact_engine(query.table)
        if exact is None:
            with self._stats_lock:
                self.truth_failures += 1
            _SKIPPED.inc(reason="truth_failed")
            return False
        try:
            truth = exact.execute_scalar(query)
        except (KeyError, ValueError):
            with self._stats_lock:
                self.truth_failures += 1
            _SKIPPED.inc(reason="truth_failed")
            return False
        error = estimate.relative_error(truth)
        violated = not (estimate.lower <= truth <= estimate.upper)
        record = AuditRecord(
            sql=sql,
            table=query.table,
            value=estimate.value,
            lower=estimate.lower,
            upper=estimate.upper,
            truth=truth,
            error=error,
            violated=violated,
        )
        self.records.append(record)
        with self._stats_lock:
            self.audited += 1
            if violated:
                self.violations += 1
            if error == error and error != float("inf"):  # finite only
                self.error_sum += error
                if error > self.error_max:
                    self.error_max = error
        _AUDITED.inc(table=query.table)
        _ERRORS.observe(min(error, 1e9), table=query.table)
        # Materialise the per-table violations series at zero on first
        # audit: Prometheus ``rate()`` cannot see a 0 -> 1 transition on
        # a counter whose series is born at 1.
        violations = _VIOLATIONS.labels(table=query.table)
        if violated:
            violations.inc()
            self._alert_log.warning("bound_violation", **record.to_dict())
        if self.workload is not None:
            self.workload.record_audit(sql, error, violated)
        return True

    def _skip(self, reason: str) -> None:
        with self._stats_lock:
            self.skipped += 1
        _SKIPPED.inc(reason=reason)

    # ------------------------------------------------------------------ #
    # Exact ground truth

    def _exact_engine(self, table_name: str) -> ExactQueryEngine | None:
        """Exact engine over the table's lossless rows, version-cached.

        Reconstructs from the *committed* partition list (what queries
        actually see), re-checking the synopsis version around the
        reconstruction so a concurrent ingest commit retries once instead
        of pairing new rows with an old estimate.
        """
        for _ in range(2):
            try:
                managed = self.service.table(table_name)
            except KeyError:
                return None
            version = managed.synopsis_version
            cached = self._exact_cache.get(table_name)
            if cached is not None and cached[0] == version:
                return cached[1]
            try:
                rows = self._reconstruct(managed)
            except Exception:
                return None
            if managed.synopsis_version != version:
                continue  # ingest committed mid-reconstruction; retry
            engine = ExactQueryEngine(rows)
            self._exact_cache[table_name] = (version, engine)
            return engine
        return None

    @staticmethod
    def _reconstruct(managed):
        from ..data.table import Table

        partitions = managed.committed_partitions
        if partitions is None:
            return managed.store.reconstruct_rows()
        tables = [p.reconstruct_rows() for p in partitions]
        out = tables[0]
        for extra in tables[1:]:
            out = out.concat(extra)
        if out.name != managed.name:
            out = Table(name=managed.name, schema=out.schema, columns=out.columns)
        return out

    # ------------------------------------------------------------------ #
    # Introspection

    def stats(self) -> dict:
        """Plain-dict state for the ``audit`` wire op."""
        with self._stats_lock:
            audited = self.audited
            stats = {
                "sample_rate": self.sample_rate,
                "interval_seconds": self.interval_seconds,
                "audited": audited,
                "violations": self.violations,
                "skipped": self.skipped,
                "truth_failures": self.truth_failures,
                "queue_depth": len(self._queue),
                "error_max": self.error_max,
                "error_mean": self.error_sum / audited if audited else 0.0,
            }
        stats["recent_violations"] = [
            record.to_dict() for record in list(self.records) if record.violated
        ][-8:]
        return stats

    @staticmethod
    def merge_stats(stats_list: list[dict]) -> dict:
        """Merge per-shard ``stats()`` dicts into one cluster view."""
        merged = {
            "audited": 0,
            "violations": 0,
            "skipped": 0,
            "truth_failures": 0,
            "queue_depth": 0,
            "error_max": 0.0,
            "error_mean": 0.0,
            "recent_violations": [],
            "shards": len(stats_list),
            "enabled": any(stats.get("enabled", False) for stats in stats_list),
        }
        weighted_error = 0.0
        for stats in stats_list:
            merged["audited"] += stats.get("audited", 0)
            merged["violations"] += stats.get("violations", 0)
            merged["skipped"] += stats.get("skipped", 0)
            merged["truth_failures"] += stats.get("truth_failures", 0)
            merged["queue_depth"] += stats.get("queue_depth", 0)
            merged["error_max"] = max(merged["error_max"], stats.get("error_max", 0.0))
            weighted_error += stats.get("error_mean", 0.0) * stats.get("audited", 0)
            merged["recent_violations"].extend(stats.get("recent_violations", []))
        if merged["audited"]:
            merged["error_mean"] = weighted_error / merged["audited"]
        merged["recent_violations"] = merged["recent_violations"][-8:]
        return merged
