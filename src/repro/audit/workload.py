"""Workload analytics log: normalized query templates with rollups.

Following the query-log-compression observation of Xie et al. ("Query Log
Compression for Workload Analytics"), the service does not retain raw SQL
text per request — dashboards re-send the same handful of shapes with
different literals, so the log keys on the query *template*: the parsed
AST rendered back to SQL with every predicate literal replaced by ``?``.

:class:`WorkloadLog` is a bounded LRU ring of such templates.  Each entry
carries the observed frequency, the most recent concrete SQL text (the
auditor replays it for stratified ground-truth sampling), a latency
rollup, and the accuracy rollup the auditor feeds back.  Snapshots are
plain dicts so the ``workload`` wire op can ship and merge them across a
cluster's shards.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..sql.ast import Condition, Predicate, PredicateNode, Query
from ..sql.parser import ParseError, parse_query_cached

__all__ = ["WorkloadLog", "normalize_query", "normalize_sql"]

#: Default bound on distinct templates kept (entries, not bytes).
DEFAULT_WORKLOAD_CAPACITY = 256


def _render_predicate(predicate: Predicate) -> str:
    """Render a predicate with every literal replaced by ``?``."""
    if isinstance(predicate, Condition):
        return f"{predicate.column} {predicate.op.value} ?"
    sep = f" {predicate.op.value} "
    parts = []
    for child in predicate.children:
        text = _render_predicate(child)
        if isinstance(child, PredicateNode):
            text = f"({text})"
        parts.append(text)
    return sep.join(parts)


def normalize_query(query: Query) -> str:
    """The template of a parsed query: its SQL with literals as ``?``."""
    select = ", ".join(str(a) for a in query.aggregations)
    sql = f"SELECT {select} FROM {query.table}"
    if query.predicate is not None:
        sql += f" WHERE {_render_predicate(query.predicate)}"
    if query.group_by:
        sql += f" GROUP BY {query.group_by}"
    return sql + ";"


def normalize_sql(sql: str) -> str:
    """Parse and normalize a SQL string (raises :class:`ParseError`)."""
    return normalize_query(parse_query_cached(sql))


class _TemplateEntry:
    """Rollups for one normalized template."""

    __slots__ = (
        "template",
        "count",
        "last_sql",
        "latency_total",
        "latency_max",
        "audited",
        "violations",
        "error_sum",
        "error_max",
    )

    def __init__(self, template: str) -> None:
        self.template = template
        self.count = 0
        self.last_sql = ""
        self.latency_total = 0.0
        self.latency_max = 0.0
        self.audited = 0
        self.violations = 0
        self.error_sum = 0.0
        self.error_max = 0.0

    def to_dict(self) -> dict:
        return {
            "template": self.template,
            "count": self.count,
            "last_sql": self.last_sql,
            "latency": {
                "count": self.count,
                "total_seconds": self.latency_total,
                "max_seconds": self.latency_max,
            },
            "audit": {
                "audited": self.audited,
                "violations": self.violations,
                "error_sum": self.error_sum,
                "error_max": self.error_max,
            },
        }


class WorkloadLog:
    """Bounded ring of normalized query templates with rollups.

    Thread-safe; :meth:`observe` sits on the per-query hot path, so the
    SQL-text → template normalization is memoized (dashboards re-send
    byte-identical text) and each observation is one lock acquisition.
    """

    def __init__(self, capacity: int = DEFAULT_WORKLOAD_CAPACITY) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, _TemplateEntry] = OrderedDict()
        #: Raw SQL → template memo, bounded alongside the ring.
        self._memo: dict[str, str] = {}
        self._evicted = 0
        #: Round-robin cursor for the auditor's stratified replay.
        self._cursor = 0

    def _template_for(self, sql: str) -> str | None:
        template = self._memo.get(sql)
        if template is None:
            try:
                template = normalize_sql(sql)
            except ParseError:
                return None
            if len(self._memo) >= 4 * self.capacity:
                self._memo.clear()  # rare: unbounded distinct raw texts
            self._memo[sql] = template
        return template

    def observe(self, sql: str, seconds: float) -> None:
        """Record one served query (hot path)."""
        template = self._template_for(sql)
        if template is None:
            return
        with self._lock:
            entry = self._entries.get(template)
            if entry is None:
                entry = self._entries[template] = _TemplateEntry(template)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self._evicted += 1
            else:
                self._entries.move_to_end(template)
            entry.count += 1
            entry.last_sql = sql
            entry.latency_total += seconds
            if seconds > entry.latency_max:
                entry.latency_max = seconds

    def record_audit(self, sql: str, error: float, violated: bool) -> None:
        """Feed one audit outcome back into the owning template's rollup."""
        template = self._template_for(sql)
        if template is None:
            return
        with self._lock:
            entry = self._entries.get(template)
            if entry is None:
                return  # template aged out of the ring since the audit
            entry.audited += 1
            if violated:
                entry.violations += 1
            entry.error_sum += error
            if error > entry.error_max:
                entry.error_max = error

    def replay_samples(self, limit: int) -> list[str]:
        """Up to ``limit`` concrete SQL texts, one per template, rotating.

        Stratified replay: every audit interval covers *different*
        templates round-robin, so low-frequency shapes still get audited
        even when live sampling never picks them.
        """
        with self._lock:
            templates = list(self._entries.values())
            if not templates or limit <= 0:
                return []
            start = self._cursor % len(templates)
            picked = [
                templates[(start + i) % len(templates)]
                for i in range(min(limit, len(templates)))
            ]
            self._cursor = (start + len(picked)) % len(templates)
            return [entry.last_sql for entry in picked if entry.last_sql]

    def snapshot(self) -> dict:
        """Plain-dict view for the ``workload`` wire op, busiest first."""
        with self._lock:
            entries = sorted(
                self._entries.values(), key=lambda e: e.count, reverse=True
            )
            return {
                "capacity": self.capacity,
                "evicted": self._evicted,
                "templates": [entry.to_dict() for entry in entries],
            }

    @staticmethod
    def merge_snapshots(snapshots: list[dict]) -> dict:
        """Merge per-shard snapshots into one cluster-wide view."""
        merged: dict[str, dict] = {}
        capacity = 0
        evicted = 0
        for snapshot in snapshots:
            capacity = max(capacity, snapshot.get("capacity", 0))
            evicted += snapshot.get("evicted", 0)
            for entry in snapshot.get("templates", []):
                into = merged.get(entry["template"])
                if into is None:
                    merged[entry["template"]] = {
                        "template": entry["template"],
                        "count": entry["count"],
                        "last_sql": entry["last_sql"],
                        "latency": dict(entry["latency"]),
                        "audit": dict(entry["audit"]),
                    }
                    continue
                into["count"] += entry["count"]
                into["latency"]["count"] += entry["latency"]["count"]
                into["latency"]["total_seconds"] += entry["latency"]["total_seconds"]
                into["latency"]["max_seconds"] = max(
                    into["latency"]["max_seconds"], entry["latency"]["max_seconds"]
                )
                into["audit"]["audited"] += entry["audit"]["audited"]
                into["audit"]["violations"] += entry["audit"]["violations"]
                into["audit"]["error_sum"] += entry["audit"]["error_sum"]
                into["audit"]["error_max"] = max(
                    into["audit"]["error_max"], entry["audit"]["error_max"]
                )
        templates = sorted(merged.values(), key=lambda e: e["count"], reverse=True)
        return {"capacity": capacity, "evicted": evicted, "templates": templates}
