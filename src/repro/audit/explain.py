"""EXPLAIN / EXPLAIN ANALYZE: structured plans for AQP queries.

The plan a query *would* take is fully determined by pure inputs — the
parsed AST, the owning table's catalog entry, and the scatter-gather
planner — so EXPLAIN builds it without executing anything:

* parse-cache and result-cache state (non-perturbing peeks),
* the route (table, partitions, synopsis version, rows),
* per-aggregation synopsis consultation and bound derivation (which 1-d
  histogram carries the weightings, whether the single-column fast path
  applies, and how code-domain estimates map back to the data domain),
* the scatter-gather recombination plan — companion COUNT/AVG
  aggregations and predicate-range clamps — via :func:`gather_section`.

:func:`gather_section` is shared by the single-node and cluster EXPLAIN
paths **and** calls the same :func:`~repro.cluster.gather.plan_query`
the cluster's execute path scatters with, so a single-node EXPLAIN of a
query agrees with the cluster's actual fan-out plan by construction.

``EXPLAIN ANALYZE`` additionally executes the query under a fresh trace
id and attaches the resulting span tree (per-stage timings; across the
wire this includes shard-side spans) plus the encoded result.
"""

from __future__ import annotations

import math
import re
import time

from ..cluster.gather import _CLAMPABLE, plan_query, predicate_range
from ..obs import tracing as obs_tracing
from ..sql.ast import Query
from ..sql.parser import parse_cache_contains, parse_query_cached
from .workload import normalize_query

__all__ = ["build_explain", "gather_section", "split_explain"]

_EXPLAIN_RE = re.compile(r"^\s*EXPLAIN(\s+ANALYZE)?\s+(.+)$", re.IGNORECASE | re.DOTALL)


def split_explain(sql: str) -> tuple[bool, str] | None:
    """Detect the SQL-prefix form: ``(analyze, inner_sql)`` or ``None``."""
    match = _EXPLAIN_RE.match(sql)
    if match is None:
        return None
    return match.group(1) is not None, match.group(2).strip()


def _finite_or_none(value: float) -> float | None:
    return value if math.isfinite(value) else None


def gather_section(query: Query) -> dict:
    """How a cluster would scatter this query and recombine the answers.

    Built from the same :func:`plan_query` the front end executes with.
    """
    plan = plan_query(query)
    aggregations = []
    for position, aggregation in enumerate(plan.aggregations):
        entry = {
            "aggregation": str(aggregation),
            "position": position,
            "companion_count_index": plan.count_index[position],
            "companion_mean_index": plan.mean_index[position],
            "clamp": None,
        }
        if aggregation.func in _CLAMPABLE:
            lo, hi = predicate_range(query, aggregation.column)
            entry["clamp"] = {
                "lower": _finite_or_none(lo),
                "upper": _finite_or_none(hi),
            }
        aggregations.append(entry)
    return {
        "scattered_sql": str(plan.scattered),
        "scattered_aggregations": [str(a) for a in plan.scattered.aggregations],
        "aggregations": aggregations,
    }


def query_section(query: Query) -> dict:
    return {
        "table": query.table,
        "aggregations": [str(a) for a in query.aggregations],
        "predicate": None if query.predicate is None else str(query.predicate),
        "group_by": query.group_by,
        "template": normalize_query(query),
    }


def analyze_section(execute, trace_fn, sql: str) -> dict:
    """Execute under a fresh propagated trace and collect its span tree.

    ``execute`` runs the query; ``trace_fn(trace_id)`` returns the span
    dicts (for a cluster front end this is its fan-out ``trace`` merge,
    so shard-side spans appear too).
    """
    from ..service.server import encode_result  # late: server imports us

    trace_id = obs_tracing.new_trace_id()
    start = time.perf_counter()
    with obs_tracing.root_span(
        "explain_analyze", trace_id=trace_id, attrs={"sql": sql}
    ):
        result = execute(sql)
    wall = time.perf_counter() - start
    return {
        "trace_id": trace_id,
        "wall_seconds": wall,
        "result": encode_result(result),
        "spans": trace_fn(trace_id),
    }


def build_explain(service, sql: str, *, analyze: bool = False) -> dict:
    """Build the single-node plan for ``sql`` against a QueryService."""
    parse_cached = parse_cache_contains(sql)
    query = parse_query_cached(sql)
    managed = service.table(query.table)
    version = managed.synopsis_version
    with service._result_cache_lock:
        # Scalar and list executions cache under distinct keys; EXPLAIN
        # reports a hit if either shape of this SQL is cached.
        result_cached = any(
            (query.table, version, scalar, sql) in service._result_cache
            for scalar in (False, True)
        )
    engine = managed.engine
    plan = {
        "sql": sql,
        "node": "single",
        "query": query_section(query),
        "parse_cache": {"cached": parse_cached},
        "result_cache": {
            "cached": bool(service.result_cache_size > 0 and result_cached),
            "synopsis_version": version,
        },
        "route": {
            "table": query.table,
            "rows": managed.num_rows,
            "partitions": managed.num_partitions,
            "partition_synopses": len(managed.partition_synopses),
            "synopsis_version": version,
        },
        "synopsis": [
            engine.explain_aggregation(aggregation, query)
            for aggregation in query.aggregations
        ],
        "gather": gather_section(query),
    }
    if analyze:
        plan["analyze"] = analyze_section(
            service.execute,
            lambda trace_id: obs_tracing.spans_for(trace_id),
            sql,
        )
    return plan
