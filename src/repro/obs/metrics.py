"""Process-wide, thread-safe metrics registry.

Three metric kinds — :class:`Counter`, :class:`Gauge`, and fixed-bucket
:class:`Histogram` — each keyed by a metric name plus a tuple of named
labels.  A single module-level :data:`REGISTRY` is shared by every layer
in the process; per-worker processes therefore export per-worker
registries, which the cluster front end merges with ``shard``/``role``
labels (see ``ClusterQueryService.metrics``).

Snapshots are plain JSON-able dicts so they travel over both wire
dialects unchanged; :func:`merge_snapshot` folds one snapshot into
another while applying extra labels, and :mod:`repro.obs.exposition`
renders the merged result as Prometheus text.

``REPRO_OBS=off`` (or :func:`set_enabled` ``(False)``) turns every
record call into an early return; the registry structure itself stays
queryable so the ``metrics`` op keeps answering.
"""

from __future__ import annotations

import os
import platform as _platform
import threading
import time as _time
import weakref
from bisect import bisect_left
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "merge_snapshot",
    "obs_enabled",
    "set_enabled",
]

#: Default latency buckets (seconds): sub-millisecond through 10 s.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "").strip().lower() not in {"off", "0", "false"}


def _label_key(
    declared: tuple[str, ...], labels: dict[str, str]
) -> tuple[str, ...]:
    if set(labels) != set(declared):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared {sorted(declared)}"
        )
    return tuple(str(labels[name]) for name in declared)


class _Metric:
    """Base: one named metric with zero or more declared label names."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple[str, ...],
    ) -> None:
        self.registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], object] = {}

    def _series_state(self, labels: dict[str, str]):
        key = _label_key(self.labelnames, labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._new_state()
                self._series[key] = state
            return state

    def _new_state(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def snapshot_series(self) -> list[dict]:
        with self._lock:
            items = list(self._series.items())
        out = []
        for key, state in items:
            entry = {"labels": dict(zip(self.labelnames, key))}
            entry.update(self._state_dict(state))
            out.append(entry)
        return out

    def _state_dict(self, state) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError


class _ValueState:
    __slots__ = ("lock", "value")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.value = 0.0


class _BoundCounter:
    """A counter cell pre-resolved to one label set (hot-path fast path)."""

    __slots__ = ("_registry", "_state")

    def __init__(self, registry: "MetricsRegistry", state: _ValueState) -> None:
        self._registry = registry
        self._state = state

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        state = self._state
        with state.lock:
            state.value += amount


class _BoundGauge:
    """A gauge cell pre-resolved to one label set."""

    __slots__ = ("_registry", "_state")

    def __init__(self, registry: "MetricsRegistry", state: _ValueState) -> None:
        self._registry = registry
        self._state = state

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        state = self._state
        with state.lock:
            state.value = float(value)

    def add(self, amount: float) -> None:
        if not self._registry.enabled:
            return
        state = self._state
        with state.lock:
            state.value += amount


class _BoundHistogram:
    """A histogram cell pre-resolved to one label set."""

    __slots__ = ("_registry", "_state", "_buckets")

    def __init__(
        self,
        registry: "MetricsRegistry",
        state: "_HistogramState",
        buckets: tuple[float, ...],
    ) -> None:
        self._registry = registry
        self._state = state
        self._buckets = buckets

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        index = bisect_left(self._buckets, value)
        state = self._state
        with state.lock:
            state.counts[index] += 1
            state.sum += value
            state.count += 1


class Counter(_Metric):
    """Monotonically increasing value per label set."""

    kind = "counter"

    def _new_state(self) -> _ValueState:
        return _ValueState()

    def labels(self, **labels: str) -> _BoundCounter:
        """Pre-resolve one label set; the bound cell skips label handling.

        Materialises the series immediately, so pre-binding at startup
        also guarantees the series appears in every scrape from zero.
        """
        return _BoundCounter(self.registry, self._series_state(labels))

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not self.registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        state = self._series_state(labels)
        with state.lock:
            state.value += amount

    def value(self, **labels: str) -> float:
        state = self._series_state(labels)
        with state.lock:
            return state.value

    def _state_dict(self, state: _ValueState) -> dict:
        with state.lock:
            return {"value": state.value}


class Gauge(_Metric):
    """Last-written value per label set (set/add semantics)."""

    kind = "gauge"

    def _new_state(self) -> _ValueState:
        return _ValueState()

    def labels(self, **labels: str) -> _BoundGauge:
        """Pre-resolve one label set; see :meth:`Counter.labels`."""
        return _BoundGauge(self.registry, self._series_state(labels))

    def set(self, value: float, **labels: str) -> None:
        if not self.registry.enabled:
            return
        state = self._series_state(labels)
        with state.lock:
            state.value = float(value)

    def add(self, amount: float, **labels: str) -> None:
        if not self.registry.enabled:
            return
        state = self._series_state(labels)
        with state.lock:
            state.value += amount

    def value(self, **labels: str) -> float:
        state = self._series_state(labels)
        with state.lock:
            return state.value

    def _state_dict(self, state: _ValueState) -> dict:
        with state.lock:
            return {"value": state.value}


class _HistogramState:
    __slots__ = ("lock", "counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.lock = threading.Lock()
        self.counts = [0] * (n_buckets + 1)  # last slot = +Inf overflow
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket histogram; buckets are upper bounds (seconds, widths…)."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(registry, name, help, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def _new_state(self) -> _HistogramState:
        return _HistogramState(len(self.buckets))

    def labels(self, **labels: str) -> _BoundHistogram:
        """Pre-resolve one label set; see :meth:`Counter.labels`."""
        return _BoundHistogram(
            self.registry, self._series_state(labels), self.buckets
        )

    def observe(self, value: float, **labels: str) -> None:
        if not self.registry.enabled:
            return
        state = self._series_state(labels)
        index = bisect_left(self.buckets, value)
        with state.lock:
            state.counts[index] += 1
            state.sum += value
            state.count += 1

    def _state_dict(self, state: _HistogramState) -> dict:
        with state.lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(state.counts),
                "sum": state.sum,
                "count": state.count,
            }


class MetricsRegistry:
    """Thread-safe collection of named metrics with a JSON-able snapshot."""

    def __init__(self, enabled: bool | None = None) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[weakref.ref] = []
        self.enabled = _env_enabled() if enabled is None else enabled

    def _register(self, name: str, factory: Callable[[], _Metric]) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        metric = self._register(
            name, lambda: Counter(self, name, help, tuple(labelnames))
        )
        if not isinstance(metric, Counter):
            raise TypeError(f"{name} already registered as {metric.kind}")
        return metric

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        metric = self._register(
            name, lambda: Gauge(self, name, help, tuple(labelnames))
        )
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name} already registered as {metric.kind}")
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        metric = self._register(
            name, lambda: Histogram(self, name, help, tuple(labelnames), buckets)
        )
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name} already registered as {metric.kind}")
        return metric

    def add_collector(self, method) -> None:
        """Register a bound method called (via weakref) before each snapshot.

        Collectors refresh read-time gauges — e.g. replication ack lag,
        which must be recomputed from current WAL state rather than only
        updated when an ack happens to arrive.
        """
        with self._lock:
            self._collectors.append(weakref.WeakMethod(method))

    def _run_collectors(self) -> None:
        with self._lock:
            refs = list(self._collectors)
        live = []
        for ref in refs:
            fn = ref()
            if fn is None:
                continue
            live.append(ref)
            try:
                fn()
            except Exception:
                pass  # a dying component must not poison the snapshot
        with self._lock:
            self._collectors = live

    def snapshot(self) -> dict:
        """JSON-able view: {name: {type, help, series: [...]}}."""
        self._run_collectors()
        with self._lock:
            metrics = list(self._metrics.values())
        out: dict[str, dict] = {}
        for metric in sorted(metrics, key=lambda m: m.name):
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "series": metric.snapshot_series(),
            }
        return out


def merge_snapshot(
    target: dict, snapshot: dict, extra_labels: dict[str, str] | None = None
) -> dict:
    """Fold ``snapshot`` into ``target``, adding ``extra_labels`` to each series.

    Series whose final label sets collide are summed (counters/histogram
    cells) or last-write-wins (gauges), which makes merging a no-op-safe
    union across worker registries.
    """
    extra = {k: str(v) for k, v in (extra_labels or {}).items()}
    for name, data in snapshot.items():
        entry = target.setdefault(
            name, {"type": data["type"], "help": data.get("help", ""), "series": []}
        )
        for series in data.get("series", []):
            labels = {**series.get("labels", {}), **extra}
            match = next(
                (s for s in entry["series"] if s["labels"] == labels), None
            )
            if match is None:
                merged = {k: v for k, v in series.items() if k != "labels"}
                entry["series"].append({"labels": labels, **merged})
                continue
            if data["type"] == "gauge":
                match["value"] = series["value"]
            elif data["type"] == "counter":
                match["value"] = match.get("value", 0.0) + series["value"]
            else:  # histogram
                if match.get("buckets") == series.get("buckets"):
                    match["counts"] = [
                        a + b for a, b in zip(match["counts"], series["counts"])
                    ]
                    match["sum"] = match.get("sum", 0.0) + series["sum"]
                    match["count"] = match.get("count", 0) + series["count"]
    return target


#: The process-wide default registry every layer records into.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
    return REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
    return REGISTRY.gauge(name, help, labelnames)


def histogram(
    name: str,
    help: str = "",
    labelnames: Iterable[str] = (),
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
) -> Histogram:
    return REGISTRY.histogram(name, help, labelnames, buckets)


def obs_enabled() -> bool:
    return REGISTRY.enabled


def set_enabled(enabled: bool) -> None:
    """Toggle metric recording and span creation process-wide (tests, bench)."""
    REGISTRY.enabled = bool(enabled)


# --------------------------------------------------------------------------- #
# Build / process identity

_BUILD_INFO = REGISTRY.gauge(
    "repro_build_info",
    "Constant 1; the labels carry the build identity.",
    labelnames=("version", "python"),
)
_PROCESS_START = REGISTRY.gauge(
    "repro_process_start_time_seconds",
    "Unix time this process started recording metrics.",
)
_START_TIME = _time.time()


def _package_version() -> str:
    import sys

    module = sys.modules.get("repro")
    version = getattr(module, "__version__", None) if module is not None else None
    return version or "unknown"


class _BuildInfoCollector:
    """Stamps the identity gauges at snapshot time.

    Lazy on purpose: the package version lives in ``repro.__init__``,
    which is still importing when this module loads.
    """

    def collect(self) -> None:
        _BUILD_INFO.set(
            1.0, version=_package_version(), python=_platform.python_version()
        )
        _PROCESS_START.set(_START_TIME)


_BUILD_COLLECTOR = _BuildInfoCollector()
REGISTRY.add_collector(_BUILD_COLLECTOR.collect)
