"""Prometheus text exposition: rendering plus a tiny stdlib HTTP endpoint.

:func:`render_prometheus` turns a registry snapshot (or a merged cluster
snapshot) into the Prometheus text format (version 0.0.4).
:class:`MetricsHTTPServer` serves it on ``GET /metrics`` from a daemon
thread using ``http.server`` only — no third-party dependency — behind
the ``--metrics-port`` CLI flag.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

__all__ = ["MetricsHTTPServer", "render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _labels_text(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """Render a metrics snapshot as Prometheus text format."""
    lines: list[str] = []
    for name in sorted(snapshot):
        data = snapshot[name]
        help_text = data.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {data['type']}")
        for series in data.get("series", []):
            labels = series.get("labels", {})
            if data["type"] == "histogram":
                cumulative = 0
                for bound, count in zip(series["buckets"], series["counts"]):
                    cumulative += count
                    le = _labels_text(labels, {"le": _format_value(bound)})
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += series["counts"][len(series["buckets"])]
                le = _labels_text(labels, {"le": "+Inf"})
                lines.append(f"{name}_bucket{le} {cumulative}")
                lines.append(
                    f"{name}_sum{_labels_text(labels)} "
                    f"{_format_value(series['sum'])}"
                )
                lines.append(f"{name}_count{_labels_text(labels)} {cumulative}")
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} {_format_value(series['value'])}"
                )
    return "\n".join(lines) + "\n"


class MetricsHTTPServer:
    """Serve ``GET /metrics`` from a daemon thread.

    ``snapshot_fn`` is called per request, so a cluster front end can
    pass its fan-out merge and serve fleet-wide series from one port.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], dict],
        host: str = "127.0.0.1",
        port: int = 0,
        ready_fn: Callable[[], bool] | None = None,
    ) -> None:
        self._snapshot_fn = snapshot_fn
        self._ready_fn = ready_fn
        self._host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.port: int | None = None

    def start(self) -> "MetricsHTTPServer":
        snapshot_fn = self._snapshot_fn
        ready_fn = self._ready_fn

        class Handler(BaseHTTPRequestHandler):
            def _answer(self, status: int, body: bytes, content_type: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - stdlib API
                path = self.path.rstrip("/")
                if path == "/healthz":
                    # Liveness: answering at all is the signal.
                    self._answer(200, b"ok\n", "text/plain; charset=utf-8")
                    return
                if path == "/readyz":
                    # Readiness: recovery finished and (cluster front end)
                    # every shard is reachable.  No ready_fn → ready once
                    # the endpoint is up.
                    try:
                        ready = True if ready_fn is None else bool(ready_fn())
                    except Exception:
                        ready = False
                    body = b"ready\n" if ready else b"not ready\n"
                    self._answer(
                        200 if ready else 503, body, "text/plain; charset=utf-8"
                    )
                    return
                if path not in ("", "/metrics"):
                    self.send_error(404)
                    return
                try:
                    body = render_prometheus(snapshot_fn()).encode("utf-8")
                except Exception as exc:  # snapshot failures answer 500, not crash
                    self.send_error(500, explain=repr(exc))
                    return
                self._answer(200, body, CONTENT_TYPE)

            def log_message(self, fmt, *args) -> None:  # silence per-request spam
                pass

        self._httpd = ThreadingHTTPServer((self._host, self._requested_port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
