"""Request tracing: trace/span ids, span trees, and the slow-query log.

A trace is identified by a 16-byte id (32 hex chars) and each span by an
8-byte id (16 hex chars).  The front end opens a **root span** per query
(adopting the client's ids when the request carried a trace trailer /
``"trace"`` key); lower layers open **child spans** that inherit the
current trace through a :mod:`contextvars` variable, which the async
facades copy into their thread pools so spans survive executor hops.

Spans whose trace was supplied by the client are marked ``propagate`` —
the cluster scatter path forwards those ids to shard workers in the
AQP1 frame trailer (see ``framing.TRACE_FLAG``) so the worker's own
parse/cache/execute spans join the same tree, including replica reads.

Finished spans land in a fixed-size ring buffer per process, queryable
by trace id via the ``trace`` wire op.  Completed root spans slower than
``REPRO_SLOW_QUERY_MS`` are emitted as structured JSON lines through
:mod:`repro.obs.log`.

Sampling policy: full span trees are built only for requests that carry
client-supplied trace ids.  Untraced requests take a span-free fast path
(:func:`slow_watch`) that synthesises a completed root span post-hoc
only when the request exceeds the slow-query threshold — so slow
queries are always logged and retrievable, while fast untraced queries
pay essentially nothing.
"""

from __future__ import annotations

import contextvars
import os
import random
import threading
import time
from collections import deque
from contextlib import nullcontext

from . import metrics as _metrics

__all__ = [
    "Span",
    "TRACER",
    "Tracer",
    "child_span",
    "current_span",
    "new_span_id",
    "new_trace_id",
    "root_span",
    "slow_watch",
    "spans_for",
]

TRACE_ID_BYTES = 16
SPAN_ID_BYTES = 8

_current: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


# Ids need uniqueness, not unpredictability: a Mersenne Twister seeded
# from the OS beats an os.urandom syscall per span on the hot path.
# ``getrandbits`` is a single C call, so it is atomic under the GIL.
_id_source = random.Random(os.urandom(16))
if hasattr(os, "register_at_fork"):  # forked children must not replay ids
    os.register_at_fork(after_in_child=lambda: _id_source.seed(os.urandom(16)))


def new_trace_id() -> str:
    return f"{_id_source.getrandbits(8 * TRACE_ID_BYTES):0{2 * TRACE_ID_BYTES}x}"


def new_span_id() -> str:
    return f"{_id_source.getrandbits(8 * SPAN_ID_BYTES):0{2 * SPAN_ID_BYTES}x}"


class Span:
    """One timed operation inside a trace.

    A span is its own context manager (no generator wrapper — this sits
    on the per-request hot path): entering installs it as the current
    span, exiting stamps the duration, restores the parent, and records
    the finished span in the ring buffer.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "duration",
        "attrs",
        "root",
        "propagate",
        "_t0",
        "_token",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        attrs: dict | None,
        root: bool,
        propagate: bool,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = time.time()
        self.duration: float | None = None
        self.attrs = dict(attrs) if attrs else {}
        self.root = root
        self.propagate = propagate
        self._t0 = time.perf_counter()
        self._token = None

    def __enter__(self) -> "Span":
        self._token = _current.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._t0
        _current.reset(self._token)
        TRACER.record(self)

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


def _env_slow_threshold() -> float | None:
    raw = os.environ.get("REPRO_SLOW_QUERY_MS", "").strip()
    if not raw:
        return None
    try:
        millis = float(raw)
    except ValueError:
        return None
    return millis / 1000.0 if millis >= 0 else None


#: Default size cap (MB) on the slow-query log file before rotation.
DEFAULT_SLOW_LOG_MAX_MB = 16.0
#: Rotated generations kept next to the live file (``path.1`` … ``path.N``).
SLOW_LOG_KEEP = 3


def _env_slow_log_max_mb() -> float:
    raw = os.environ.get("REPRO_SLOW_LOG_MAX_MB", "").strip()
    if not raw:
        return DEFAULT_SLOW_LOG_MAX_MB
    try:
        max_mb = float(raw)
    except ValueError:
        return DEFAULT_SLOW_LOG_MAX_MB
    return max_mb if max_mb > 0 else DEFAULT_SLOW_LOG_MAX_MB


class Tracer:
    """Ring buffer of finished spans plus the slow-query hook."""

    def __init__(self, capacity: int = 512) -> None:
        self._lock = threading.Lock()
        self._finished: deque[Span] = deque(maxlen=capacity)
        #: Root spans at or above this duration (seconds) hit the
        #: slow-query log; ``None`` disables it.
        self.slow_threshold_seconds: float | None = _env_slow_threshold()
        #: Dedicated slow-query sink (size-rotated file); ``None`` means
        #: slow-query lines go to stderr via the shared logger.
        self._slow_logger = None
        slow_log_file = os.environ.get("REPRO_SLOW_LOG_FILE", "").strip()
        if slow_log_file:
            self.configure_slow_log(slow_log_file, _env_slow_log_max_mb())

    def configure_slow_log(
        self,
        path: str | None,
        max_mb: float = DEFAULT_SLOW_LOG_MAX_MB,
        keep: int = SLOW_LOG_KEEP,
    ) -> None:
        """Route slow-query lines to a size-rotated file (``None`` → stderr).

        ``max_mb`` bounds each generation; at most ``keep`` rotated files
        are retained (``REPRO_SLOW_LOG_MAX_MB`` / ``--slow-log-max-mb``),
        so a slow-heavy workload cannot fill the disk.
        """
        from . import log as _log  # late import: log imports tracing

        if path is None:
            self._slow_logger = None
            return
        stream = _log.RotatingFileStream(
            path, max_bytes=int(max_mb * 1024 * 1024), keep=keep
        )
        self._slow_logger = _log.JsonLogger("slow_query", stream=stream)

    def record(self, span: Span) -> None:
        # Finished Span objects go in as-is; the dict conversion is paid
        # at query time (``spans_for``), not on the request hot path.
        with self._lock:
            self._finished.append(span)
        threshold = self.slow_threshold_seconds
        if (
            span.root
            and threshold is not None
            and span.duration is not None
            and span.duration >= threshold
        ):
            self._log_slow(span.to_dict())

    def _log_slow(self, entry: dict) -> None:
        from . import log as _log  # late import: log imports tracing

        logger = self._slow_logger or _log.get_logger("slow_query")
        logger.warning(
            "slow_query",
            trace_id=entry["trace_id"],
            span_id=entry["span_id"],
            name=entry["name"],
            duration_seconds=entry["duration"],
            attrs=entry["attrs"],
        )

    def spans_for(self, trace_id: str) -> list[dict]:
        with self._lock:
            spans = [s for s in self._finished if s.trace_id == trace_id]
        return [s.to_dict() for s in spans]


#: Process-wide tracer backing the ``trace`` wire op.
TRACER = Tracer()


def current_span() -> Span | None:
    return _current.get()


_NULL_SPAN = nullcontext(None)  # reusable: nullcontext is reentrant


class _SlowWatch:
    """Span-free timing for untraced requests (the hot-path default).

    Building a real span tree costs several microseconds per request —
    too much to pay for every query when nobody asked for a trace.  A
    watch only measures wall time; if the request turns out slower than
    the slow-query threshold it synthesises a completed root span
    post-hoc, so the slow-query log and the ``trace`` op still capture
    every slow query without taxing the fast ones.
    """

    __slots__ = ("name", "attrs_fn", "_start", "_t0")

    def __init__(self, name: str, attrs_fn) -> None:
        self.name = name
        self.attrs_fn = attrs_fn

    def __enter__(self) -> None:
        self._start = time.time()
        self._t0 = time.perf_counter()
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        threshold = TRACER.slow_threshold_seconds
        if threshold is None:
            return
        elapsed = time.perf_counter() - self._t0
        if elapsed < threshold:
            return
        span = Span(
            trace_id=new_trace_id(),
            span_id=new_span_id(),
            parent_id=None,
            name=self.name,
            attrs=self.attrs_fn() if self.attrs_fn is not None else None,
            root=True,
            propagate=False,
        )
        span.start = self._start
        span.duration = elapsed
        TRACER.record(span)


def slow_watch(name: str, attrs_fn=None):
    """Watch an untraced request; see :class:`_SlowWatch`.

    ``attrs_fn`` is only called when the request is actually slow, so
    attribute building costs nothing on the fast path.  Returns a no-op
    context when observability is off or no slow threshold is set.
    """
    if TRACER.slow_threshold_seconds is None or not _metrics.REGISTRY.enabled:
        return _NULL_SPAN
    return _SlowWatch(name, attrs_fn)


def root_span(
    name: str,
    *,
    trace_id: str | None = None,
    parent_id: str | None = None,
    attrs: dict | None = None,
):
    """Open a root span, adopting client-supplied ids when given.

    A span with client-supplied ids is marked ``propagate`` so the
    scatter layer ships the trace over the wire to shard workers.
    No-op (yields ``None``) when observability is disabled.
    """
    if not _metrics.REGISTRY.enabled:
        return _NULL_SPAN
    return Span(
        trace_id=trace_id or new_trace_id(),
        span_id=new_span_id(),
        parent_id=parent_id,
        name=name,
        attrs=attrs,
        root=True,
        propagate=trace_id is not None,
    )


def child_span(name: str, *, attrs: dict | None = None):
    """Open a child of the current span; no-op when not inside a trace."""
    parent = _current.get()
    if parent is None or not _metrics.REGISTRY.enabled:
        return _NULL_SPAN
    return Span(
        trace_id=parent.trace_id,
        span_id=new_span_id(),
        parent_id=parent.span_id,
        name=name,
        attrs=attrs,
        root=False,
        propagate=parent.propagate,
    )


def spans_for(trace_id: str) -> list[dict]:
    return TRACER.spans_for(trace_id)
