"""Unified observability: metrics registry, request tracing, structured logs.

Three small, dependency-free modules shared by every layer of the stack:

* :mod:`repro.obs.metrics` — a process-wide, thread-safe registry of
  counters, gauges and fixed-bucket histograms with named labels.  Every
  layer (server admission, result cache, WAL, checkpoints, scatter,
  replication) records into it; the ``metrics`` wire op and the
  ``/metrics`` HTTP endpoint expose its snapshot.
* :mod:`repro.obs.tracing` — per-request trace/span ids, a ring buffer
  of finished spans, and the slow-query log fed from completed root
  spans.  Trace context crosses thread pools via ``contextvars`` and
  crosses processes in an optional trailer on AQP1 binary frames.
* :mod:`repro.obs.log` — a JSON-lines structured logger (level/env
  gated, trace-id correlated when inside a span) replacing bare
  ``print`` calls in the supervisor, checkpointer and follower loop.

``REPRO_OBS=off`` disables metric recording and span creation globally
(the overhead benchmark pins the instrumented-vs-off cost); the
registries and ops stay functional, they just stop accumulating.
"""

from __future__ import annotations

from . import log, metrics, tracing
from .metrics import REGISTRY, counter, gauge, histogram, obs_enabled, set_enabled

__all__ = [
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "log",
    "metrics",
    "obs_enabled",
    "set_enabled",
    "tracing",
]
