"""JSON-lines structured logger, level/env gated, trace-id correlated.

One line per event::

    {"ts": 1754500000.123, "level": "warning", "component": "supervisor",
     "event": "worker_restarted", "trace_id": "…", "shard": 3}

``REPRO_LOG_LEVEL`` selects the minimum level (``debug`` < ``info`` <
``warning`` < ``error``; ``off`` silences everything).  Lines go to
stderr so they never interfere with the supervisor's stdout banner
scrape.  When the caller is inside a span the trace id is attached
automatically, which is how slow-query lines and follower/checkpoint
events correlate with the ``trace`` op output.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

__all__ = ["JsonLogger", "get_logger", "set_level"]

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}


def _env_level() -> int:
    raw = os.environ.get("REPRO_LOG_LEVEL", "info").strip().lower()
    return _LEVELS.get(raw, _LEVELS["info"])


_threshold = _env_level()
_write_lock = threading.Lock()
_loggers: dict[str, "JsonLogger"] = {}
_loggers_lock = threading.Lock()


def set_level(level: str) -> str:
    """Override the minimum emitted level (``"off"`` silences).

    Returns the previous level name so callers can restore it.
    """
    global _threshold
    previous = next(
        name for name, rank in _LEVELS.items() if rank == _threshold
    )
    _threshold = _LEVELS[level]
    return previous


class JsonLogger:
    def __init__(self, component: str, stream=None) -> None:
        self.component = component
        self._stream = stream

    def log(self, level: str, event: str, **fields) -> None:
        if _LEVELS[level] < _threshold:
            return
        entry = {
            "ts": time.time(),
            "level": level,
            "component": self.component,
            "event": event,
        }
        from . import tracing  # late import: tracing logs slow queries via us

        span = tracing.current_span()
        if span is not None:
            entry["trace_id"] = span.trace_id
        entry.update(fields)
        line = json.dumps(entry, default=repr, separators=(",", ":"))
        stream = self._stream if self._stream is not None else sys.stderr
        with _write_lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass  # a closed stderr must never take the server down

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


def get_logger(component: str) -> JsonLogger:
    with _loggers_lock:
        logger = _loggers.get(component)
        if logger is None:
            logger = JsonLogger(component)
            _loggers[component] = logger
        return logger
