"""JSON-lines structured logger, level/env gated, trace-id correlated.

One line per event::

    {"ts": 1754500000.123, "level": "warning", "component": "supervisor",
     "event": "worker_restarted", "trace_id": "…", "shard": 3}

``REPRO_LOG_LEVEL`` selects the minimum level (``debug`` < ``info`` <
``warning`` < ``error``; ``off`` silences everything).  Lines go to
stderr so they never interfere with the supervisor's stdout banner
scrape.  When the caller is inside a span the trace id is attached
automatically, which is how slow-query lines and follower/checkpoint
events correlate with the ``trace`` op output.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

__all__ = ["JsonLogger", "RotatingFileStream", "get_logger", "set_level"]

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}


def _env_level() -> int:
    raw = os.environ.get("REPRO_LOG_LEVEL", "info").strip().lower()
    return _LEVELS.get(raw, _LEVELS["info"])


_threshold = _env_level()
_write_lock = threading.Lock()
_loggers: dict[str, "JsonLogger"] = {}
_loggers_lock = threading.Lock()


def set_level(level: str) -> str:
    """Override the minimum emitted level (``"off"`` silences).

    Returns the previous level name so callers can restore it.
    """
    global _threshold
    previous = next(
        name for name, rank in _LEVELS.items() if rank == _threshold
    )
    _threshold = _LEVELS[level]
    return previous


class RotatingFileStream:
    """Size-bounded append stream with a keep-N rotation cap.

    Plugs in as a :class:`JsonLogger` ``stream``: a slow-query-heavy
    workload writes one JSON line per slow query, and without a bound
    that file grows until the disk fills.  When the live file exceeds
    ``max_bytes`` it is rotated to ``path.1`` (shifting ``path.1`` →
    ``path.2`` …); at most ``keep`` rotated files are retained, so total
    disk usage is bounded by roughly ``(keep + 1) * max_bytes``.
    """

    def __init__(self, path, max_bytes: int, keep: int = 3) -> None:
        self.path = str(path)
        self.max_bytes = max(1, int(max_bytes))
        self.keep = max(1, int(keep))
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")

    def write(self, text: str) -> int:
        with self._lock:
            if self._file.tell() + len(text) > self.max_bytes:
                self._rotate()
            return self._file.write(text)

    def flush(self) -> None:
        with self._lock:
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            self._file.close()

    def _rotate(self) -> None:
        self._file.close()
        for index in range(self.keep, 0, -1):
            source = self.path if index == 1 else f"{self.path}.{index - 1}"
            target = f"{self.path}.{index}"
            try:
                os.replace(source, target)
            except OSError:
                pass  # source may not exist yet; never fail a log write
        self._file = open(self.path, "a", encoding="utf-8")


class JsonLogger:
    def __init__(self, component: str, stream=None) -> None:
        self.component = component
        self._stream = stream

    def log(self, level: str, event: str, **fields) -> None:
        if _LEVELS[level] < _threshold:
            return
        entry = {
            "ts": time.time(),
            "level": level,
            "component": self.component,
            "event": event,
        }
        from . import tracing  # late import: tracing logs slow queries via us

        span = tracing.current_span()
        if span is not None:
            entry["trace_id"] = span.trace_id
        entry.update(fields)
        line = json.dumps(entry, default=repr, separators=(",", ":"))
        stream = self._stream if self._stream is not None else sys.stderr
        with _write_lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass  # a closed stderr must never take the server down

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


def get_logger(component: str) -> JsonLogger:
    with _loggers_lock:
        logger = _loggers.get(component)
        if logger is None:
            logger = JsonLogger(component)
            _loggers[component] = logger
        return logger
