"""Write-ahead ingest log: length-prefixed, checksummed, segment-rotated.

Every committed mutation (register / ingest / drop) is appended as one
record *before* the commit returns, so a crash loses at most the batch
that never acknowledged.  The on-disk format is a sequence of segment
files, each a run of records:

    <lsn:u64><type:u8><length:u32><crc32:u32><payload:length bytes>

The CRC covers the header fields and the payload, so a flipped bit
anywhere in a record is detected.  LSNs are assigned sequentially across
segments; segment files are named by the first LSN they contain, so the
set of files is itself an index.  A record is never split across
segments; a segment rotates once it exceeds ``segment_max_bytes``.

Recovery semantics: the log is the prefix of records that are fully
written and checksum-clean.  A torn tail (crash mid-write) or a corrupted
record ends the log at the last valid record — :class:`WriteAheadLog`
truncates the torn bytes when reopened for append, and read-side
:meth:`read_records` simply stops there, reporting what it saw in
:attr:`last_scan`.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..obs import metrics as obs_metrics
from .faults import crash_points_armed, maybe_crash

_HEADER = struct.Struct("<QBII")  # lsn, record type, payload length, crc32
_SEGMENT_SUFFIX = ".wal"

_WAL_APPENDS = obs_metrics.counter(
    "aqp_wal_appends_total", "WAL records durably appended."
)
_WAL_APPENDED_BYTES = obs_metrics.counter(
    "aqp_wal_appended_bytes_total", "Framed bytes appended to the WAL."
)
_WAL_FSYNCS = obs_metrics.counter(
    "aqp_wal_fsyncs_total", "fsync() calls issued by the WAL."
)
_WAL_FSYNC_SECONDS = obs_metrics.histogram(
    "aqp_wal_fsync_seconds", "Wall time of each WAL fsync."
)
_WAL_ROTATIONS = obs_metrics.counter(
    "aqp_wal_segment_rotations_total", "WAL segment-file rotations."
)
# Rebind to the pre-resolved cells — these run on every append/fsync and
# must not pay label handling (the metrics have no labels anyway).
_WAL_APPENDS = _WAL_APPENDS.labels()
_WAL_APPENDED_BYTES = _WAL_APPENDED_BYTES.labels()
_WAL_FSYNCS = _WAL_FSYNCS.labels()
_WAL_FSYNC_SECONDS = _WAL_FSYNC_SECONDS.labels()
_WAL_ROTATIONS = _WAL_ROTATIONS.labels()

#: Default segment rotation threshold.
DEFAULT_SEGMENT_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class WalRecord:
    """One durable log record."""

    lsn: int
    rtype: int
    payload: bytes


@dataclass
class WalScanReport:
    """What a full scan of the log saw (recovery observability)."""

    last_lsn: int = 0
    valid_records: int = 0
    #: Bytes discarded from a torn tail (crash mid-append).
    torn_bytes: int = 0
    #: Segment in which a checksum / framing error ended the log, if any.
    corrupt_segment: str | None = None
    segments: list[str] = field(default_factory=list)


def _segment_name(first_lsn: int) -> str:
    return f"{first_lsn:020d}{_SEGMENT_SUFFIX}"


def _frame(lsn: int, rtype: int, payload: bytes) -> bytes:
    crc = zlib.crc32(struct.pack("<QBI", lsn, rtype, len(payload)) + payload)
    return _HEADER.pack(lsn, rtype, len(payload), crc) + payload


def _read_segment(path: Path, expect_lsn: int | None):
    """Yield ``(record, end_offset)`` for every valid record of one segment.

    Stops (without raising) at the first incomplete or checksum-failing
    record; the caller decides whether that ends the whole log.  Returns
    via StopIteration, so callers use the generator protocol.
    """
    data = path.read_bytes()
    offset = 0
    while offset + _HEADER.size <= len(data):
        lsn, rtype, length, crc = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if end > len(data):
            break  # torn tail: payload never finished
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(struct.pack("<QBI", lsn, rtype, length) + payload) != crc:
            break  # corrupted record
        if expect_lsn is not None and lsn != expect_lsn:
            break  # framing desynchronised; treat like corruption
        yield WalRecord(lsn=lsn, rtype=rtype, payload=payload), end
        offset = end
        if expect_lsn is not None:
            expect_lsn += 1


class WriteAheadLog:
    """Append-only, checksummed, segment-rotated log under one directory.

    Thread-safe: appends, syncs, rotation and truncation serialize on an
    internal mutex (the durable database additionally orders appends
    against its own commits).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync = fsync
        self._mutex = threading.Lock()
        self._file = None
        self._segment_path: Path | None = None
        #: In-flight :meth:`read_records` iterators, token -> ``after_lsn``.
        #: Truncation never deletes a segment such a reader still needs.
        self._active_readers: dict[object, int] = {}
        #: Byte offset of the last appended record within the active
        #: segment — consumed (once) by :meth:`rollback_last`.
        self._last_append_offset: int | None = None
        self.last_scan = self._open_for_append()

    # ------------------------------------------------------------------ #
    # Opening / scanning

    def segment_paths(self) -> list[Path]:
        """Segment files in LSN order."""
        return sorted(self.directory.glob(f"*{_SEGMENT_SUFFIX}"))

    def _open_for_append(self) -> WalScanReport:
        """Scan every segment, drop invalid tails, open the last for append.

        The first torn or corrupt record ends the log: the bytes from it
        onward are truncated from its segment and any *later* segments are
        removed (they are unreachable once the LSN chain is broken).
        """
        report = WalScanReport()
        segments = self.segment_paths()
        expect = None
        broken_at: int | None = None
        for index, path in enumerate(segments):
            report.segments.append(path.name)
            size = path.stat().st_size
            valid_end = 0
            for record, end in _read_segment(path, expect):
                report.last_lsn = record.lsn
                report.valid_records += 1
                expect = record.lsn + 1
                valid_end = end
            if valid_end < size:
                report.torn_bytes += size - valid_end
                report.corrupt_segment = path.name
                with path.open("r+b") as fh:
                    fh.truncate(valid_end)
                broken_at = index
                break
        if broken_at is not None:
            for stale in segments[broken_at + 1 :]:
                report.torn_bytes += stale.stat().st_size
                stale.unlink()
        self._last_lsn = report.last_lsn
        live = self.segment_paths()
        if report.valid_records == 0 and live:
            # Only empty segments (e.g. freshly rotated after a checkpoint
            # truncated everything): the next LSN is encoded in the segment
            # name, so numbering continues instead of restarting at 1.
            self._last_lsn = int(live[0].name[: -len(_SEGMENT_SUFFIX)]) - 1
            report.last_lsn = self._last_lsn
        if live:
            self._segment_path = live[-1]
        else:
            self._segment_path = self.directory / _segment_name(self._last_lsn + 1)
            self._segment_path.touch()
        self._file = self._segment_path.open("ab")
        return report

    # ------------------------------------------------------------------ #
    # Writing

    @property
    def last_lsn(self) -> int:
        """LSN of the most recent durable record (0 for an empty log)."""
        with self._mutex:
            return self._last_lsn

    def first_lsn(self) -> int:
        """Lowest LSN still readable from the log.

        ``last_lsn + 1`` when the log holds no records (empty or fully
        truncated) — i.e. the log can serve exactly ``lsn >= first_lsn()``.
        Replication uses this as the truncation horizon: a follower whose
        position is below ``first_lsn() - 1`` cannot be caught up from the
        log alone and needs a snapshot seed.
        """
        with self._mutex:
            segments = self.segment_paths()
            if not segments:
                return self._last_lsn + 1
            return int(segments[0].name[: -len(_SEGMENT_SUFFIX)])

    def append(self, rtype: int, payload: bytes) -> int:
        """Durably append one record, returning its LSN."""
        with self._mutex:
            if self._file.tell() >= self.segment_max_bytes:
                self._rotate_locked()
            lsn = self._last_lsn + 1
            start = self._file.tell()
            frame = _frame(lsn, rtype, payload)
            if crash_points_armed():
                maybe_crash("wal.append.before_write")
                # Two flushed writes so an armed mid-write crash point
                # leaves a genuinely torn record on disk, exactly like a
                # real crash.
                half = len(frame) // 2
                self._file.write(frame[:half])
                self._file.flush()
                maybe_crash("wal.append.mid_write")
                self._file.write(frame[half:])
            else:
                self._file.write(frame)
            self._file.flush()
            if self.fsync:
                fsync_started = time.perf_counter()
                os.fsync(self._file.fileno())
                _WAL_FSYNCS.inc()
                _WAL_FSYNC_SECONDS.observe(time.perf_counter() - fsync_started)
            self._last_lsn = lsn
            self._last_append_offset = start
            _WAL_APPENDS.inc()
            _WAL_APPENDED_BYTES.inc(len(frame))
            return lsn

    def rollback_last(self, lsn: int) -> None:
        """Remove the most recent record — compensation for a commit that
        failed *after* its WAL append (the caller still holds the durable
        mutex, so no later record can exist).  Only the record appended
        last is removable; anything else raises."""
        with self._mutex:
            if lsn != self._last_lsn or self._last_append_offset is None:
                raise ValueError(
                    f"cannot roll back lsn {lsn}: the last appended record "
                    f"is {self._last_lsn}"
                )
            self._file.flush()
            self._file.truncate(self._last_append_offset)
            self._file.seek(self._last_append_offset)
            if self.fsync:
                os.fsync(self._file.fileno())
            self._last_lsn = lsn - 1
            self._last_append_offset = None

    def sync(self) -> int:
        """Flush and fsync whatever has been appended; returns the last LSN."""
        with self._mutex:
            self._file.flush()
            fsync_started = time.perf_counter()
            os.fsync(self._file.fileno())
            _WAL_FSYNCS.inc()
            _WAL_FSYNC_SECONDS.observe(time.perf_counter() - fsync_started)
            return self._last_lsn

    def _rotate_locked(self) -> None:
        self._file.close()
        self._segment_path = self.directory / _segment_name(self._last_lsn + 1)
        self._segment_path.touch()
        self._file = self._segment_path.open("ab")
        _WAL_ROTATIONS.inc()

    # ------------------------------------------------------------------ #
    # Reading

    def read_records(self, after_lsn: int = 0) -> Iterator[WalRecord]:
        """Iterate valid records with ``lsn > after_lsn`` across all segments.

        Stops silently at the first torn or corrupt record — by
        construction everything after it was never acknowledged.

        While the iterator is live it registers ``after_lsn`` as a
        retention floor, so a concurrent :meth:`truncate_through` (e.g. a
        background checkpoint) cannot unlink a segment out from under it.
        Exhaust or ``close()`` the iterator promptly — an abandoned one
        holds the floor until garbage collection.
        """
        token = object()
        with self._mutex:
            self._file.flush()
            segments = self.segment_paths()
            self._active_readers[token] = after_lsn
        try:
            # Skip segments that cannot contain lsn > after_lsn: a segment
            # is fully covered when its successor's first LSN (encoded in
            # the file name) is <= after_lsn + 1.  A tailing subscriber
            # polling the log then re-reads only the segment it is
            # positioned in, not the whole history.
            start = 0
            for index, successor in enumerate(segments[1:]):
                if int(successor.name[: -len(_SEGMENT_SUFFIX)]) <= after_lsn + 1:
                    start = index + 1
            expect = None
            for path in segments[start:]:
                for record, _ in _read_segment(path, expect):
                    expect = record.lsn + 1
                    if record.lsn > after_lsn:
                        yield record
        finally:
            with self._mutex:
                self._active_readers.pop(token, None)

    # ------------------------------------------------------------------ #
    # Truncation

    def truncate_through(self, lsn: int, retain_after_lsn: int | None = None) -> list[str]:
        """Drop segments made obsolete by a checkpoint at ``lsn``.

        A segment may be deleted once every record in it has LSN ``<= lsn``.
        If the *active* segment is itself fully covered, it is rotated
        first so its file can go too; the new empty segment is named by
        the next LSN, keeping the chain contiguous.

        ``retain_after_lsn`` lowers the effective truncation point: every
        record with LSN ``> retain_after_lsn`` stays readable, so the
        segment containing ``retain_after_lsn + 1`` is never deleted.
        Replication passes the minimum acknowledged follower position here
        so a live subscriber is never truncated out from under.  In-flight
        :meth:`read_records` iterators impose the same floor implicitly.
        """
        with self._mutex:
            floor = lsn
            if retain_after_lsn is not None:
                floor = min(floor, retain_after_lsn)
            for reader_after in self._active_readers.values():
                floor = min(floor, reader_after)
            if self._last_lsn <= floor and self._file.tell() > 0:
                self._rotate_locked()
            segments = self.segment_paths()
            removed: list[str] = []
            for path, successor in zip(segments, segments[1:]):
                first_of_next = int(successor.name[: -len(_SEGMENT_SUFFIX)])
                if first_of_next <= floor + 1:
                    path.unlink()
                    removed.append(path.name)
            return removed

    def reset_to(self, lsn: int) -> None:
        """Restart the log just past ``lsn``, discarding every segment.

        Only legal when every surviving record is at or below ``lsn`` —
        the recovery path calls this when a snapshot's checkpoint LSN is
        *above* the last scannable record (corruption ate part of a log
        the crashed checkpoint never got to truncate).  Appending at the
        old, lower LSNs instead would make the next checkpoint sort below
        the stale snapshot and silently lose the new mutations on the
        following restart.
        """
        with self._mutex:
            if lsn < self._last_lsn:
                raise ValueError(
                    f"cannot reset the WAL to lsn {lsn}: records up to "
                    f"{self._last_lsn} exist"
                )
            self._file.close()
            for path in self.segment_paths():
                path.unlink()
            self._last_lsn = lsn
            self._segment_path = self.directory / _segment_name(lsn + 1)
            self._segment_path.touch()
            self._file = self._segment_path.open("ab")

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        with self._mutex:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
