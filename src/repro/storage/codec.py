"""Binary codecs for the durable-storage subsystem.

Two layers live here:

* **Shared framing primitives** — length-prefixed strings (4-byte and
  2-byte flavours), length-prefixed byte blobs, framed numpy arrays (two
  historical headers, both kept byte-identical), bit-packed boolean
  bitmaps and the count-prefixed blob sequences every multi-part payload
  uses.  These are the *single* source of framing truth:
  :mod:`repro.core.serialization` (synopsis payloads),
  :mod:`repro.gd.partitioned` (GD partition dumps) and
  :mod:`repro.storage.snapshot` all build on them, so the three on-disk
  formats can no longer drift apart.  This module therefore sits at the
  bottom of the dependency stack — anything outside :mod:`repro.data`
  and numpy is imported lazily inside the functions that need it.
* **Durable-storage payload codecs** — table schemas, fitted
  pre-processors, raw row batches (the WAL payloads), GreedyGD
  configuration and the per-table catalog entries a snapshot writes.

All framing is explicit little-endian ``struct`` packing — no pickle, so
payloads are stable across Python versions and safe to read from
untrusted data directories.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

import numpy as np

from ..data.schema import ColumnSchema, ColumnType, TableSchema
from ..data.table import Table

if TYPE_CHECKING:  # heavyweight imports stay lazy at runtime (see docstring)
    from ..core.params import PairwiseHistParams
    from ..gd.greedygd import GreedyGDConfig
    from ..gd.preprocessor import Preprocessor

_NULL_STRING = 0xFFFFFFFF


# --------------------------------------------------------------------------- #
# Primitives


def pack_string(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


def unpack_string(buffer: memoryview, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    return bytes(buffer[offset : offset + length]).decode("utf-8"), offset + length


def pack_optional_string(text: str | None) -> bytes:
    if text is None:
        return struct.pack("<I", _NULL_STRING)
    return pack_string(text)


def unpack_optional_string(buffer: memoryview, offset: int) -> tuple[str | None, int]:
    (length,) = struct.unpack_from("<I", buffer, offset)
    if length == _NULL_STRING:
        return None, offset + 4
    offset += 4
    return bytes(buffer[offset : offset + length]).decode("utf-8"), offset + length


def pack_short_string(text: str) -> bytes:
    """2-byte-length string framing (the synopsis / GD-partition flavour)."""
    raw = text.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def unpack_short_string(buffer: memoryview, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("<H", buffer, offset)
    offset += 2
    return bytes(buffer[offset : offset + length]).decode("utf-8"), offset + length


def pack_bytes(payload: bytes) -> bytes:
    return struct.pack("<Q", len(payload)) + payload


def unpack_bytes(buffer: memoryview, offset: int) -> tuple[bytes, int]:
    (length,) = struct.unpack_from("<Q", buffer, offset)
    offset += 8
    return bytes(buffer[offset : offset + length]), offset + length


def pack_array(arr: np.ndarray) -> bytes:
    """Frame a numpy array: dtype string, shape, then raw C-order bytes."""
    arr = np.ascontiguousarray(arr)
    parts = [pack_string(arr.dtype.str), struct.pack("<B", arr.ndim)]
    parts.append(struct.pack(f"<{arr.ndim}Q", *arr.shape))
    parts.append(pack_bytes(arr.tobytes()))
    return b"".join(parts)


def unpack_array(buffer: memoryview, offset: int) -> tuple[np.ndarray, int]:
    dtype_str, offset = unpack_string(buffer, offset)
    (ndim,) = struct.unpack_from("<B", buffer, offset)
    offset += 1
    shape = struct.unpack_from(f"<{ndim}Q", buffer, offset)
    offset += 8 * ndim
    raw, offset = unpack_bytes(buffer, offset)
    arr = np.frombuffer(raw, dtype=np.dtype(dtype_str)).reshape(shape).copy()
    return arr, offset


def pack_bool_array(mask: np.ndarray) -> bytes:
    """Bit-packed boolean array (null bitmaps)."""
    mask = np.asarray(mask, dtype=bool)
    return struct.pack("<Q", len(mask)) + np.packbits(mask).tobytes()


def unpack_bool_array(buffer: memoryview, offset: int) -> tuple[np.ndarray, int]:
    (length,) = struct.unpack_from("<Q", buffer, offset)
    offset += 8
    nbytes = (length + 7) // 8
    packed = np.frombuffer(buffer[offset : offset + nbytes], dtype=np.uint8)
    mask = np.unpackbits(packed, count=length).astype(bool) if length else np.zeros(0, dtype=bool)
    return mask, offset + nbytes


def frame_blobs(blobs: list[bytes]) -> bytes:
    """Count-prefixed blob sequence: ``<I`` count, then ``<Q`` length + bytes
    per blob.  The layout shared by partitioned synopsis payloads, snapshot
    catalogs and snapshot partition files."""
    framed = [struct.pack("<I", len(blobs))]
    for blob in blobs:
        framed.append(struct.pack("<Q", len(blob)))
        framed.append(blob)
    return b"".join(framed)


def unframe_blobs(buffer: memoryview | bytes, offset: int = 0) -> tuple[list[bytes], int]:
    """Inverse of :func:`frame_blobs`; returns the blobs and the end offset."""
    buffer = memoryview(buffer)
    (count,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    blobs: list[bytes] = []
    for _ in range(count):
        (length,) = struct.unpack_from("<Q", buffer, offset)
        offset += 8
        blobs.append(bytes(buffer[offset : offset + length]))
        offset += length
    return blobs, offset


def pack_ndarray8(arr: np.ndarray) -> bytes:
    """Frame a numpy array with a fixed 8-byte dtype header (the GD
    partition-dump flavour): ``<8s`` dtype string, ``<B`` ndim, ``<Q``
    shape entries, ``<Q`` byte length, raw C-order bytes."""
    arr = np.ascontiguousarray(arr)
    header = struct.pack("<8sB", arr.dtype.str.encode("ascii"), arr.ndim)
    shape = struct.pack(f"<{arr.ndim}Q", *arr.shape)
    raw = arr.tobytes()
    return header + shape + struct.pack("<Q", len(raw)) + raw


def unpack_ndarray8(buffer: memoryview, offset: int) -> tuple[np.ndarray, int]:
    dtype_raw, ndim = struct.unpack_from("<8sB", buffer, offset)
    offset += struct.calcsize("<8sB")
    shape = struct.unpack_from(f"<{ndim}Q", buffer, offset)
    offset += 8 * ndim
    (length,) = struct.unpack_from("<Q", buffer, offset)
    offset += 8
    dtype = np.dtype(dtype_raw.rstrip(b"\x00").decode("ascii"))
    arr = np.frombuffer(buffer[offset : offset + length], dtype=dtype).reshape(shape).copy()
    return arr, offset + length


# --------------------------------------------------------------------------- #
# Schema


def encode_schema(schema: TableSchema) -> bytes:
    parts = [struct.pack("<I", len(schema))]
    for column in schema:
        parts.append(pack_string(column.name))
        parts.append(pack_string(column.ctype.value))
        parts.append(struct.pack("<iB", column.decimals, bool(column.nullable)))
        if column.categories is None:
            parts.append(struct.pack("<I", _NULL_STRING))
        else:
            parts.append(struct.pack("<I", len(column.categories)))
            for label in column.categories:
                parts.append(pack_string(label))
    return b"".join(parts)


def decode_schema(buffer: memoryview, offset: int = 0) -> tuple[TableSchema, int]:
    (count,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    columns: list[ColumnSchema] = []
    for _ in range(count):
        name, offset = unpack_string(buffer, offset)
        ctype, offset = unpack_string(buffer, offset)
        decimals, nullable = struct.unpack_from("<iB", buffer, offset)
        offset += 5
        (num_categories,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        categories: list[str] | None = None
        if num_categories != _NULL_STRING:
            categories = []
            for _ in range(num_categories):
                label, offset = unpack_string(buffer, offset)
                categories.append(label)
        columns.append(
            ColumnSchema(
                name=name,
                ctype=ColumnType(ctype),
                decimals=decimals,
                categories=categories,
                nullable=bool(nullable),
            )
        )
    return TableSchema(columns), offset


# --------------------------------------------------------------------------- #
# Preprocessor


def encode_preprocessor(preprocessor: "Preprocessor") -> bytes:
    parts = [struct.pack("<I", len(preprocessor.transforms))]
    for name, t in preprocessor.transforms.items():
        parts.append(pack_string(name))
        parts.append(struct.pack("<Bddqq", t.is_categorical, t.scale, t.offset, t.missing_code, t.max_code))
        parts.append(struct.pack("<I", len(t.categories)))
        for label in t.categories:
            parts.append(pack_string(label))
    return b"".join(parts)


def decode_preprocessor(buffer: memoryview, offset: int = 0) -> tuple["Preprocessor", int]:
    from ..gd.preprocessor import ColumnTransform, Preprocessor

    (count,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    transforms: dict[str, ColumnTransform] = {}
    for _ in range(count):
        name, offset = unpack_string(buffer, offset)
        is_cat, scale, value_offset, missing, max_code = struct.unpack_from("<Bddqq", buffer, offset)
        offset += struct.calcsize("<Bddqq")
        (num_categories,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        categories: list[str] = []
        for _ in range(num_categories):
            label, offset = unpack_string(buffer, offset)
            categories.append(label)
        transforms[name] = ColumnTransform(
            name=name,
            is_categorical=bool(is_cat),
            scale=scale,
            offset=value_offset,
            categories=categories,
            missing_code=int(missing),
            max_code=int(max_code),
        )
    return Preprocessor(transforms), offset


# --------------------------------------------------------------------------- #
# Tables (raw row batches — the WAL ingest payload)


def encode_table(table: Table) -> bytes:
    """Losslessly frame a columnar table (float64 / nullable strings)."""
    parts = [pack_string(table.name), encode_schema(table.schema)]
    for column in table.schema:
        values = table.column(column.name)
        if column.is_categorical:
            parts.append(struct.pack("<Q", len(values)))
            parts.append(b"".join(pack_optional_string(v) for v in values))
        else:
            parts.append(pack_array(np.asarray(values, dtype=np.float64)))
    return b"".join(parts)


def decode_table(buffer: memoryview, offset: int = 0) -> tuple[Table, int]:
    name, offset = unpack_string(buffer, offset)
    schema, offset = decode_schema(buffer, offset)
    columns: dict[str, np.ndarray] = {}
    for column in schema:
        if column.is_categorical:
            (count,) = struct.unpack_from("<Q", buffer, offset)
            offset += 8
            values = np.empty(count, dtype=object)
            for i in range(count):
                values[i], offset = unpack_optional_string(buffer, offset)
            columns[column.name] = values
        else:
            columns[column.name], offset = unpack_array(buffer, offset)
    return Table(name=name, schema=schema, columns=columns), offset


# --------------------------------------------------------------------------- #
# GreedyGD configuration


def encode_gd_config(config: "GreedyGDConfig") -> bytes:
    return struct.pack(
        "<qqBB",
        config.search_rows,
        config.max_deviation_bits,
        bool(config.early_stop),
        bool(getattr(config, "warm_start_appends", True)),
    )


def decode_gd_config(buffer: memoryview, offset: int = 0) -> tuple["GreedyGDConfig", int]:
    from ..gd.greedygd import GreedyGDConfig

    search_rows, max_dev, early, warm = struct.unpack_from("<qqBB", buffer, offset)
    offset += struct.calcsize("<qqBB")
    return (
        GreedyGDConfig(
            search_rows=int(search_rows),
            max_deviation_bits=int(max_dev),
            early_stop=bool(early),
            warm_start_appends=bool(warm),
        ),
        offset,
    )


# --------------------------------------------------------------------------- #
# WAL payloads


def encode_register_payload(
    table: Table, params: "PairwiseHistParams", partition_size: int
) -> bytes:
    from ..core.serialization import serialize_params

    return b"".join(
        [struct.pack("<q", partition_size), serialize_params(params), encode_table(table)]
    )


def decode_register_payload(payload: bytes) -> tuple[Table, "PairwiseHistParams", int]:
    from ..core.serialization import deserialize_params

    buffer = memoryview(payload)
    (partition_size,) = struct.unpack_from("<q", buffer, 0)
    params, offset = deserialize_params(buffer, 8)
    table, _ = decode_table(buffer, offset)
    return table, params, int(partition_size)


def encode_ingest_payload(table_name: str, rows: Table) -> bytes:
    return pack_string(table_name) + encode_table(rows)


def decode_ingest_payload(payload: bytes) -> tuple[str, Table]:
    buffer = memoryview(payload)
    table_name, offset = unpack_string(buffer, 0)
    rows, _ = decode_table(buffer, offset)
    return table_name, rows


def encode_drop_payload(table_name: str) -> bytes:
    return pack_string(table_name)


def decode_drop_payload(payload: bytes) -> str:
    name, _ = unpack_string(memoryview(payload), 0)
    return name
