"""Snapshot checkpoints: atomic on-disk images of the whole catalog.

A snapshot directory holds, per registered table, the catalog entry
(schema, fitted pre-processor, construction params, GreedyGD config), the
GD-compressed partitions and the per-partition PWHP synopses.  A
``MANIFEST`` listing every file with its size and CRC32 is written
*last*, and the whole directory is assembled under a temporary name and
published with a single ``os.replace`` — so a snapshot either exists
completely and checksum-clean, or does not exist at all.  The recovery
path scans snapshot directories newest-first and loads the first one
whose manifest validates, so a crash mid-checkpoint (partial temp dir,
missing manifest, torn file) silently falls back to the previous
checkpoint plus WAL replay.

Two partition layouts exist:

* **v1** — one ``table-NNNNN.partitions`` file framing every partition
  blob; every checkpoint rewrites the whole table.
* **v2** (default) — one content-addressed ``part-<digest>.blob`` file
  per partition plus a small ``table-NNNNN.parts`` index listing the
  blob names in partition order.  Sealed partitions are immutable, so a
  checkpoint **hard-links** their blob files from the previous snapshot
  directory (copying on filesystems without link support) and only
  serializes partitions it has never persisted — typically just the
  tail.  Checkpoint cost becomes O(tail), not O(table).  Garbage
  collection stays safe because the link keeps the blob's bytes alive
  until the last snapshot directory referencing it is removed.

The loader accepts both layouts, so a v2 build opens v1 data directories
unchanged.  ``REPRO_SNAPSHOT_FORMAT=1`` forces new snapshots back to the
v1 layout (used by the CI backward-compat drill).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..core.params import PairwiseHistParams
from ..core.serialization import (
    LazyPartitionSynopses,
    deserialize,
    deserialize_catalog,
    deserialize_manifest,
    deserialize_params,
    serialize,
    serialize_catalog,
    serialize_manifest,
    serialize_params,
    serialize_partitioned,
)
from ..core.synopsis import PairwiseHist
from ..data.schema import TableSchema
from ..gd.greedygd import GreedyGDConfig
from ..gd.partitioned import PartitionedStore, dump_partition, load_partition
from ..gd.preprocessor import Preprocessor
from ..gd.store import CompressedStore
from . import codec
from .faults import maybe_crash

SNAPSHOT_PREFIX = "snap-"
_TMP_PREFIX = "tmp-"
_MANIFEST_NAME = "MANIFEST"
_CATALOG_NAME = "CATALOG"
_CURRENT_NAME = "CURRENT"

#: Snapshot partition layouts (see module docstring).
SNAPSHOT_FORMAT_V1 = 1
SNAPSHOT_FORMAT_V2 = 2

_BLOB_PREFIX = "part-"
_BLOB_SUFFIX = ".blob"
_PARTS_MAGIC = b"PRT2"

#: Attribute cached on a :class:`CompressedStore` once its blob has been
#: persisted: ``(blob file name, size, crc32)``.  Partition objects are
#: immutable after publication (a tail top-up replaces the object), so
#: the identity holds for the object's whole lifetime; whether the file
#: still exists is re-checked against the previous snapshot's manifest.
_BLOB_ATTR = "_snapshot_blob"


def _blob_name(payload: bytes) -> str:
    """Content-addressed blob file name (stable across table reordering)."""
    return f"{_BLOB_PREFIX}{hashlib.blake2b(payload, digest_size=16).hexdigest()}{_BLOB_SUFFIX}"


def _encode_parts_index(names: list[str]) -> bytes:
    return _PARTS_MAGIC + codec.frame_blobs([name.encode("ascii") for name in names])


def _decode_parts_index(payload: bytes) -> list[str]:
    buffer = memoryview(payload)
    if bytes(buffer[:4]) != _PARTS_MAGIC:
        raise ValueError("not a snapshot partition index (bad magic)")
    blobs, _ = codec.unframe_blobs(buffer, 4)
    return [blob.decode("ascii") for blob in blobs]


def snapshot_format_version() -> int:
    """The partition layout new snapshots are written in (env-overridable)."""
    return int(os.environ.get("REPRO_SNAPSHOT_FORMAT", SNAPSHOT_FORMAT_V2))


# --------------------------------------------------------------------------- #
# Captured state (copy-on-write references, serialized off-lock)


@dataclass
class TableSnapshotState:
    """One table's state at the checkpoint cut — references, not copies.

    Partitions and partition-synopsis lists are published atomically by
    the ingest protocol and their elements are immutable once published,
    so holding the references keeps the cut consistent while the actual
    serialization runs without any lock.
    """

    name: str
    schema: TableSchema
    preprocessor: Preprocessor
    partition_size: int
    params: PairwiseHistParams
    gd_config: GreedyGDConfig
    partitions: list[CompressedStore]
    partition_synopses: list[PairwiseHist]
    synopsis_builds: int
    #: The live merged (queryable) synopsis at the cut.  Persisted in the
    #: exact (``PWHX``) encoding so a warm restart loads it directly
    #: instead of re-merging every partition's synopsis.
    merged: PairwiseHist | None = None
    #: Per partition: ``(blob name, size, crc32)`` when the partition is
    #: already persisted under a content-addressed v2 blob file, ``None``
    #: for partitions never written (new / topped-up tail).  Filled by
    #: :meth:`DurableDatabase._capture` under the durable mutex; when
    #: left ``None`` entirely, the writer reads the same identity off the
    #: partition objects itself.
    persisted_blobs: list[tuple[str, int, int] | None] | None = None


@dataclass
class SnapshotState:
    """Everything one checkpoint persists: the cut LSN plus every table."""

    checkpoint_lsn: int
    tables: list[TableSnapshotState]


@dataclass
class LoadedTable:
    """One table decoded from a snapshot, ready to become a ManagedTable."""

    name: str
    schema: TableSchema
    preprocessor: Preprocessor
    partition_size: int
    params: PairwiseHistParams
    gd_config: GreedyGDConfig
    partitions: list[CompressedStore]
    partition_synopses: list[PairwiseHist]
    synopsis_builds: int
    merged: PairwiseHist | None = None

    def to_store(self) -> PartitionedStore:
        return PartitionedStore(
            table_name=self.name,
            schema=self.schema,
            preprocessor=self.preprocessor,
            partition_size=self.partition_size,
            partitions=self.partitions,
            _column_order=self.schema.names,
            _config=self.gd_config,
        )


@dataclass
class LoadedSnapshot:
    checkpoint_lsn: int
    path: Path
    tables: list[LoadedTable]


# --------------------------------------------------------------------------- #
# Per-table framing


def _encode_table_meta(state: TableSnapshotState) -> bytes:
    parts = [
        codec.pack_string(state.name),
        struct.pack("<qq", state.partition_size, state.synopsis_builds),
        serialize_params(state.params),
        codec.encode_gd_config(state.gd_config),
        codec.encode_schema(state.schema),
        codec.encode_preprocessor(state.preprocessor),
    ]
    return b"".join(parts)


def _decode_table_meta(payload: bytes):
    buffer = memoryview(payload)
    name, offset = codec.unpack_string(buffer, 0)
    partition_size, synopsis_builds = struct.unpack_from("<qq", buffer, offset)
    offset += struct.calcsize("<qq")
    params, offset = deserialize_params(buffer, offset)
    gd_config, offset = codec.decode_gd_config(buffer, offset)
    schema, offset = codec.decode_schema(buffer, offset)
    preprocessor, offset = codec.decode_preprocessor(buffer, offset)
    return name, int(partition_size), int(synopsis_builds), params, gd_config, schema, preprocessor


def _frame_blobs(blobs: list[bytes]) -> bytes:
    return codec.frame_blobs(blobs)


def _unframe_blobs(payload: bytes) -> list[bytes]:
    blobs, _ = codec.unframe_blobs(payload)
    return blobs


# --------------------------------------------------------------------------- #
# Writing


def snapshot_dir_name(checkpoint_lsn: int) -> str:
    return f"{SNAPSHOT_PREFIX}{checkpoint_lsn:020d}"


def _previous_snapshot(
    snapshots_dir: Path,
) -> tuple[Path, dict[str, tuple[int, int]]] | None:
    """The newest published snapshot with a parseable manifest, as the
    hard-link source for sealed blobs: ``(path, {name: (size, crc)})``."""
    for path in _snapshot_paths(snapshots_dir):
        manifest_path = path / _MANIFEST_NAME
        if not manifest_path.is_file():
            continue
        try:
            _, files = deserialize_manifest(manifest_path.read_bytes())
        except (ValueError, struct.error):
            continue
        return path, {name: (size, crc) for name, size, crc in files}
    return None


def write_snapshot(
    snapshots_dir: str | os.PathLike,
    state: SnapshotState,
    keep: int = 2,
    fsync: bool = False,
    format_version: int | None = None,
    blob_stats: dict[str, int] | None = None,
) -> Path:
    """Write one snapshot atomically; returns the published directory.

    ``blob_stats``, when given, is filled in place with per-disposition
    partition-blob counts for this snapshot: ``"linked"`` (reused from the
    previous snapshot — hard link, verified copy, or shared with an earlier
    table in the same snapshot) vs. ``"rewritten"`` (serialized from
    memory).  The return type is unchanged.

    Everything lands in a temp directory first; the manifest is the last
    file written inside it, then one ``os.replace`` publishes the whole
    directory under its final LSN-derived name.  Snapshots beyond the
    ``keep`` most recent are garbage-collected afterwards.

    In the default v2 layout, partition blobs already present in the
    previous snapshot are hard-linked into the new directory instead of
    being re-serialized and re-written — only partitions persisted for
    the first time (the tail), the catalog, the synopsis payloads and
    the manifest cost anything, so checkpoint time is O(tail).

    ``fsync=True`` additionally fsyncs every *newly written* snapshot
    file and the enclosing directories before returning.  Hard-linked
    blobs need no re-fsync: their bytes were fsynced by the checkpoint
    that first wrote them, and the directory fsync persists the new link
    entries.  The caller truncates WAL segments the snapshot covers
    immediately afterwards, so without the fsync a power cut could
    persist the truncation but not the snapshot data;
    process-death-only durability (the default) does not need it.
    """
    if format_version is None:
        format_version = snapshot_format_version()
    snapshots_dir = Path(snapshots_dir)
    snapshots_dir.mkdir(parents=True, exist_ok=True)
    final_path = snapshots_dir / snapshot_dir_name(state.checkpoint_lsn)
    previous = (
        _previous_snapshot(snapshots_dir)
        if format_version >= SNAPSHOT_FORMAT_V2
        else None
    )
    tmp_path = snapshots_dir / f"{_TMP_PREFIX}{state.checkpoint_lsn:020d}-{os.getpid()}"
    if tmp_path.exists():
        shutil.rmtree(tmp_path)
    tmp_path.mkdir(parents=True)
    files: list[tuple[str, int, int]] = []
    written: set[str] = set()
    if blob_stats is None:
        blob_stats = {}
    blob_stats.setdefault("linked", 0)
    blob_stats.setdefault("rewritten", 0)

    def _write(name: str, payload: bytes) -> None:
        path = tmp_path / name
        path.write_bytes(payload)
        if fsync:
            _fsync_path(path)
        files.append((name, len(payload), zlib.crc32(payload)))
        written.add(name)

    def _link(name: str) -> bool:
        """Reuse a blob from the previous snapshot; False on any miss."""
        prev_path, prev_files = previous
        size, crc = prev_files[name]
        src = prev_path / name
        dst = tmp_path / name
        try:
            os.link(src, dst)
        except OSError:
            # No hard-link support (or the file vanished): fall back to a
            # verified copy, degrading to v1-style write cost for this blob.
            try:
                payload = src.read_bytes()
            except OSError:
                return False
            if len(payload) != size or zlib.crc32(payload) != crc:
                return False
            dst.write_bytes(payload)
            if fsync:
                _fsync_path(dst)
        files.append((name, size, crc))
        written.add(name)
        return True

    def _persist_partitions(index: int, table: TableSnapshotState) -> None:
        if format_version < SNAPSHOT_FORMAT_V2:
            _write(
                f"table-{index:05d}.partitions",
                _frame_blobs([dump_partition(p) for p in table.partitions]),
            )
            blob_stats["rewritten"] += len(table.partitions)
            maybe_crash("snapshot.mid_write")
            return
        known = (
            table.persisted_blobs
            if table.persisted_blobs is not None
            else [getattr(p, _BLOB_ATTR, None) for p in table.partitions]
        )
        names: list[str] = []
        for partition, identity in zip(table.partitions, known):
            name = None
            if identity is not None and previous is not None:
                if identity[0] in written:
                    name = identity[0]  # shared with an earlier table
                elif identity[0] in previous[1] and _link(identity[0]):
                    name = identity[0]
            if name is None:
                payload = dump_partition(partition)
                name = _blob_name(payload)
                if name not in written:
                    _write(name, payload)
                setattr(
                    partition, _BLOB_ATTR, (name, len(payload), zlib.crc32(payload))
                )
                blob_stats["rewritten"] += 1
            else:
                blob_stats["linked"] += 1
            names.append(name)
        maybe_crash("snapshot.mid_write")
        _write(f"table-{index:05d}.parts", _encode_parts_index(names))

    _write(_CATALOG_NAME, serialize_catalog([_encode_table_meta(t) for t in state.tables]))
    for index, table in enumerate(state.tables):
        _persist_partitions(index, table)
        _write(
            f"table-{index:05d}.synopses",
            serialize_partitioned(table.partition_synopses, cache=True),
        )
        if table.merged is not None:
            _write(f"table-{index:05d}.merged", serialize(table.merged, exact=True))
    maybe_crash("snapshot.before_manifest")
    manifest_path = tmp_path / _MANIFEST_NAME
    manifest_path.write_bytes(serialize_manifest(state.checkpoint_lsn, files))
    if fsync:
        _fsync_path(manifest_path)
        _fsync_path(tmp_path)
    maybe_crash("snapshot.before_publish")
    if final_path.exists():
        # A snapshot at this LSN already exists (nothing new was logged
        # since); the fresh temp copy is redundant.
        shutil.rmtree(tmp_path)
    else:
        os.replace(tmp_path, final_path)
    if fsync:
        _fsync_path(snapshots_dir)
    _update_current(snapshots_dir, final_path.name, fsync=fsync)
    _collect_garbage(snapshots_dir, keep)
    return final_path


def _fsync_path(path: Path) -> None:
    """fsync one file or directory."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _update_current(snapshots_dir: Path, name: str, fsync: bool = False) -> None:
    """Advisory pointer to the live snapshot (ops convenience; the loader
    trusts manifests, not this file).  Matches the snapshot's durability
    level: with ``fsync`` the tmp file is synced before the rename and
    the directory after it, so a runbook never reads a torn pointer."""
    tmp = snapshots_dir / f"{_CURRENT_NAME}.tmp"
    tmp.write_text(name + "\n")
    if fsync:
        _fsync_path(tmp)
    os.replace(tmp, snapshots_dir / _CURRENT_NAME)
    if fsync:
        _fsync_path(snapshots_dir)


def _snapshot_paths(snapshots_dir: Path) -> list[Path]:
    """Published snapshot directories, newest (highest LSN) first."""
    if not snapshots_dir.is_dir():
        return []
    return sorted(
        (p for p in snapshots_dir.iterdir() if p.is_dir() and p.name.startswith(SNAPSHOT_PREFIX)),
        key=lambda p: p.name,
        reverse=True,
    )


def _collect_garbage(snapshots_dir: Path, keep: int) -> None:
    """Remove snapshots beyond the ``keep`` newest, plus orphaned temp dirs.

    Safe with v2 hard-linked blobs: ``rmtree`` only unlinks the stale
    directory's *names*; a blob's bytes live until the last snapshot
    directory holding a link to it is removed.
    """
    for stale in _snapshot_paths(snapshots_dir)[keep:]:
        shutil.rmtree(stale, ignore_errors=True)
    for orphan in snapshots_dir.glob(f"{_TMP_PREFIX}*"):
        shutil.rmtree(orphan, ignore_errors=True)


# --------------------------------------------------------------------------- #
# Loading


def _validate(path: Path) -> tuple[int, dict[str, bytes]] | None:
    """Checkpoint LSN and verified payloads if the manifest checks out.

    Returning the payloads lets :func:`_load` decode from memory instead
    of reading every file from disk a second time.
    """
    manifest_path = path / _MANIFEST_NAME
    if not manifest_path.is_file():
        return None
    try:
        checkpoint_lsn, files = deserialize_manifest(manifest_path.read_bytes())
    except (ValueError, struct.error):
        return None
    payloads: dict[str, bytes] = {}
    for name, size, crc in files:
        member = path / name
        if not member.is_file():
            return None
        payload = member.read_bytes()
        if len(payload) != size or zlib.crc32(payload) != crc:
            return None
        payloads[name] = payload
    return checkpoint_lsn, payloads


def _load(
    path: Path, checkpoint_lsn: int, payloads: dict[str, bytes]
) -> LoadedSnapshot:
    entries = deserialize_catalog(payloads[_CATALOG_NAME])
    tables: list[LoadedTable] = []
    for index, entry in enumerate(entries):
        name, partition_size, builds, params, gd_config, schema, preprocessor = (
            _decode_table_meta(entry)
        )
        parts_index = payloads.get(f"table-{index:05d}.parts")
        if parts_index is not None:  # v2: per-partition blob files
            blob_names = _decode_parts_index(parts_index)
            blobs = [payloads[blob_name] for blob_name in blob_names]
        else:  # v1: one monolithic framed file per table
            blob_names = None
            blobs = _unframe_blobs(payloads[f"table-{index:05d}.partitions"])
        partitions = [load_partition(b, name, schema, preprocessor) for b in blobs]
        if blob_names is not None:
            # Remember each partition's on-disk identity so the first
            # checkpoint after this restart hard-links the sealed blobs
            # instead of rewriting them.
            for partition, blob_name, blob in zip(partitions, blob_names, blobs):
                setattr(
                    partition,
                    _BLOB_ATTR,
                    (blob_name, len(blob), zlib.crc32(blob)),
                )
        # Per-partition synopses hydrate on first ingest touch (queries run
        # off the merged payload), keeping query-only restarts fast.
        synopses = LazyPartitionSynopses(payloads[f"table-{index:05d}.synopses"])
        merged_payload = payloads.get(f"table-{index:05d}.merged")
        merged = deserialize(merged_payload) if merged_payload is not None else None
        tables.append(
            LoadedTable(
                name=name,
                schema=schema,
                preprocessor=preprocessor,
                partition_size=partition_size,
                params=params,
                gd_config=gd_config,
                partitions=partitions,
                partition_synopses=synopses,
                synopsis_builds=builds,
                merged=merged,
            )
        )
    return LoadedSnapshot(checkpoint_lsn=checkpoint_lsn, path=path, tables=tables)


def read_snapshot_files(
    snapshots_dir: str | os.PathLike,
) -> tuple[int, str, list[tuple[str, bytes]]] | None:
    """``(checkpoint_lsn, dir_name, [(relative_path, contents), ...])`` of
    the newest snapshot that validates, or ``None``.

    The file list includes the manifest, so installing the files verbatim
    into a ``dir_name`` directory elsewhere yields a snapshot that
    :func:`load_latest_snapshot` accepts — this is how a replication
    primary seeds a follower that has fallen behind the WAL horizon.
    """
    for path in _snapshot_paths(Path(snapshots_dir)):
        validated = _validate(path)
        if validated is None:
            continue
        checkpoint_lsn, payloads = validated
        files = [(f"{path.name}/{_MANIFEST_NAME}", (path / _MANIFEST_NAME).read_bytes())]
        files.extend((f"{path.name}/{name}", data) for name, data in payloads.items())
        return checkpoint_lsn, path.name, files
    return None


def load_latest_snapshot(snapshots_dir: str | os.PathLike) -> LoadedSnapshot | None:
    """Load the newest snapshot that validates, or ``None`` if there is none.

    Invalid candidates (partial directory from a crashed checkpoint,
    corrupted file) are skipped, falling back to the next older snapshot —
    never raising for data that the atomic-publish protocol says to
    distrust.
    """
    for path in _snapshot_paths(Path(snapshots_dir)):
        validated = _validate(path)
        if validated is None:
            continue
        checkpoint_lsn, payloads = validated
        try:
            return _load(path, checkpoint_lsn, payloads)
        except (ValueError, struct.error, KeyError):
            continue
    return None
