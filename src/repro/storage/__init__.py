"""Durable storage: write-ahead log, snapshot checkpoints, crash recovery.

The subsystem that makes the whole query service restartable:

* :mod:`repro.storage.wal` — length-prefixed, checksummed, segment-rotated
  redo log of every committed mutation;
* :mod:`repro.storage.snapshot` — atomic (temp dir + rename) checkpoint
  images of the catalog, GD-compressed partitions and PWHP synopses;
* :mod:`repro.storage.durable` — :class:`DurableDatabase`, the WAL-logged
  database with ``checkpoint()`` and the ``open()`` recovery path
  (also reachable as ``Database.open(path)``);
* :mod:`repro.storage.checkpointer` — background snapshot thread;
* :mod:`repro.storage.codec` — the shared binary framing helpers every
  on-disk format is built from (plus the WAL/snapshot payload codecs);
* :mod:`repro.storage.cluster` — cluster manifest + per-shard data-dir
  layout for the multi-process sharded deployment;
* :mod:`repro.storage.faults` — crash-injection points for recovery tests.

Names are resolved lazily (PEP 562): :mod:`repro.storage.codec` sits at
the *bottom* of the dependency stack (``core.serialization`` and
``gd.partitioned`` import its framing primitives), so this package's
``__init__`` must not eagerly pull in :mod:`repro.storage.durable` —
which imports the service layer — when only ``codec`` is wanted.
"""

_EXPORTS = {
    "BackgroundCheckpointer": ("checkpointer", "BackgroundCheckpointer"),
    "CheckpointResult": ("durable", "CheckpointResult"),
    "DurableDatabase": ("durable", "DurableDatabase"),
    "LoadedSnapshot": ("snapshot", "LoadedSnapshot"),
    "RecoveryInfo": ("durable", "RecoveryInfo"),
    "SimulatedCrash": ("faults", "SimulatedCrash"),
    "SnapshotState": ("snapshot", "SnapshotState"),
    "WAL_DROP": ("durable", "WAL_DROP"),
    "WAL_INGEST": ("durable", "WAL_INGEST"),
    "WAL_REGISTER": ("durable", "WAL_REGISTER"),
    "WalRecord": ("wal", "WalRecord"),
    "WalScanReport": ("wal", "WalScanReport"),
    "WriteAheadLog": ("wal", "WriteAheadLog"),
    "ClusterLayout": ("cluster", "ClusterLayout"),
    "ClusterManifest": ("cluster", "ClusterManifest"),
    "ClusterTableMeta": ("cluster", "ClusterTableMeta"),
    "load_latest_snapshot": ("snapshot", "load_latest_snapshot"),
    "maybe_crash": ("faults", "maybe_crash"),
    "set_crash_hook": ("faults", "set_crash_hook"),
    "write_snapshot": ("snapshot", "write_snapshot"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    value = getattr(import_module(f".{module_name}", __name__), attribute)
    globals()[name] = value  # cache so the lookup runs once
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
