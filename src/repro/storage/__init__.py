"""Durable storage: write-ahead log, snapshot checkpoints, crash recovery.

The subsystem that makes the whole query service restartable:

* :mod:`repro.storage.wal` — length-prefixed, checksummed, segment-rotated
  redo log of every committed mutation;
* :mod:`repro.storage.snapshot` — atomic (temp dir + rename) checkpoint
  images of the catalog, GD-compressed partitions and PWHP synopses;
* :mod:`repro.storage.durable` — :class:`DurableDatabase`, the WAL-logged
  database with ``checkpoint()`` and the ``open()`` recovery path
  (also reachable as ``Database.open(path)``);
* :mod:`repro.storage.checkpointer` — background snapshot thread;
* :mod:`repro.storage.faults` — crash-injection points for recovery tests.
"""

from .checkpointer import BackgroundCheckpointer
from .durable import (
    WAL_DROP,
    WAL_INGEST,
    WAL_REGISTER,
    CheckpointResult,
    DurableDatabase,
    RecoveryInfo,
)
from .faults import SimulatedCrash, maybe_crash, set_crash_hook
from .snapshot import LoadedSnapshot, SnapshotState, load_latest_snapshot, write_snapshot
from .wal import WalRecord, WalScanReport, WriteAheadLog

__all__ = [
    "BackgroundCheckpointer",
    "CheckpointResult",
    "DurableDatabase",
    "LoadedSnapshot",
    "RecoveryInfo",
    "SimulatedCrash",
    "SnapshotState",
    "WAL_DROP",
    "WAL_INGEST",
    "WAL_REGISTER",
    "WalRecord",
    "WalScanReport",
    "WriteAheadLog",
    "load_latest_snapshot",
    "maybe_crash",
    "set_crash_hook",
    "write_snapshot",
]
