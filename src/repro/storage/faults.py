"""Crash-injection points for durability testing.

The WAL, snapshot writer and checkpointer call :func:`maybe_crash` at the
moments where a real crash would be most damaging (half-written record,
unpublished snapshot, pre-truncation).  Two mechanisms arm a point:

* ``REPRO_CRASH_POINT=<point>`` in the environment makes the *process*
  die with ``os._exit`` — used by the subprocess server tests to simulate
  ``kill -9`` at a precise byte offset,
* :func:`set_crash_hook` installs an in-process callable — unit tests make
  it raise :class:`SimulatedCrash` and then "restart" by re-opening the
  data directory.

In production both are inert: one env lookup per call.
"""

from __future__ import annotations

import os
from typing import Callable

#: Exit status used by the env-armed crash, distinguishable from clean exits.
CRASH_EXIT_STATUS = 137

_hook: Callable[[str], None] | None = None


class SimulatedCrash(BaseException):
    """Raised by test hooks to model the process dying at a crash point.

    Derives from :class:`BaseException` so ``except Exception`` recovery
    code cannot accidentally swallow a simulated crash.
    """


def set_crash_hook(hook: Callable[[str], None] | None) -> None:
    """Install (or with ``None`` remove) the in-process crash hook."""
    global _hook
    _hook = hook


def maybe_crash(point: str) -> None:
    """Die here if this crash point is armed; no-op otherwise."""
    if _hook is not None:
        _hook(point)
    if os.environ.get("REPRO_CRASH_POINT") == point:
        os._exit(CRASH_EXIT_STATUS)


def crash_points_armed() -> bool:
    """Whether any crash injection is active at all.

    Lets hot paths skip work that exists only to make an injected crash
    realistic (e.g. the WAL's split-and-flush torn-record write).
    """
    return _hook is not None or "REPRO_CRASH_POINT" in os.environ
