"""Cluster manifest + per-shard data-directory layout.

A sharded cluster roots all durable state under one directory:

.. code-block:: text

    cluster-root/
      CLUSTER          # binary manifest: shard count + table catalog
      shard-00000/     # one full DurableDatabase data dir per shard
        wal/
        snapshots/
      shard-00001/
        ...

Each shard directory is an ordinary
:class:`~repro.storage.durable.DurableDatabase` data directory — the
shard recovers itself (snapshot + WAL replay) exactly like a single-node
service.  The ``CLUSTER`` manifest carries what the *front end* needs to
come back: the shard count (routing is ``hash % num_shards``, so the
count is part of the data's identity — reopening with a different count
would misroute every row) and, per registered table, the schema,
construction params and partition size so lazily-registered shards (those
that had not yet received a row for a table) can be registered on the
next ingest that routes rows to them.

The manifest is written atomically (temp file + ``os.replace``) on every
catalog change, with the same no-pickle binary framing as everything
else on disk.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from pathlib import Path

from ..core.params import PairwiseHistParams
from ..core.serialization import deserialize_params, serialize_params
from ..data.schema import TableSchema
from . import codec

MANIFEST_NAME = "CLUSTER"
_MANIFEST_MAGIC = b"PWCM"
_MANIFEST_VERSION = 1
_SHARD_PREFIX = "shard-"


@dataclass
class ClusterTableMeta:
    """Catalog entry for one logical table of the cluster."""

    name: str
    schema: TableSchema
    params: PairwiseHistParams
    partition_size: int | None = None

    def encode(self) -> bytes:
        return b"".join(
            [
                codec.pack_string(self.name),
                struct.pack(
                    "<q", -1 if self.partition_size is None else self.partition_size
                ),
                serialize_params(self.params),
                codec.encode_schema(self.schema),
            ]
        )

    @classmethod
    def decode(cls, payload: bytes) -> "ClusterTableMeta":
        buffer = memoryview(payload)
        name, offset = codec.unpack_string(buffer, 0)
        (partition_size,) = struct.unpack_from("<q", buffer, offset)
        offset += 8
        params, offset = deserialize_params(buffer, offset)
        schema, _ = codec.decode_schema(buffer, offset)
        return cls(
            name=name,
            schema=schema,
            params=params,
            partition_size=None if partition_size < 0 else int(partition_size),
        )


@dataclass
class ClusterManifest:
    """Everything a cluster restart needs that no single shard knows."""

    num_shards: int
    tables: list[ClusterTableMeta] = field(default_factory=list)

    def encode(self) -> bytes:
        header = _MANIFEST_MAGIC + struct.pack(
            "<HI", _MANIFEST_VERSION, self.num_shards
        )
        return header + codec.frame_blobs([t.encode() for t in self.tables])

    @classmethod
    def decode(cls, payload: bytes) -> "ClusterManifest":
        buffer = memoryview(payload)
        if bytes(buffer[:4]) != _MANIFEST_MAGIC:
            raise ValueError("not a cluster manifest (bad magic)")
        version, num_shards = struct.unpack_from("<HI", buffer, 4)
        if version != _MANIFEST_VERSION:
            raise ValueError(f"unsupported cluster manifest version {version}")
        blobs, _ = codec.unframe_blobs(buffer, 4 + struct.calcsize("<HI"))
        return cls(
            num_shards=int(num_shards),
            tables=[ClusterTableMeta.decode(blob) for blob in blobs],
        )


def shard_dir_name(index: int) -> str:
    return f"{_SHARD_PREFIX}{index:05d}"


def replica_dir_name(index: int, replica: int) -> str:
    """Data directory name for replica ``replica`` of shard ``index``."""
    return f"{_SHARD_PREFIX}{index:05d}-replica-{replica:02d}"


def epoch_file_name(index: int) -> str:
    """Per-shard epoch (fencing) file name at the cluster root."""
    return f"{_SHARD_PREFIX}{index:05d}.epoch"


@dataclass
class ClusterLayout:
    """The on-disk shape of one cluster root directory."""

    root: Path

    def __init__(self, root) -> None:
        self.root = Path(root)

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def shard_path(self, index: int) -> Path:
        return self.root / shard_dir_name(index)

    def shard_paths(self, num_shards: int) -> list[Path]:
        return [self.shard_path(i) for i in range(num_shards)]

    def replica_path(self, index: int, replica: int) -> Path:
        return self.root / replica_dir_name(index, replica)

    def epoch_path(self, index: int) -> Path:
        return self.root / epoch_file_name(index)

    def detect_replicas(self, num_shards: int) -> int:
        """Replicas-per-shard inferred from the directory listing.

        Replica directories are created eagerly for every shard, so the
        count of shard 0's replica dirs is the cluster-wide setting.
        """
        count = 0
        while self.replica_path(0, count).is_dir():
            count += 1
        return count

    def ensure(self, num_shards: int, replicas: int = 0) -> None:
        """Create the root and every shard (and replica) data directory."""
        self.root.mkdir(parents=True, exist_ok=True)
        for path in self.shard_paths(num_shards):
            path.mkdir(parents=True, exist_ok=True)
        for index in range(num_shards):
            for replica in range(replicas):
                self.replica_path(index, replica).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Manifest I/O

    def write_manifest(self, manifest: ClusterManifest) -> None:
        """Atomically publish the manifest (temp file + rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / f"{MANIFEST_NAME}.tmp-{os.getpid()}"
        tmp.write_bytes(manifest.encode())
        os.replace(tmp, self.manifest_path)

    def read_manifest(self) -> ClusterManifest | None:
        """The published manifest, or ``None`` for a fresh directory."""
        try:
            payload = self.manifest_path.read_bytes()
        except FileNotFoundError:
            return None
        return ClusterManifest.decode(payload)
