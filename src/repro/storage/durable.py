"""Durable database: WAL-logged mutations, checkpoints, crash recovery.

:class:`DurableDatabase` extends the in-memory
:class:`~repro.service.database.Database` with a redo log and snapshot
checkpoints:

* every mutation (register / committed ingest / drop) appends one record
  to the :class:`~repro.storage.wal.WriteAheadLog` *atomically* with its
  in-memory publication — a single ``_durable_mutex`` orders appends,
  catalog inserts and synopsis-pointer swaps against checkpoint captures,
  so a checkpoint always sees a consistent cut of (state, LSN);
* :meth:`checkpoint` captures copy-on-write references under that mutex
  (microseconds — queries never block, writers block only for the
  capture, never the serialization), writes an atomic snapshot directory
  and truncates WAL segments the snapshot covers;
* :meth:`open` recovers: load the newest valid snapshot, replay WAL
  records past its checkpoint LSN, rebuild only the partition synopses
  the replay touched — each with the table size as of the ingest that
  last touched it, so the recovered synopses are bit-identical to an
  uninterrupted run — and drop obsolete segments.

The lock ordering is ``table write lock -> _durable_mutex`` (the
concurrent front end commits under the table's write lock); the capture
path takes only ``_durable_mutex``, so checkpoints cannot deadlock with
ingest and never touch the reader-writer locks at all.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.engine import PairwiseHistEngine
from ..core.synopsis import PairwiseHist
from ..data.table import Table
from ..obs import metrics as obs_metrics
from ..service.database import Database, IngestResult, ManagedTable, StagedIngest
from . import codec
from .faults import maybe_crash
from .snapshot import (
    _BLOB_ATTR,
    SNAPSHOT_PREFIX,
    LoadedTable,
    SnapshotState,
    TableSnapshotState,
    load_latest_snapshot,
    write_snapshot,
)
from .wal import DEFAULT_SEGMENT_BYTES, WriteAheadLog

#: WAL record types.
WAL_REGISTER = 1
WAL_INGEST = 2
WAL_DROP = 3

_CHECKPOINT_SECONDS = obs_metrics.histogram(
    "aqp_checkpoint_seconds",
    "Wall time of one checkpoint call, including the no-op fast path.",
)
_CHECKPOINTS = obs_metrics.counter(
    "aqp_checkpoints_total",
    "Checkpoint calls, by outcome (written vs. skipped-no-change).",
    labelnames=("outcome",),
)
_CHECKPOINT_BLOBS = obs_metrics.counter(
    "aqp_checkpoint_blobs_total",
    "Partition blobs per written checkpoint: hard-linked from the previous "
    "snapshot vs. rewritten from memory.",
    labelnames=("disposition",),
)


@dataclass
class CheckpointResult:
    """Outcome of one :meth:`DurableDatabase.checkpoint` call."""

    checkpoint_lsn: int
    path: Path | None
    tables: int
    seconds: float
    #: True when nothing was logged since the previous checkpoint, so no
    #: snapshot was written.
    skipped: bool = False


@dataclass
class RecoveryInfo:
    """What :meth:`DurableDatabase.open` found and did (observability)."""

    snapshot_lsn: int
    snapshot_tables: int
    replayed_records: int
    replayed_rows: int
    rebuilt_partitions: int
    torn_wal_bytes: int
    truncated_segments: list[str] = field(default_factory=list)
    seconds: float = 0.0


class DurableDatabase(Database):
    """A :class:`Database` whose state survives process death."""

    def __init__(
        self,
        path,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: bool = False,
        keep_snapshots: int = 2,
        _recovering: bool = False,
        **database_kwargs,
    ) -> None:
        super().__init__(**database_kwargs)
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.snapshots_dir = self.path / "snapshots"
        self.wal = WriteAheadLog(
            self.path / "wal", segment_max_bytes=segment_max_bytes, fsync=fsync
        )
        if not _recovering and self._has_persisted_state():
            # A direct construction starts with an empty catalog; letting
            # it proceed on a populated directory would checkpoint that
            # empty catalog and truncate the old tables' WAL away.
            self.wal.close()
            raise ValueError(
                f"data directory {str(self.path)!r} already contains state; "
                "use DurableDatabase.open(path) to recover it"
            )
        self.keep_snapshots = keep_snapshots
        #: Orders WAL appends + in-memory publications against checkpoint
        #: captures (see module docstring for the locking discipline).
        self._durable_mutex = threading.Lock()
        self._checkpoint_mutex = threading.Lock()
        self._last_checkpoint_lsn = 0
        self.recovery_info: RecoveryInfo | None = None
        #: Optional hook returning the replication retention floor (the
        #: minimum follower-acknowledged LSN, or ``None`` when no follower
        #: is registered).  Checkpoints keep every WAL record above it so
        #: a live subscriber can always resume from the log.
        self.retention_floor = None

    # ------------------------------------------------------------------ #
    # Lifecycle

    def _has_persisted_state(self) -> bool:
        if self.wal.last_lsn > 0:
            return True
        return self.snapshots_dir.is_dir() and any(
            self.snapshots_dir.glob(f"{SNAPSHOT_PREFIX}*")
        )

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurableDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Logged mutations

    def _publish_registration(self, managed: ManagedTable, source: Table) -> None:
        payload = codec.encode_register_payload(
            source, managed.params, managed.store.partition_size
        )
        with self._durable_mutex:
            if managed.name in self._tables:
                raise ValueError(f"table {managed.name!r} is already registered")
            self.wal.append(WAL_REGISTER, payload)
            self._tables[managed.name] = managed

    def commit_ingest(self, staged: StagedIngest) -> IngestResult:
        if staged.synopses is None or staged.rows is None:
            # Nothing was appended (or a replay-internal commit); nothing
            # to make durable.
            return super().commit_ingest(staged)
        payload = codec.encode_ingest_payload(staged.table_name, staged.rows)
        with self._durable_mutex:
            # Validate everything the in-memory commit can reject *before*
            # the WAL append: a record whose commit then failed would be
            # replayed on recovery (or, staged against a dropped table,
            # crash recovery outright), diverging recovered state from
            # the live run.
            self.table(staged.table_name)
            lsn = self.wal.append(WAL_INGEST, payload)
            try:
                return super().commit_ingest(staged)
            except BaseException:
                # The commit published nothing; scrub the record so the
                # WAL keeps exactly the mutations the live run applied.
                self.wal.rollback_last(lsn)
                raise

    def drop(self, name: str) -> None:
        with self._durable_mutex:
            self.table(name)  # KeyError naming the catalog, before logging
            self.wal.append(WAL_DROP, codec.encode_drop_payload(name))
            del self._tables[name]

    def persist(self) -> int:
        """fsync the WAL; every acknowledged mutation is now on stable media."""
        return self.wal.sync()

    # ------------------------------------------------------------------ #
    # Replication support

    @property
    def last_checkpoint_lsn(self) -> int:
        """LSN covered by the most recent checkpoint (0 before the first)."""
        return self._last_checkpoint_lsn

    def _retention_floor_lsn(self) -> int | None:
        hook = self.retention_floor
        if hook is None:
            return None
        try:
            return hook()
        except Exception:
            # A broken floor hook must not fail checkpoints; worst case
            # the truncation is less conservative than replication wants
            # and a fallen-behind follower reseeds from a snapshot.
            return None

    def uninstall_table(self, name: str) -> None:
        """Remove a table from the catalog *without* logging a drop.

        Replication reseed only: the follower is about to replace its
        entire catalog with the primary's snapshot, and its WAL is reset
        alongside, so a logged drop would be both wrong (the primary never
        dropped it) and unreplayable.
        """
        with self._durable_mutex:
            self._tables.pop(name, None)

    # ------------------------------------------------------------------ #
    # Checkpoints

    def _capture(self) -> SnapshotState:
        """Grab copy-on-write references to every table's committed state.

        Runs under ``_durable_mutex`` so the set of references and the
        WAL's last LSN form one consistent cut: a record is reflected in
        the captured state iff its LSN is ``<= checkpoint_lsn``.  Captures
        ``committed_partitions`` — never ``store.partitions``, which a
        staged-but-uncommitted ingest may already have advanced.

        Each partition is also classified as sealed-and-already-persisted
        (it carries the blob identity a previous checkpoint — or the
        snapshot load — stamped on it) vs. new/tail (``None``); the
        snapshot writer checks the identities against the previous
        snapshot's manifest and hard-links the persisted blobs instead of
        rewriting them, which is what makes checkpoints O(tail).
        """
        with self._durable_mutex:
            tables = []
            for managed in self._tables.values():
                partitions = (
                    managed.committed_partitions
                    if managed.committed_partitions is not None
                    else managed.store.partitions
                )
                tables.append(
                    TableSnapshotState(
                        name=managed.name,
                        schema=managed.store.schema,
                        preprocessor=managed.store.preprocessor,
                        partition_size=managed.store.partition_size,
                        params=managed.params,
                        gd_config=managed.store._config,
                        partitions=partitions,
                        partition_synopses=managed.partition_synopses,
                        synopsis_builds=managed.synopsis_builds,
                        merged=managed.engine.synopsis,
                        persisted_blobs=[
                            getattr(p, _BLOB_ATTR, None) for p in partitions
                        ],
                    )
                )
            return SnapshotState(checkpoint_lsn=self.wal.last_lsn, tables=tables)

    def checkpoint(self) -> CheckpointResult:
        """Write a snapshot of the current committed state, then truncate
        WAL segments it makes obsolete.  Cheap when nothing changed."""
        with self._checkpoint_mutex:
            start = time.perf_counter()
            state = self._capture()
            if state.checkpoint_lsn == self._last_checkpoint_lsn:
                elapsed = time.perf_counter() - start
                _CHECKPOINT_SECONDS.observe(elapsed)
                _CHECKPOINTS.inc(outcome="skipped")
                return CheckpointResult(
                    checkpoint_lsn=state.checkpoint_lsn,
                    path=None,
                    tables=len(state.tables),
                    seconds=elapsed,
                    skipped=True,
                )
            blob_stats: dict[str, int] = {}
            path = write_snapshot(
                self.snapshots_dir,
                state,
                keep=self.keep_snapshots,
                # Match the WAL's durability level: with --fsync the
                # snapshot must be on stable media before the WAL records
                # it covers are truncated away.
                fsync=self.wal.fsync,
                blob_stats=blob_stats,
            )
            maybe_crash("checkpoint.before_truncate")
            self.wal.truncate_through(
                state.checkpoint_lsn, retain_after_lsn=self._retention_floor_lsn()
            )
            self._last_checkpoint_lsn = state.checkpoint_lsn
            elapsed = time.perf_counter() - start
            _CHECKPOINT_SECONDS.observe(elapsed)
            _CHECKPOINTS.inc(outcome="written")
            for disposition, count in blob_stats.items():
                if count:
                    _CHECKPOINT_BLOBS.inc(count, disposition=disposition)
            return CheckpointResult(
                checkpoint_lsn=state.checkpoint_lsn,
                path=path,
                tables=len(state.tables),
                seconds=elapsed,
            )

    # ------------------------------------------------------------------ #
    # Recovery

    @classmethod
    def open(cls, path, **kwargs) -> "DurableDatabase":
        """Open a data directory: load snapshot, replay WAL, truncate.

        Replay never re-appends to the WAL, so a crash *during or after*
        recovery (before the next checkpoint) simply replays the same
        records from the same snapshot again — recovery is idempotent.
        """
        start = time.perf_counter()
        db = cls(path, _recovering=True, **kwargs)
        snapshot = load_latest_snapshot(db.snapshots_dir)
        checkpoint_lsn = 0
        snapshot_tables = 0
        if snapshot is not None:
            checkpoint_lsn = snapshot.checkpoint_lsn
            snapshot_tables = len(snapshot.tables)
            for loaded in snapshot.tables:
                db._install_loaded(loaded)
            if db.wal.last_lsn < checkpoint_lsn:
                # The log scan ended below the snapshot: corruption ate
                # records in segments the crashed checkpoint never got to
                # truncate.  Everything still scannable is covered by the
                # snapshot, so restart the log past it — otherwise new
                # mutations would reuse covered LSNs and the next
                # checkpoint would sort *below* the stale snapshot,
                # silently losing them on the following restart.
                db.wal.reset_to(checkpoint_lsn)
        replayed_records, replayed_rows, rebuilt = db._replay(checkpoint_lsn)
        db._finalize_recovery()
        truncated = db.wal.truncate_through(checkpoint_lsn)
        db._last_checkpoint_lsn = checkpoint_lsn
        db.recovery_info = RecoveryInfo(
            snapshot_lsn=checkpoint_lsn,
            snapshot_tables=snapshot_tables,
            replayed_records=replayed_records,
            replayed_rows=replayed_rows,
            rebuilt_partitions=rebuilt,
            torn_wal_bytes=db.wal.last_scan.torn_bytes,
            truncated_segments=truncated,
            seconds=time.perf_counter() - start,
        )
        return db

    def _install_loaded(self, loaded: LoadedTable) -> None:
        """Turn one snapshot table into a live ManagedTable (no rebuilds).

        The queryable synopsis comes straight from the snapshot's exact
        (``PWHX``) merged payload when present; re-merging every partition
        would dominate the restart otherwise.  Its construction params are
        swapped back to the catalog's full-fidelity copy (the wire header
        only carries the bound-recomputation fields).  Replay may still
        replace it (``_rebuild_replayed``); a snapshot without a merged
        payload is merged once after replay settles
        (``_finalize_recovery``).
        """
        from dataclasses import replace

        store = loaded.to_store()
        merged = loaded.merged
        if merged is not None and merged.params != loaded.params:
            merged = replace(merged, params=loaded.params)
        engine = PairwiseHistEngine(
            synopsis=merged,
            preprocessor=loaded.preprocessor,
            table_name=loaded.name,
            store=None,
        )
        self._tables[loaded.name] = ManagedTable(
            name=loaded.name,
            store=store,
            params=loaded.params,
            # Kept as the snapshot's lazy sequence: per-partition synopses
            # hydrate on first ingest touch, not at open() (queries only
            # need the merged synopsis installed below).
            partition_synopses=loaded.partition_synopses,
            engine=engine,
            synopsis_builds=loaded.synopsis_builds,
            committed_partitions=store.partitions,
        )

    def _replay(self, checkpoint_lsn: int) -> tuple[int, int, int]:
        """Apply WAL records past the checkpoint; rebuild touched synopses.

        Appends are applied store-level only while scanning; per partition
        we remember the table's row count as of the *last* record touching
        it, then rebuild each touched partition once with that row count —
        the same bin budget the live run used for its final rebuild of
        that partition, so recovered synopses match exactly at a fraction
        of the live run's rebuild cost.
        """
        replayed_records = 0
        replayed_rows = 0
        #: table -> {partition index -> table rows as of last touch}
        pending: dict[str, dict[int, int]] = {}
        #: table -> builds the live run would have counted (one per
        #: affected partition per ingest, even when replay coalesces the
        #: actual rebuilds) — keeps the maintenance-cost metric identical.
        pending_builds: dict[str, int] = {}
        for record in self.wal.read_records(after_lsn=checkpoint_lsn):
            replayed_records += 1
            if record.rtype == WAL_REGISTER:
                table, params, partition_size = codec.decode_register_payload(
                    record.payload
                )
                pending.pop(table.name, None)
                pending_builds.pop(table.name, None)
                self._tables.pop(table.name, None)
                managed = self._build_managed(table, params, partition_size)
                self._tables[table.name] = managed
            elif record.rtype == WAL_INGEST:
                name, batch = codec.decode_ingest_payload(record.payload)
                managed = self._tables[name]
                affected = managed.store.append(batch)
                replayed_rows += batch.num_rows
                touched = pending.setdefault(name, {})
                pending_builds[name] = pending_builds.get(name, 0) + len(affected)
                total = managed.store.num_rows
                for index in affected:
                    touched[index] = total
            elif record.rtype == WAL_DROP:
                name = codec.decode_drop_payload(record.payload)
                pending.pop(name, None)
                pending_builds.pop(name, None)
                self._tables.pop(name, None)
            else:
                raise ValueError(f"unknown WAL record type {record.rtype}")
        rebuilt = self._rebuild_replayed(pending, pending_builds)
        return replayed_records, replayed_rows, rebuilt

    def _rebuild_replayed(
        self, pending: dict[str, dict[int, int]], pending_builds: dict[str, int]
    ) -> int:
        rebuilt = 0
        for name, touched in pending.items():
            managed = self._tables.get(name)
            if managed is None:
                continue
            synopses: list[PairwiseHist | None] = list(managed.partition_synopses)
            synopses.extend([None] * (managed.store.num_partitions - len(synopses)))
            by_total: dict[int, list[int]] = {}
            for index, total in touched.items():
                by_total.setdefault(total, []).append(index)
            for total, indices in sorted(by_total.items()):
                built = self._build_synopses(
                    managed.store,
                    managed.params,
                    [managed.store.partitions[i] for i in indices],
                    total_rows=total,
                )
                for index, synopsis in zip(indices, built):
                    synopses[index] = synopsis
                rebuilt += len(indices)
            managed.partition_synopses = synopses
            managed.synopsis_builds += pending_builds.get(name, len(touched))
            managed.engine.refresh_synopsis(
                PairwiseHist.merge(list(synopses), params=managed.params)
            )
            managed.committed_partitions = managed.store.partitions
        return rebuilt

    def _finalize_recovery(self) -> None:
        """Compose the queryable synopsis for tables replay left untouched."""
        for managed in self._tables.values():
            if managed.engine.synopsis is None:
                managed.engine.refresh_synopsis(
                    PairwiseHist.merge(
                        list(managed.partition_synopses), params=managed.params
                    )
                )
