"""Background checkpointer: periodic snapshots off the serving path.

Runs :meth:`~repro.storage.durable.DurableDatabase.checkpoint` on a
daemon thread at a fixed interval.  The checkpoint itself captures
copy-on-write references in microseconds and serializes off-lock, so the
serving threads never notice it; a checkpoint that finds nothing new in
the WAL is skipped outright.  Failures are recorded (``last_error``) and
retried next tick rather than killing the thread — a full disk must not
take the query service down with it.
"""

from __future__ import annotations

import threading

from ..obs import log as obs_log
from .durable import CheckpointResult

_LOG = obs_log.get_logger("checkpointer")


class BackgroundCheckpointer:
    """Periodically checkpoint a durable database (or durable service).

    ``target`` is anything with a ``checkpoint()`` method returning a
    :class:`~repro.storage.durable.CheckpointResult` — a
    :class:`~repro.storage.durable.DurableDatabase` or a query service
    wrapping one.
    """

    def __init__(self, target, interval_seconds: float = 30.0) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.target = target
        self.interval_seconds = interval_seconds
        self.checkpoints_written = 0
        self.checkpoints_skipped = 0
        self.last_result: CheckpointResult | None = None
        self.last_error: Exception | None = None
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #

    def start(self) -> "BackgroundCheckpointer":
        if self._thread is not None:
            raise RuntimeError("the checkpointer is already running")
        self._stop.clear()
        # A trigger() or stop() from a previous run leaves the wake flag
        # set; without clearing it a restarted checkpointer would fire
        # immediately instead of waiting its full interval.
        self._wake.clear()
        self._thread = threading.Thread(
            target=self._run, name="aqp-checkpointer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_checkpoint: bool = True) -> CheckpointResult | None:
        """Stop the thread; by default take one last checkpoint on the way
        out so a clean shutdown restarts from a snapshot, not a replay.

        Returns the final checkpoint's result so callers can tell a clean
        shutdown actually persisted — ``None`` means the final checkpoint
        failed (the cause is in :attr:`last_error`), was not requested, or
        the checkpointer was not running."""
        if self._thread is None:
            return None
        self._stop.set()
        self._wake.set()
        self._thread.join()
        self._thread = None
        if final_checkpoint:
            return self._checkpoint_once()
        return None

    def trigger(self) -> None:
        """Ask the thread to checkpoint now instead of at the next tick."""
        self._wake.set()

    def __enter__(self) -> "BackgroundCheckpointer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self.interval_seconds)
            self._wake.clear()
            if self._stop.is_set():
                break
            self._checkpoint_once()

    def _checkpoint_once(self) -> CheckpointResult | None:
        try:
            result = self.target.checkpoint()
        except Exception as exc:
            self.last_error = exc
            _LOG.error("checkpoint_failed", error=str(exc), error_type=type(exc).__name__)
            return None
        self.last_error = None
        self.last_result = result
        if result.skipped:
            self.checkpoints_skipped += 1
            _LOG.debug("checkpoint_skipped", checkpoint_lsn=result.checkpoint_lsn)
        else:
            self.checkpoints_written += 1
            _LOG.info(
                "checkpoint_written",
                checkpoint_lsn=result.checkpoint_lsn,
                tables=result.tables,
                seconds=round(result.seconds, 6),
            )
        return result
