"""SQL front-end: tokenizer, parser and the query / predicate AST."""

from .ast import (
    AggregateFunction,
    Aggregation,
    ComparisonOp,
    Condition,
    LogicalOp,
    Predicate,
    PredicateNode,
    Query,
    predicate_columns,
    predicate_conditions,
)
from .parser import ParseError, parse_predicate, parse_query
from .predicate import condition_mask, predicate_mask, selectivity
from .tokenizer import Token, TokenType, TokenizeError, tokenize

__all__ = [
    "AggregateFunction",
    "Aggregation",
    "ComparisonOp",
    "Condition",
    "LogicalOp",
    "Predicate",
    "PredicateNode",
    "Query",
    "predicate_columns",
    "predicate_conditions",
    "ParseError",
    "parse_query",
    "parse_predicate",
    "condition_mask",
    "predicate_mask",
    "selectivity",
    "Token",
    "TokenType",
    "TokenizeError",
    "tokenize",
]
