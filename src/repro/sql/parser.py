"""Recursive-descent parser for the PairwiseHist query class.

Grammar (informally)::

    query      := SELECT agg (',' agg)* FROM identifier
                  [WHERE or_expr] [GROUP BY identifier] [';']
    agg        := FUNC '(' (identifier | '*') ')'
    or_expr    := and_expr (OR and_expr)*
    and_expr   := term (AND term)*
    term       := condition | '(' or_expr ')'
    condition  := identifier OP literal

AND binds tighter than OR (operator precedence noted in §5.2 of the paper),
and parentheses override precedence.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..obs import metrics as obs_metrics
from .ast import (
    AggregateFunction,
    Aggregation,
    ComparisonOp,
    Condition,
    LogicalOp,
    Predicate,
    PredicateNode,
    Query,
)
from .tokenizer import Token, TokenType, tokenize


class ParseError(ValueError):
    """Raised when the SQL text does not match the supported grammar."""


_OPERATORS = {
    "<": ComparisonOp.LT,
    ">": ComparisonOp.GT,
    "<=": ComparisonOp.LE,
    ">=": ComparisonOp.GE,
    "=": ComparisonOp.EQ,
    "==": ComparisonOp.EQ,
    "!=": ComparisonOp.NE,
    "<>": ComparisonOp.NE,
}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -------------------------------------------------------------- #
    # Token helpers

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._current
        if not token.matches(TokenType.KEYWORD, keyword):
            raise ParseError(f"expected {keyword} at position {token.position}, got {token.value!r}")
        return self._advance()

    def _expect_punctuation(self, char: str) -> Token:
        token = self._current
        if not (token.type is TokenType.PUNCTUATION and token.value == char):
            raise ParseError(f"expected {char!r} at position {token.position}, got {token.value!r}")
        return self._advance()

    def _accept_punctuation(self, char: str) -> bool:
        if self._current.type is TokenType.PUNCTUATION and self._current.value == char:
            self._advance()
            return True
        return False

    def _accept_keyword(self, keyword: str) -> bool:
        if self._current.matches(TokenType.KEYWORD, keyword):
            self._advance()
            return True
        return False

    # -------------------------------------------------------------- #
    # Grammar rules

    def parse_query(self) -> Query:
        self._expect_keyword("SELECT")
        aggregations = [self._parse_aggregation()]
        while self._accept_punctuation(","):
            aggregations.append(self._parse_aggregation())
        self._expect_keyword("FROM")
        table_token = self._advance()
        if table_token.type is not TokenType.IDENTIFIER:
            raise ParseError(f"expected table name at position {table_token.position}")
        predicate: Predicate | None = None
        group_by: str | None = None
        if self._accept_keyword("WHERE"):
            predicate = self._parse_or_expr()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_token = self._advance()
            if group_token.type is not TokenType.IDENTIFIER:
                raise ParseError(f"expected GROUP BY column at position {group_token.position}")
            group_by = group_token.value
        self._accept_punctuation(";")
        if self._current.type is not TokenType.END:
            raise ParseError(
                f"unexpected trailing input at position {self._current.position}: {self._current.value!r}"
            )
        return Query(aggregations=aggregations, table=table_token.value, predicate=predicate, group_by=group_by)

    def _parse_aggregation(self) -> Aggregation:
        func_token = self._advance()
        if func_token.type is not TokenType.IDENTIFIER:
            raise ParseError(f"expected aggregation function at position {func_token.position}")
        name = func_token.value.upper()
        if name == "VARIANCE":
            name = "VAR"
        try:
            func = AggregateFunction(name)
        except ValueError as exc:
            raise ParseError(f"unsupported aggregation function {func_token.value!r}") from exc
        self._expect_punctuation("(")
        column: str | None
        if self._accept_punctuation("*"):
            column = None
        else:
            col_token = self._advance()
            if col_token.type is not TokenType.IDENTIFIER:
                raise ParseError(f"expected column name at position {col_token.position}")
            column = col_token.value
        self._expect_punctuation(")")
        if func is not AggregateFunction.COUNT and column is None:
            raise ParseError(f"{func.value}(*) is not supported; name a column")
        return Aggregation(func=func, column=column)

    def _parse_or_expr(self) -> Predicate:
        children = [self._parse_and_expr()]
        while self._accept_keyword("OR"):
            children.append(self._parse_and_expr())
        if len(children) == 1:
            return children[0]
        return PredicateNode(LogicalOp.OR, children)

    def _parse_and_expr(self) -> Predicate:
        children = [self._parse_term()]
        while self._accept_keyword("AND"):
            children.append(self._parse_term())
        if len(children) == 1:
            return children[0]
        return PredicateNode(LogicalOp.AND, children)

    def _parse_term(self) -> Predicate:
        if self._accept_punctuation("("):
            inner = self._parse_or_expr()
            self._expect_punctuation(")")
            return inner
        return self._parse_condition()

    def _parse_condition(self) -> Condition:
        column_token = self._advance()
        if column_token.type is not TokenType.IDENTIFIER:
            raise ParseError(f"expected column name at position {column_token.position}")
        op_token = self._advance()
        if op_token.type is not TokenType.OPERATOR or op_token.value not in _OPERATORS:
            raise ParseError(f"expected comparison operator at position {op_token.position}")
        literal_token = self._advance()
        if literal_token.type is TokenType.NUMBER:
            text = literal_token.value
            literal: float | int | str
            if any(c in text for c in ".eE"):
                literal = float(text)
            else:
                literal = int(text)
        elif literal_token.type is TokenType.STRING:
            literal = literal_token.value
        elif literal_token.type is TokenType.IDENTIFIER:
            # Bare words are treated as string literals (common in the
            # generated workloads, e.g. airline = AA).
            literal = literal_token.value
        else:
            raise ParseError(f"expected literal at position {literal_token.position}")
        return Condition(column=column_token.value, op=_OPERATORS[op_token.value], literal=literal)


def parse_query(sql: str) -> Query:
    """Parse a SQL string into a :class:`~repro.sql.ast.Query`."""
    return _Parser(tokenize(sql)).parse_query()


#: Bound on the SQL-text → AST cache below (dashboards cycle through a
#: small set of query strings; 512 is generous for that workload).
PARSE_CACHE_SIZE = 512

_parse_cache: OrderedDict[str, Query] = OrderedDict()
_parse_cache_lock = threading.Lock()

_PARSE_CACHE_LOOKUPS = obs_metrics.counter(
    "aqp_parse_cache_lookups_total",
    "SQL-text to AST parse cache lookups, by outcome.",
    labelnames=("outcome",),
)
# Pre-bound cells: parse-cache hits sit on the per-query hot path.
_PARSE_CACHE_HIT = _PARSE_CACHE_LOOKUPS.labels(outcome="hit")
_PARSE_CACHE_MISS = _PARSE_CACHE_LOOKUPS.labels(outcome="miss")


def parse_query_cached(sql: str) -> Query:
    """Like :func:`parse_query`, memoized on the exact SQL text (LRU).

    Sharing one :class:`~repro.sql.ast.Query` between callers is safe
    because the AST is immutable in practice: every consumer that needs a
    variant (e.g. the gather planner) builds one with
    ``dataclasses.replace`` instead of mutating in place.  Parse errors
    are never cached.
    """
    with _parse_cache_lock:
        query = _parse_cache.get(sql)
        if query is not None:
            _parse_cache.move_to_end(sql)
    if query is not None:
        _PARSE_CACHE_HIT.inc()
        return query
    query = parse_query(sql)
    with _parse_cache_lock:
        _parse_cache[sql] = query
        _parse_cache.move_to_end(sql)
        while len(_parse_cache) > PARSE_CACHE_SIZE:
            _parse_cache.popitem(last=False)
    _PARSE_CACHE_MISS.inc()
    return query


def parse_cache_contains(sql: str) -> bool:
    """Non-perturbing peek: is this exact SQL text cached?

    EXPLAIN reports parse-cache state without touching LRU order or the
    hit/miss counters, so explaining a query never changes the plan it
    reports.
    """
    with _parse_cache_lock:
        return sql in _parse_cache


def clear_parse_cache() -> None:
    """Drop every cached AST (tests)."""
    with _parse_cache_lock:
        _parse_cache.clear()


def parse_predicate(sql: str) -> Predicate:
    """Parse just a WHERE-clause expression (used by tests and examples)."""
    parser = _Parser(tokenize(sql))
    predicate = parser._parse_or_expr()
    if parser._current.type is not TokenType.END:
        raise ParseError("unexpected trailing input in predicate")
    return predicate
