"""A small SQL tokenizer for the query class supported by PairwiseHist."""

from __future__ import annotations

import enum
from dataclasses import dataclass

_KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "AND",
    "OR",
    "NOT",
    "AS",
}

_OPERATOR_CHARS = "<>=!"
_PUNCTUATION = "(),*;"


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    END = "end"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def matches(self, ttype: TokenType, value: str | None = None) -> bool:
        if self.type is not ttype:
            return False
        if value is None:
            return True
        return self.value.upper() == value.upper()


class TokenizeError(ValueError):
    """Raised when the SQL text contains characters the tokenizer cannot handle."""


def tokenize(sql: str) -> list[Token]:
    """Split SQL text into a list of :class:`Token`, ending with an END token."""
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        if ch in _OPERATOR_CHARS:
            j = i + 1
            if j < length and sql[j] in "=<>":
                op = sql[i : j + 1]
                if op in ("<=", ">=", "!=", "<>", "=="):
                    tokens.append(Token(TokenType.OPERATOR, op, i))
                    i = j + 1
                    continue
            tokens.append(Token(TokenType.OPERATOR, ch, i))
            i += 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            buf = []
            while j < length and sql[j] != quote:
                buf.append(sql[j])
                j += 1
            if j >= length:
                raise TokenizeError(f"unterminated string literal at position {i}")
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch in "+-." and i + 1 < length and sql[i + 1].isdigit()):
            j = i + 1
            while j < length and (sql[j].isdigit() or sql[j] in ".eE+-"):
                # Stop if +/- is not part of an exponent.
                if sql[j] in "+-" and sql[j - 1] not in "eE":
                    break
                j += 1
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < length and (sql[j].isalnum() or sql[j] in "_."):
                j += 1
            word = sql[i:j]
            ttype = TokenType.KEYWORD if word.upper() in _KEYWORDS else TokenType.IDENTIFIER
            tokens.append(Token(ttype, word, i))
            i = j
            continue
        raise TokenizeError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.END, "", length))
    return tokens
