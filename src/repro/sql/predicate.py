"""Vectorised predicate evaluation over numpy columns.

This module gives the exact engine, the workload generator (selectivity
checks) and the baselines a single implementation of "which rows satisfy
this predicate tree".  Missing values never satisfy any condition, matching
SQL three-valued logic for the supported operators.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from .ast import ComparisonOp, Condition, LogicalOp, Predicate, PredicateNode

_NUMERIC_OPS: dict[ComparisonOp, Callable[[np.ndarray, float], np.ndarray]] = {
    ComparisonOp.LT: lambda col, lit: col < lit,
    ComparisonOp.GT: lambda col, lit: col > lit,
    ComparisonOp.LE: lambda col, lit: col <= lit,
    ComparisonOp.GE: lambda col, lit: col >= lit,
    ComparisonOp.EQ: lambda col, lit: col == lit,
    ComparisonOp.NE: lambda col, lit: col != lit,
}


def condition_mask(condition: Condition, columns: Mapping[str, np.ndarray]) -> np.ndarray:
    """Boolean mask of rows satisfying a single condition."""
    if condition.column not in columns:
        raise KeyError(f"unknown column {condition.column!r} in predicate")
    col = columns[condition.column]
    if col.dtype == object:
        values = np.array([v if v is not None else "\0" for v in col], dtype=object)
        literal = str(condition.literal)
        if condition.op is ComparisonOp.EQ:
            mask = values == literal
        elif condition.op is ComparisonOp.NE:
            mask = (values != literal) & np.array([v is not None for v in col])
        else:
            # Lexicographic comparison for ordered categorical predicates.
            comparison = _NUMERIC_OPS[condition.op]
            mask = comparison(values.astype(str), literal)
            mask &= np.array([v is not None for v in col])
        return mask.astype(bool)
    literal = float(condition.literal)
    finite = np.isfinite(col)
    with np.errstate(invalid="ignore"):
        mask = _NUMERIC_OPS[condition.op](col, literal)
    return mask & finite


def predicate_mask(predicate: Predicate | None, columns: Mapping[str, np.ndarray]) -> np.ndarray:
    """Boolean mask of rows satisfying an entire predicate tree."""
    if not columns:
        return np.array([], dtype=bool)
    num_rows = len(next(iter(columns.values())))
    if predicate is None:
        return np.ones(num_rows, dtype=bool)
    if isinstance(predicate, Condition):
        return condition_mask(predicate, columns)
    if not isinstance(predicate, PredicateNode):
        raise TypeError(f"unsupported predicate node {type(predicate)!r}")
    masks = [predicate_mask(child, columns) for child in predicate.children]
    result = masks[0]
    for mask in masks[1:]:
        result = (result & mask) if predicate.op is LogicalOp.AND else (result | mask)
    return result


def selectivity(predicate: Predicate | None, columns: Mapping[str, np.ndarray]) -> float:
    """Fraction of rows satisfying the predicate."""
    mask = predicate_mask(predicate, columns)
    return float(mask.mean()) if mask.size else 0.0
