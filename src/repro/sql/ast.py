"""Query and predicate AST shared by the SQL parser, the exact engine,
PairwiseHist and the baselines.

The paper's query class (§3, "Problem Definition") is

    SELECT F(Xi) FROM D WHERE P1 AND/OR P2 ... GROUP BY ...;

where ``F`` is one of seven aggregation functions, every predicate has the
form ``Xj OP LITERAL`` with ``OP`` in {<, >, <=, >=, =, !=} and GROUP BY may
name a categorical column.  The AST below models exactly that class (plus
``COUNT(*)``), so every engine in the repository consumes the same objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union


class UnsupportedQueryError(ValueError):
    """Raised by an AQP system for query shapes it cannot answer.

    The workload runner records these as ``supported=False`` instead of
    failing the run — the paper's per-system supported-query accounting.
    """


class AggregateFunction(enum.Enum):
    """The seven aggregation functions supported by PairwiseHist (Table 3)."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"
    MEDIAN = "MEDIAN"
    VAR = "VAR"


class ComparisonOp(enum.Enum):
    """Binary comparison operators allowed in predicate conditions."""

    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "="
    NE = "!="

    @property
    def is_equality(self) -> bool:
        return self in (ComparisonOp.EQ, ComparisonOp.NE)

    def negate(self) -> "ComparisonOp":
        """Logical complement of the operator."""
        return {
            ComparisonOp.LT: ComparisonOp.GE,
            ComparisonOp.GT: ComparisonOp.LE,
            ComparisonOp.LE: ComparisonOp.GT,
            ComparisonOp.GE: ComparisonOp.LT,
            ComparisonOp.EQ: ComparisonOp.NE,
            ComparisonOp.NE: ComparisonOp.EQ,
        }[self]


class LogicalOp(enum.Enum):
    """Connectives between predicate conditions."""

    AND = "AND"
    OR = "OR"


@dataclass(frozen=True)
class Condition:
    """A single predicate condition ``column OP literal``."""

    column: str
    op: ComparisonOp
    literal: Union[float, int, str]

    def __str__(self) -> str:
        literal = f"'{self.literal}'" if isinstance(self.literal, str) else self.literal
        return f"{self.column} {self.op.value} {literal}"


@dataclass
class PredicateNode:
    """Interior node of the predicate tree: AND / OR over children.

    Children are either :class:`Condition` leaves or nested
    :class:`PredicateNode` sub-trees; operator precedence (AND binds tighter
    than OR) is resolved by the parser when the tree is built.
    """

    op: LogicalOp
    children: list[Union["PredicateNode", Condition]] = field(default_factory=list)

    def __str__(self) -> str:
        sep = f" {self.op.value} "
        parts = []
        for child in self.children:
            text = str(child)
            if isinstance(child, PredicateNode):
                text = f"({text})"
            parts.append(text)
        return sep.join(parts)

    def conditions(self) -> list[Condition]:
        """All leaf conditions in the sub-tree (left-to-right)."""
        leaves: list[Condition] = []
        for child in self.children:
            if isinstance(child, Condition):
                leaves.append(child)
            else:
                leaves.extend(child.conditions())
        return leaves


#: A predicate is either a single condition or a tree of them.
Predicate = Union[Condition, PredicateNode]


def predicate_conditions(predicate: Predicate | None) -> list[Condition]:
    """Flatten a predicate into its leaf conditions (empty when ``None``)."""
    if predicate is None:
        return []
    if isinstance(predicate, Condition):
        return [predicate]
    return predicate.conditions()


def predicate_columns(predicate: Predicate | None) -> list[str]:
    """Distinct columns referenced by a predicate, in first-use order."""
    seen: list[str] = []
    for condition in predicate_conditions(predicate):
        if condition.column not in seen:
            seen.append(condition.column)
    return seen


@dataclass(frozen=True)
class Aggregation:
    """One ``F(X)`` item of the SELECT list; ``column=None`` means ``COUNT(*)``."""

    func: AggregateFunction
    column: str | None

    def __str__(self) -> str:
        return f"{self.func.value}({self.column or '*'})"


@dataclass
class Query:
    """A parsed query over a single table."""

    aggregations: list[Aggregation]
    table: str
    predicate: Predicate | None = None
    group_by: str | None = None

    def __str__(self) -> str:
        select = ", ".join(str(a) for a in self.aggregations)
        sql = f"SELECT {select} FROM {self.table}"
        if self.predicate is not None:
            sql += f" WHERE {self.predicate}"
        if self.group_by:
            sql += f" GROUP BY {self.group_by}"
        return sql + ";"

    @property
    def aggregation(self) -> Aggregation:
        """The first (usually only) aggregation of the SELECT list."""
        return self.aggregations[0]

    @property
    def columns(self) -> list[str]:
        """All columns referenced by the query (aggregation + predicates + group by)."""
        cols: list[str] = []
        for agg in self.aggregations:
            if agg.column and agg.column not in cols:
                cols.append(agg.column)
        for col in predicate_columns(self.predicate):
            if col not in cols:
                cols.append(col)
        if self.group_by and self.group_by not in cols:
            cols.append(self.group_by)
        return cols
