"""PairwiseHist reproduction: approximate query processing with data compression.

The engine stack is partitioned end to end: tables are sharded into
fixed-size partitions, each an independent GreedyGD
:class:`CompressedStore` (grouped under a :class:`PartitionedStore`), each
partition gets its own PairwiseHist synopsis (built in parallel) and the
per-partition synopses merge into one queryable synopsis.  Streaming
appends only recompress and re-summarise the tail partition, so update
cost stays bounded as tables grow.  :class:`QueryService` is the
multi-table entry point: register tables, stream rows in with
``ingest(table_name, rows)`` and route SQL by table name.

The public API is re-exported at the top level for convenience:

>>> from repro import QueryService, load_dataset
>>> service = QueryService()
>>> _ = service.register_table(load_dataset("power", rows=10_000))
>>> result = service.execute_scalar(
...     "SELECT AVG(global_active_power) FROM power WHERE voltage > 240"
... )
>>> result.lower <= result.value <= result.upper
True

The single-table :class:`PairwiseHistEngine` remains available for
monolithic (non-partitioned) construction and ablations.
"""

from .core.engine import AqpResult, PairwiseHistEngine
from .core.aggregation import AqpEstimate
from .core.params import PairwiseHistParams
from .core.synopsis import PairwiseHist
from .core.builder import (
    PartitionInput,
    build_pairwise_hist,
    build_partition_synopses,
    build_partitioned_hist,
)
from .core.serialization import (
    deserialize,
    deserialize_partitioned,
    serialize,
    serialize_partitioned,
    synopsis_size_bytes,
)
from .data.table import Table
from .data.schema import ColumnSchema, ColumnType, TableSchema
from .data.datasets import available_datasets, load_dataset
from .data.idebench import IdeBenchScaler, scale_dataset
from .gd.store import CompressedStore
from .gd.partitioned import PartitionedStore
from .gd.preprocessor import Preprocessor
from .exactdb.executor import ExactQueryEngine
from .service import (
    AsyncQueryClient,
    AsyncQueryService,
    ConcurrentQueryService,
    Database,
    IngestResult,
    ManagedTable,
    OverloadedError,
    PipelinedClient,
    QueryServer,
    QueryService,
    QueryServiceSystem,
    ReadWriteLock,
    SerializedQueryService,
)
from .service import ClusterClient
from .cluster import ClusterQueryService, ShardRouter, ShardSupervisor
from .audit import AccuracyAuditor, WorkloadLog
from .sql.parser import parse_query
from .sql.ast import AggregateFunction, Query
from .storage import BackgroundCheckpointer, DurableDatabase, WriteAheadLog

__version__ = "1.4.0"

__all__ = [
    "AqpResult",
    "AqpEstimate",
    "PairwiseHistEngine",
    "PairwiseHistParams",
    "PairwiseHist",
    "PartitionInput",
    "build_pairwise_hist",
    "build_partition_synopses",
    "build_partitioned_hist",
    "serialize",
    "deserialize",
    "serialize_partitioned",
    "deserialize_partitioned",
    "synopsis_size_bytes",
    "Table",
    "ColumnSchema",
    "ColumnType",
    "TableSchema",
    "available_datasets",
    "load_dataset",
    "IdeBenchScaler",
    "scale_dataset",
    "CompressedStore",
    "PartitionedStore",
    "Preprocessor",
    "ExactQueryEngine",
    "AsyncQueryClient",
    "AsyncQueryService",
    "ConcurrentQueryService",
    "Database",
    "IngestResult",
    "ManagedTable",
    "OverloadedError",
    "PipelinedClient",
    "QueryServer",
    "QueryService",
    "QueryServiceSystem",
    "ReadWriteLock",
    "SerializedQueryService",
    "ClusterClient",
    "ClusterQueryService",
    "ShardRouter",
    "ShardSupervisor",
    "AccuracyAuditor",
    "WorkloadLog",
    "BackgroundCheckpointer",
    "DurableDatabase",
    "WriteAheadLog",
    "parse_query",
    "AggregateFunction",
    "Query",
    "__version__",
]
