"""PairwiseHist reproduction: approximate query processing with data compression.

The public API is re-exported at the top level for convenience:

>>> from repro import PairwiseHistEngine, load_dataset
>>> table = load_dataset("power", rows=10_000)
>>> engine = PairwiseHistEngine.from_table(table)
>>> result = engine.execute_scalar(
...     "SELECT AVG(global_active_power) FROM power WHERE voltage > 240"
... )
>>> result.lower <= result.value <= result.upper
True
"""

from .core.engine import AqpResult, PairwiseHistEngine
from .core.aggregation import AqpEstimate
from .core.params import PairwiseHistParams
from .core.synopsis import PairwiseHist
from .core.builder import build_pairwise_hist
from .core.serialization import deserialize, serialize, synopsis_size_bytes
from .data.table import Table
from .data.schema import ColumnSchema, ColumnType, TableSchema
from .data.datasets import available_datasets, load_dataset
from .data.idebench import IdeBenchScaler, scale_dataset
from .gd.store import CompressedStore
from .gd.preprocessor import Preprocessor
from .exactdb.executor import ExactQueryEngine
from .sql.parser import parse_query
from .sql.ast import AggregateFunction, Query

__version__ = "1.0.0"

__all__ = [
    "AqpResult",
    "AqpEstimate",
    "PairwiseHistEngine",
    "PairwiseHistParams",
    "PairwiseHist",
    "build_pairwise_hist",
    "serialize",
    "deserialize",
    "synopsis_size_bytes",
    "Table",
    "ColumnSchema",
    "ColumnType",
    "TableSchema",
    "available_datasets",
    "load_dataset",
    "IdeBenchScaler",
    "scale_dataset",
    "CompressedStore",
    "Preprocessor",
    "ExactQueryEngine",
    "parse_query",
    "AggregateFunction",
    "Query",
    "__version__",
]
