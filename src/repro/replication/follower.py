"""Follower side: apply a shipped WAL stream through the normal commit path.

:class:`ReplicaApplier` replays each shipped record with the *same*
public service calls a primary's clients use (``register_table`` /
``ingest`` / ``drop_table`` on the thread-safe service), so:

* every applied record goes through the durable commit path and lands in
  the follower's own WAL with the **same LSN** the primary assigned (the
  stream is contiguous, local appends assign ``last + 1``, and the
  applier asserts the two agree after every record);
* the follower's synopses are rebuilt by the identical code with the
  identical row totals, making its state bit-identical to a primary that
  stopped at the same LSN — the property the failover drill pins;
* concurrent replica *queries* are already safe: they share the
  service's per-table reader-writer locks with the apply loop.

A follower that has fallen behind the primary's WAL truncation horizon
receives a snapshot seed instead: :meth:`ReplicaApplier.reseed` installs
the shipped snapshot directory, swaps the whole catalog for the
snapshot's content and resets the local WAL to the snapshot's checkpoint
LSN.  The same path serves a brand-new (empty) follower — bootstrap is
just "reseed from LSN 0".

:class:`FollowerLoop` is the network half: a daemon thread that
subscribes to the primary over the binary protocol, applies whatever
arrives, acknowledges its durable position after every batch, and
reconnects with backoff on any connection failure.  ``retarget()``
repoints it at a new primary after a promotion; ``shutdown()`` stops it
(promotion of *this* replica).
"""

from __future__ import annotations

import os
import shutil
import socket
import struct
import threading
from pathlib import Path

from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..service import framing
from ..storage.durable import WAL_DROP, WAL_INGEST, WAL_REGISTER
from ..storage import codec
from ..storage.snapshot import load_latest_snapshot

_LOG = obs_log.get_logger("follower")

_APPLIED_LSN = obs_metrics.gauge(
    "aqp_replication_applied_lsn",
    "This replica's durably-applied LSN (== its local WAL tip), refreshed "
    "at metrics-snapshot time.",
    labelnames=("follower",),
)
_UPSTREAM_CONNECTED = obs_metrics.gauge(
    "aqp_replication_upstream_connected",
    "1 while this replica's subscription to its primary is up, else 0.",
    labelnames=("follower",),
)
_APPLIED_BATCHES = obs_metrics.counter(
    "aqp_replication_batches_applied_total",
    "Shipped WAL batches this replica applied and acknowledged.",
    labelnames=("follower",),
)
_APPLIED_SEEDS = obs_metrics.counter(
    "aqp_replication_seeds_applied_total",
    "Snapshot seeds this replica installed (reseed-from-scratch events).",
    labelnames=("follower",),
)


class ReplicationProtocolError(RuntimeError):
    """The shipped stream violated an invariant (gap, bad record type)."""


class ReplicaApplier:
    """Replays shipped WAL records / snapshot seeds into a local service."""

    def __init__(self, service) -> None:
        self.service = service
        self.database = service.database

    @property
    def applied_lsn(self) -> int:
        """Durably-applied position == the local WAL's last LSN."""
        return self.database.wal.last_lsn

    def apply(self, lsn: int, rtype: int, payload: bytes) -> None:
        expected = self.database.wal.last_lsn + 1
        if lsn != expected:
            raise ReplicationProtocolError(
                f"replication stream gap: got lsn {lsn}, expected {expected}"
            )
        if rtype == WAL_REGISTER:
            table, params, partition_size = codec.decode_register_payload(payload)
            self.service.register_table(
                table, params=params, partition_size=partition_size
            )
        elif rtype == WAL_INGEST:
            name, batch = codec.decode_ingest_payload(payload)
            self.service.ingest(name, batch)
        elif rtype == WAL_DROP:
            self.service.drop_table(codec.decode_drop_payload(payload))
        else:
            raise ReplicationProtocolError(f"unknown WAL record type {rtype}")
        applied = self.database.wal.last_lsn
        if applied != lsn:
            raise ReplicationProtocolError(
                f"local commit logged lsn {applied}, primary shipped {lsn}"
            )

    def reseed(self, checkpoint_lsn: int, files: list[tuple[str, bytes]]) -> None:
        """Replace the whole catalog with a shipped snapshot.

        Installs the snapshot directory atomically (write to a temp dir,
        rename into place), retires every current table *without* WAL
        logging, resets the local WAL just past the snapshot's checkpoint
        LSN and installs the snapshot's tables — after which the normal
        ``apply`` path resumes from ``checkpoint_lsn``.
        """
        if not files:
            raise ReplicationProtocolError("snapshot seed carried no files")
        db = self.database
        dir_name = files[0][0].split("/", 1)[0]
        snapshots_dir = Path(db.snapshots_dir)
        snapshots_dir.mkdir(parents=True, exist_ok=True)
        tmp = snapshots_dir / f"tmp-seed-{os.getpid()}"
        shutil.rmtree(tmp, ignore_errors=True)
        for relative, data in files:
            top, _, member = relative.partition("/")
            if top != dir_name or not member:
                raise ReplicationProtocolError(
                    f"seed file {relative!r} escapes the snapshot directory"
                )
            target = tmp / member
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(data)
        final = snapshots_dir / dir_name
        shutil.rmtree(final, ignore_errors=True)
        os.replace(tmp, final)
        # Retire the current catalog under the same locks drop_table takes,
        # so in-flight replica queries either finish against the old table
        # or retry cleanly against the reseeded one.
        for name in list(db.table_names):
            mutex = self.service._acquire_current_ingest_mutex(name)
            try:
                with self.service.lock_for(name).write_locked():
                    db.uninstall_table(name)
                with self.service._registry_mutex:
                    self.service._table_locks.pop(name, None)
                    self.service._ingest_mutexes.pop(name, None)
            finally:
                mutex.release()
        db.wal.reset_to(checkpoint_lsn)
        snapshot = load_latest_snapshot(snapshots_dir)
        if snapshot is None or snapshot.checkpoint_lsn != checkpoint_lsn:
            raise ReplicationProtocolError(
                "seeded snapshot failed validation after installation"
            )
        for loaded in snapshot.tables:
            db._install_loaded(loaded)
        db._finalize_recovery()
        db._last_checkpoint_lsn = checkpoint_lsn


class FollowerLoop(threading.Thread):
    """Subscribe to the primary, apply the stream, ack durable positions."""

    def __init__(
        self,
        applier: ReplicaApplier,
        follower_id: str,
        primary_host: str,
        primary_port: int,
        connect_timeout: float = 10.0,
        max_backoff: float = 2.0,
    ) -> None:
        super().__init__(name=f"follower-{follower_id}", daemon=True)
        self.applier = applier
        self.follower_id = follower_id
        self.connect_timeout = connect_timeout
        self.max_backoff = max_backoff
        self._target = (primary_host, primary_port)
        self._halt = threading.Event()
        self._sock_mutex = threading.Lock()
        self._sock: socket.socket | None = None
        # The applied position only moves when the apply loop commits, but
        # a scrape can land between batches — refresh at snapshot time so
        # the gauge always reflects the WAL tip (WeakMethod: the loop's
        # death unregisters the hook).
        obs_metrics.REGISTRY.add_collector(self._collect_metrics)
        #: Observability for the ``status`` op.
        self.status: dict = {
            "upstream": f"{primary_host}:{primary_port}",
            "connected": False,
            "batches": 0,
            "seeds": 0,
            "last_error": None,
            "fatal": None,
        }

    def _collect_metrics(self) -> None:
        """Refresh this replica's gauges (registry snapshot hook)."""
        _APPLIED_LSN.set(self.applier.applied_lsn, follower=self.follower_id)
        _UPSTREAM_CONNECTED.set(
            1 if self.status.get("connected") else 0, follower=self.follower_id
        )

    # ------------------------------------------------------------------ #
    # Control

    def retarget(self, host: str, port: int) -> None:
        """Follow a different primary (post-promotion); takes effect
        immediately by severing the current subscription."""
        self._target = (host, port)
        self.status["upstream"] = f"{host}:{port}"
        self._close_socket()

    def shutdown(self, timeout: float = 10.0) -> None:
        self._halt.set()
        self._close_socket()
        if self.is_alive():
            self.join(timeout=timeout)

    def _close_socket(self) -> None:
        with self._sock_mutex:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # The loop

    def run(self) -> None:
        backoff = 0.05
        while not self._halt.is_set():
            try:
                self._run_subscription()
                backoff = 0.05
            except (OSError, ConnectionError, EOFError, struct.error) as exc:
                # Connection-level trouble: normal during primary restarts
                # and promotions — back off and resubscribe from our own
                # durable position.
                self.status["connected"] = False
                self.status["last_error"] = f"{type(exc).__name__}: {exc}"
                _LOG.warning(
                    "subscription_lost",
                    follower=self.follower_id,
                    upstream=self.status.get("upstream"),
                    error=str(exc),
                    error_type=type(exc).__name__,
                    backoff_seconds=backoff,
                )
                self._halt.wait(backoff)
                backoff = min(backoff * 2, self.max_backoff)
            except Exception as exc:  # divergence/bug: do not spin on it
                self.status["connected"] = False
                self.status["fatal"] = f"{type(exc).__name__}: {exc}"
                _LOG.error(
                    "follower_fatal",
                    follower=self.follower_id,
                    upstream=self.status.get("upstream"),
                    error=str(exc),
                    error_type=type(exc).__name__,
                )
                return

    def _run_subscription(self) -> None:
        host, port = self._target
        sock = socket.create_connection((host, port), timeout=self.connect_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(None)
            with self._sock_mutex:
                if self._halt.is_set():
                    raise ConnectionError("follower stopping")
                self._sock = sock
            sock.sendall(framing.MAGIC)
            sock.sendall(
                framing.encode_frame(
                    framing.OP_SUBSCRIBE,
                    1,
                    framing.encode_subscribe(self.applier.applied_lsn, self.follower_id),
                )
            )
            reader = sock.makefile("rb")
            self.status["connected"] = True
            self.status["last_error"] = None
            while not self._halt.is_set() and self._target == (host, port):
                status, _, payload = self._read_frame(reader)
                if status != framing.STATUS_OK:
                    error_type, message = framing.decode_error(payload)
                    raise ConnectionError(
                        f"upstream refused subscription: {error_type}: {message}"
                    )
                kind = framing.decode_replication_kind(payload)
                if kind == framing.REPL_WAL_BATCH:
                    for lsn, rtype, record_payload in framing.decode_wal_batch(payload):
                        self.applier.apply(lsn, rtype, record_payload)
                    self.status["batches"] += 1
                    _APPLIED_BATCHES.inc(follower=self.follower_id)
                elif kind == framing.REPL_SNAPSHOT_SEED:
                    self.applier.reseed(*framing.decode_snapshot_seed(payload))
                    self.status["seeds"] += 1
                    _APPLIED_SEEDS.inc(follower=self.follower_id)
                    _LOG.info(
                        "reseeded",
                        follower=self.follower_id,
                        applied_lsn=self.applier.applied_lsn,
                    )
                else:
                    raise ReplicationProtocolError(f"unknown stream kind {kind}")
                sock.sendall(
                    framing.encode_frame(
                        framing.OP_WAL_ACK,
                        0,
                        framing.encode_wal_ack(self.applier.applied_lsn),
                    )
                )
        finally:
            self.status["connected"] = False
            with self._sock_mutex:
                if self._sock is sock:
                    self._sock = None
            try:
                sock.close()
            except OSError:
                pass

    @staticmethod
    def _read_frame(reader) -> tuple[int, int, bytes]:
        header = reader.read(framing.HEADER_SIZE)
        if len(header) < framing.HEADER_SIZE:
            raise EOFError("subscription stream closed")
        status, request_id, length = framing.decode_header(header)
        payload = reader.read(length) if length else b""
        if len(payload) < length:
            raise EOFError("subscription stream closed mid-frame")
        return status, request_id, payload
