"""Primary-side replication hub: WAL shipping, acks, retention floor.

One :class:`ReplicationHub` lives inside each durable server process.  It
owns the subscriber registry (follower id → acknowledged LSN) and three
derived facts:

* the **retention floor** — the minimum LSN any registered follower still
  needs, wired into ``DurableDatabase.retention_floor`` so checkpoints
  never truncate a live subscriber out of the log.  A disconnected
  follower keeps its floor for ``retention_grace_seconds`` (it is usually
  mid-restart); past that it is evicted and must reseed from a snapshot
  if it returns too late.
* the **replicated LSN** — the highest LSN durably acknowledged by at
  least ``ack_replicas`` followers.  With ``ack_replicas >= 1`` the
  server delays every mutation ack until the record is replicated
  (semi-synchronous replication): an acknowledged write then survives a
  kill -9 of the primary, because the freshest follower — the one
  promotion picks — must hold it (follower WALs are contiguous, so the
  follower with the highest durable LSN is a superset of every other
  acker).
* the **stream** — one asyncio task per subscribed follower that tails
  the WAL (``read_records(after_lsn)``, cheap thanks to the segment-skip
  fast path) and ships compressed :data:`~repro.service.framing.REPL_WAL_BATCH`
  frames; a follower behind the truncation horizon first receives a
  :data:`~repro.service.framing.REPL_SNAPSHOT_SEED` built from the newest
  on-disk snapshot.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

from ..obs import metrics as obs_metrics
from ..service import framing
from ..storage.snapshot import read_snapshot_files

_ACK_LAG = obs_metrics.gauge(
    "aqp_replication_ack_lag_records",
    "Primary WAL tip minus the follower's acknowledged LSN, computed at "
    "metrics-snapshot time (a dead follower's lag keeps growing).",
    labelnames=("follower",),
)
_FOLLOWER_CONNECTED = obs_metrics.gauge(
    "aqp_replication_follower_connected",
    "1 while the follower's subscription stream is up, else 0.",
    labelnames=("follower",),
)
_FOLLOWER_ACKED_LSN = obs_metrics.gauge(
    "aqp_replication_acked_lsn",
    "The follower's last durably-acknowledged LSN as seen by the primary.",
    labelnames=("follower",),
)

#: Keep a disconnected follower's retention floor this long (seconds).
DEFAULT_RETENTION_GRACE = 300.0

#: How long a mutation ack may wait on the replication barrier.
DEFAULT_ACK_TIMEOUT = 30.0


@dataclass
class SubscriberState:
    follower_id: str
    acked_lsn: int
    connected: bool = True
    disconnected_at: float | None = None
    connected_at: float = field(default_factory=time.monotonic)


class ReplicationHub:
    """Subscriber registry + WAL shipping for one primary."""

    def __init__(
        self,
        database,
        ack_replicas: int = 0,
        ack_timeout: float = DEFAULT_ACK_TIMEOUT,
        retention_grace_seconds: float = DEFAULT_RETENTION_GRACE,
        poll_interval: float = 0.01,
        batch_max_records: int = 1024,
        batch_max_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        self.database = database
        self.ack_replicas = ack_replicas
        self.ack_timeout = ack_timeout
        self.retention_grace_seconds = retention_grace_seconds
        self.poll_interval = poll_interval
        self.batch_max_records = batch_max_records
        self.batch_max_bytes = batch_max_bytes
        #: Guards ``_subscribers`` — read by the checkpoint thread through
        #: the retention-floor hook, written on the server's event loop.
        self._mutex = threading.Lock()
        self._subscribers: dict[str, SubscriberState] = {}
        #: ``(lsn, future)`` barriers waiting for replication; loop-only.
        self._waiters: list[tuple[int, asyncio.Future]] = []

    def attach(self) -> None:
        """Wire this hub's retention floor into the database's checkpoints."""
        self.database.retention_floor = self.retention_floor
        # Lag is computed when the registry is scraped, not when acks
        # arrive: a follower that died stops acking, and its lag must keep
        # growing against the advancing WAL tip.  WeakMethod inside the
        # registry keeps this from pinning the hub alive.
        obs_metrics.REGISTRY.add_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        """Refresh per-follower gauges (registry snapshot hook)."""
        tip = self.database.wal.last_lsn
        with self._mutex:
            states = [
                (s.follower_id, s.acked_lsn, s.connected)
                for s in self._subscribers.values()
            ]
        for follower_id, acked_lsn, connected in states:
            _ACK_LAG.set(max(tip - acked_lsn, 0), follower=follower_id)
            _FOLLOWER_ACKED_LSN.set(acked_lsn, follower=follower_id)
            _FOLLOWER_CONNECTED.set(1 if connected else 0, follower=follower_id)

    # ------------------------------------------------------------------ #
    # Subscriber registry

    def subscribe(self, follower_id: str, after_lsn: int) -> None:
        with self._mutex:
            state = self._subscribers.get(follower_id)
            if state is None:
                self._subscribers[follower_id] = SubscriberState(
                    follower_id=follower_id, acked_lsn=after_lsn
                )
            else:
                state.acked_lsn = after_lsn
                state.connected = True
                state.disconnected_at = None
                state.connected_at = time.monotonic()

    def disconnect(self, follower_id: str) -> None:
        with self._mutex:
            state = self._subscribers.get(follower_id)
            if state is not None:
                state.connected = False
                state.disconnected_at = time.monotonic()

    def update_ack(self, follower_id: str, lsn: int) -> None:
        """Record a follower's durably-applied position (event loop only)."""
        with self._mutex:
            state = self._subscribers.get(follower_id)
            if state is not None and lsn > state.acked_lsn:
                state.acked_lsn = lsn
        self._notify_waiters()

    def retention_floor(self) -> int | None:
        """Minimum LSN a registered follower still needs, or ``None``.

        Called from the checkpoint thread.  Evicts followers whose
        disconnection outlived the grace period — their floor must not
        pin the log forever.
        """
        now = time.monotonic()
        floors: list[int] = []
        with self._mutex:
            for state in list(self._subscribers.values()):
                if (
                    not state.connected
                    and state.disconnected_at is not None
                    and now - state.disconnected_at > self.retention_grace_seconds
                ):
                    del self._subscribers[state.follower_id]
                    continue
                floors.append(state.acked_lsn)
        return min(floors) if floors else None

    def subscriber_snapshot(self) -> dict[str, dict]:
        """Per-follower ack state for the ``status`` op."""
        with self._mutex:
            return {
                fid: {"acked_lsn": s.acked_lsn, "connected": s.connected}
                for fid, s in self._subscribers.items()
            }

    # ------------------------------------------------------------------ #
    # Semi-synchronous ack barrier

    def replicated_lsn(self) -> int:
        """Highest LSN acknowledged by >= ``ack_replicas`` followers."""
        if self.ack_replicas <= 0:
            return self.database.wal.last_lsn
        with self._mutex:
            acked = sorted(
                (s.acked_lsn for s in self._subscribers.values()), reverse=True
            )
        if len(acked) < self.ack_replicas:
            return 0
        return acked[self.ack_replicas - 1]

    async def wait_replicated(self, lsn: int, timeout: float | None = None) -> bool:
        """Block until ``lsn`` is replicated to >= ``ack_replicas`` followers.

        Returns False on timeout — the caller refuses the ack, so the
        client retries (the mutation is durable locally but deliberately
        unacknowledged; the exactly-once retry path resolves it).
        """
        if self.ack_replicas <= 0 or self.replicated_lsn() >= lsn:
            return True
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        entry = (lsn, future)
        self._waiters.append(entry)
        try:
            await asyncio.wait_for(
                future, self.ack_timeout if timeout is None else timeout
            )
            return True
        except asyncio.TimeoutError:
            return False
        finally:
            if entry in self._waiters:
                self._waiters.remove(entry)

    def _notify_waiters(self) -> None:
        if not self._waiters:
            return
        replicated = self.replicated_lsn()
        for lsn, future in self._waiters:
            if lsn <= replicated and not future.done():
                future.set_result(True)

    # ------------------------------------------------------------------ #
    # Shipping

    def _collect_batch(self, after_lsn: int) -> list[tuple[int, int, bytes]]:
        """Next run of WAL records past ``after_lsn`` (worker thread)."""
        records: list[tuple[int, int, bytes]] = []
        size = 0
        iterator = self.database.wal.read_records(after_lsn=after_lsn)
        try:
            for record in iterator:
                records.append((record.lsn, record.rtype, record.payload))
                size += len(record.payload)
                if len(records) >= self.batch_max_records or size >= self.batch_max_bytes:
                    break
        finally:
            iterator.close()  # drop the iterator's retention floor promptly
        return records

    def _build_seed(self) -> tuple[bytes, int] | None:
        """Snapshot-seed payload for a follower behind the WAL horizon."""
        result = read_snapshot_files(self.database.snapshots_dir)
        if result is None:
            return None
        checkpoint_lsn, _, files = result
        return framing.encode_snapshot_seed(checkpoint_lsn, files), checkpoint_lsn

    async def stream(
        self, writer: asyncio.StreamWriter, request_id: int, after_lsn: int, follower_id: str
    ) -> None:
        """Serve one subscription for the life of its connection.

        Every frame is a STATUS_OK response tagged with the subscribe
        request id; the follower distinguishes seed from batch by the
        payload's leading kind byte.
        """
        loop = asyncio.get_running_loop()
        position = after_lsn
        # Register first so the retention floor is pinned before the
        # horizon check — a checkpoint between the two could otherwise
        # truncate the records we are about to ship.
        self.subscribe(follower_id, position)
        try:
            if position + 1 < self.database.wal.first_lsn():
                seed = await loop.run_in_executor(None, self._build_seed)
                if seed is None:
                    raise RuntimeError(
                        f"follower {follower_id!r} is behind the WAL horizon "
                        "and no snapshot exists to seed it"
                    )
                payload, seed_lsn = seed
                writer.write(framing.encode_frame(framing.STATUS_OK, request_id, payload))
                await writer.drain()
                position = seed_lsn
                self.subscribe(follower_id, position)
            while True:
                batch = await loop.run_in_executor(None, self._collect_batch, position)
                if batch:
                    frame = framing.encode_frame(
                        framing.STATUS_OK, request_id, framing.encode_wal_batch(batch)
                    )
                    writer.write(frame)
                    await writer.drain()
                    position = batch[-1][0]
                else:
                    await asyncio.sleep(self.poll_interval)
        finally:
            self.disconnect(follower_id)
