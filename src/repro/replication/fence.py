"""Epoch fencing: at most one worker may ack writes for a shard.

Each replicated shard has one epoch file at the cluster root — a tiny
JSON document ``{"epoch": E, "primary": "<data dir name>"}`` updated
with an atomic rename.  A worker is told its epoch at spawn; before
acknowledging any mutation it re-reads the file and refuses (raising
:class:`FencedError`) if the file's epoch has moved past its own.

Promotion is therefore a two-step protocol with a crash-safe order:
the front end first bumps the epoch file (from this instant a zombie
primary can no longer ack anything, even if its process is alive and
still reachable), *then* tells the chosen follower to start acting as
the primary.  A crash between the steps leaves a shard with no writable
primary — safe, and the next revive pass retries promotion.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

#: error_type carried on the wire when a fenced worker refuses a write
#: (the server encodes ``type(exc).__name__``).
FENCED_ERROR_TYPE = "FencedError"


class FencedError(RuntimeError):
    """This worker's epoch is stale; a newer primary has been elected."""


@dataclass(frozen=True)
class EpochRecord:
    epoch: int
    #: Data-directory *name* (relative to the cluster root) of the worker
    #: holding the primary role at this epoch; ``None`` before the first
    #: election record is written.
    primary: str | None


def read_epoch(path: str | os.PathLike) -> EpochRecord:
    """The current epoch record (``epoch=0`` when the file doesn't exist)."""
    try:
        raw = Path(path).read_bytes()
    except FileNotFoundError:
        return EpochRecord(epoch=0, primary=None)
    try:
        doc = json.loads(raw)
        return EpochRecord(epoch=int(doc["epoch"]), primary=doc.get("primary"))
    except (ValueError, KeyError, TypeError) as exc:
        raise ValueError(f"corrupt epoch file {str(path)!r}: {exc}") from exc


def write_epoch(path: str | os.PathLike, epoch: int, primary: str | None = None) -> None:
    """Atomically publish a new epoch record (plain rename; the record is
    advisory-durable — a torn write is impossible, a lost one re-elects)."""
    path = Path(path)
    doc = {"epoch": int(epoch), "primary": primary}
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc))
    os.replace(tmp, path)


def check_fence(path: str | os.PathLike, own_epoch: int) -> None:
    """Raise :class:`FencedError` if the epoch file has moved past ours."""
    record = read_epoch(path)
    if record.epoch > own_epoch:
        raise FencedError(
            f"epoch {own_epoch} is fenced: a primary at epoch "
            f"{record.epoch} has been elected"
        )
