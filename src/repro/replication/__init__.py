"""WAL-shipping replication: read replicas + kill-safe failover.

The subsystem has three halves:

* :mod:`repro.replication.primary` — the :class:`ReplicationHub` inside a
  durable server: per-follower WAL shipping over the binary protocol,
  the retention floor that keeps checkpoints from truncating a live
  subscriber out of the log, and the semi-synchronous ack barrier.
* :mod:`repro.replication.follower` — :class:`ReplicaApplier` (replays
  shipped records through the normal durable commit path, bit-identical
  to a primary stopped at the same LSN) and :class:`FollowerLoop` (the
  subscribing network thread with reconnect/retarget).
* :mod:`repro.replication.fence` — epoch files + :class:`FencedError`,
  guaranteeing at most one acking primary per shard across promotions.

:class:`ReplicationState` is the per-server wiring record the TCP server
consults: which role this process plays, its epoch, and whichever half
of the machinery it runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .fence import FENCED_ERROR_TYPE, EpochRecord, FencedError, check_fence, read_epoch, write_epoch
from .follower import FollowerLoop, ReplicaApplier, ReplicationProtocolError
from .primary import ReplicationHub

__all__ = [
    "FENCED_ERROR_TYPE",
    "EpochRecord",
    "FencedError",
    "FollowerLoop",
    "ReplicaApplier",
    "ReplicationHub",
    "ReplicationProtocolError",
    "ReplicationState",
    "check_fence",
    "read_epoch",
    "write_epoch",
]


@dataclass
class ReplicationState:
    """How one server process participates in replication."""

    #: ``standalone`` (no replication), ``primary`` or ``replica``.
    role: str = "standalone"
    epoch: int = 0
    epoch_file: Path | None = None
    hub: ReplicationHub | None = None
    follower: FollowerLoop | None = None
    #: Mutation acks wait for this many follower acks (primary role).
    ack_replicas: int = 0
