"""Deterministic row-hash routing of table rows onto worker shards.

The router decides which shard owns each row.  Placement must be a pure
function of the row's *content* (not arrival order, process, or Python
hash seed): ingest fan-out, crash recovery and a cluster restart all have
to route the same row to the same shard, or per-shard WALs would replay
rows into the wrong partitions.  So the hash is built from the raw column
values with fixed integer arithmetic:

* numeric columns contribute their float64 bit patterns (NaN and ``-0.0``
  canonicalised so equal values hash equally),
* categorical columns contribute an 8-byte BLAKE2b digest of the label
  (memoised — machine-data categories are low-cardinality),
* per-row column hashes fold together FNV-1a style in schema order.

Hash-routing makes every shard an unbiased random sample of the table,
which is what lets the scatter-gather layer recombine per-shard synopsis
answers (the paper's mergeable-summaries property, applied across
processes instead of across partitions).
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..data.table import Table

_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x100000001B3)
_NULL_HASH = np.uint64(0x9E3779B97F4A7C15)
_NAN_BITS = np.uint64(0x7FF8000000000000)


def _categorical_hashes(values: np.ndarray, cache: dict) -> np.ndarray:
    out = np.empty(len(values), dtype=np.uint64)
    for i, value in enumerate(values):
        if value is None:
            out[i] = _NULL_HASH
            continue
        cached = cache.get(value)
        if cached is None:
            digest = hashlib.blake2b(str(value).encode("utf-8"), digest_size=8)
            cached = np.uint64(int.from_bytes(digest.digest(), "little"))
            cache[value] = cached
        out[i] = cached
    return out


def _numeric_hashes(values: np.ndarray) -> np.ndarray:
    floats = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    bits = floats.view(np.uint64).copy()
    bits[np.isnan(floats)] = _NAN_BITS  # every NaN payload hashes equally
    bits[floats == 0.0] = np.uint64(0)  # -0.0 == 0.0 must co-locate
    return bits


class ShardRouter:
    """Hash-partitions rows of any table across ``num_shards`` workers."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self.num_shards = num_shards
        self._label_cache: dict = {}

    def row_hashes(self, table: Table) -> np.ndarray:
        """One deterministic uint64 per row, independent of row order."""
        hashes = np.full(table.num_rows, _FNV_OFFSET, dtype=np.uint64)
        with np.errstate(over="ignore"):
            for column in table.schema:
                values = table.column(column.name)
                if column.is_categorical:
                    column_hashes = _categorical_hashes(values, self._label_cache)
                else:
                    column_hashes = _numeric_hashes(values)
                hashes = (hashes ^ column_hashes) * _FNV_PRIME
        return hashes

    def shard_of_rows(self, table: Table) -> np.ndarray:
        """The owning shard index for every row of ``table``."""
        return (self.row_hashes(table) % np.uint64(self.num_shards)).astype(np.int64)

    def split(self, table: Table) -> list[Table | None]:
        """Partition a table into per-shard row subsets.

        Returns one entry per shard: the sub-table of rows the shard owns,
        or ``None`` when no row routed there (callers skip those shards).
        """
        if self.num_shards == 1:
            return [table if table.num_rows else None]
        owners = self.shard_of_rows(table)
        out: list[Table | None] = []
        for shard in range(self.num_shards):
            indices = np.flatnonzero(owners == shard)
            out.append(table.select_rows(indices) if indices.size else None)
        return out
