"""Worker-process lifecycle: spawn, health-check, restart-with-recovery.

Each worker is a ``python -m repro.service`` subprocess — the exact same
entry point operators run by hand — bound to ``127.0.0.1`` on an
OS-assigned port and (when the cluster is durable) rooted at its own
shard data directory.  The supervisor:

* spawns workers and scrapes the ``listening on host:port`` line each one
  prints, so no port coordination is needed;
* health-checks by process liveness plus a wire ``ping``;
* restarts a dead worker on the same data directory, which makes the
  replacement recover its tables from its own snapshot + WAL before it
  starts listening — restart *is* recovery;
* stops the fleet gracefully (SIGTERM, which triggers each worker's final
  checkpoint) with a kill fallback.
"""

from __future__ import annotations

import os
import queue
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..service.wire import ClusterClient

_LISTENING = re.compile(r"listening on ([\d.]+):(\d+)")


def _repro_src_dir() -> str:
    """The directory that must be on PYTHONPATH for ``-m repro.service``."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@dataclass
class WorkerHandle:
    """One live (or dead) worker subprocess."""

    index: int
    process: subprocess.Popen
    port: int

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


class ShardSupervisor:
    """Spawns and supervises the ``QueryServer`` worker fleet."""

    def __init__(
        self,
        data_dirs: list[Path | None],
        host: str = "127.0.0.1",
        partition_size: int | None = None,
        checkpoint_interval: float = 30.0,
        coalesce_delay: float = 0.0,
        workers_per_shard: int = 2,
        result_cache_size: int | None = None,
        fsync: bool = False,
        startup_timeout: float = 120.0,
        python: str = sys.executable,
        crash_point: str | None = None,
    ) -> None:
        self.data_dirs = [None if d is None else Path(d) for d in data_dirs]
        self.host = host
        self.partition_size = partition_size
        self.checkpoint_interval = checkpoint_interval
        self.coalesce_delay = coalesce_delay
        self.workers_per_shard = workers_per_shard
        self.result_cache_size = result_cache_size
        self.fsync = fsync
        self.startup_timeout = startup_timeout
        self.python = python
        #: When set, workers spawn with ``REPRO_CRASH_POINT`` armed at this
        #: fault-injection point (crash drills / tests); clear it before a
        #: restart or the replacement dies at the same point again.
        self.crash_point = crash_point
        self.handles: dict[int, WorkerHandle] = {}

    @property
    def num_shards(self) -> int:
        return len(self.data_dirs)

    # ------------------------------------------------------------------ #
    # Spawning

    def _argv(self, index: int) -> list[str]:
        argv = [
            self.python,
            "-m",
            "repro.service",
            "--host",
            self.host,
            "--port",
            "0",
            "--workers",
            str(self.workers_per_shard),
            "--coalesce-delay",
            str(self.coalesce_delay),
        ]
        if self.partition_size is not None:
            argv += ["--partition-size", str(self.partition_size)]
        if self.result_cache_size is not None:
            argv += ["--result-cache-size", str(self.result_cache_size)]
        data_dir = self.data_dirs[index]
        if data_dir is not None:
            argv += [
                "--data-dir",
                str(data_dir),
                "--checkpoint-interval",
                str(self.checkpoint_interval),
            ]
            if self.fsync:
                argv.append("--fsync")
        return argv

    def spawn(self, index: int) -> WorkerHandle:
        """Start worker ``index``; blocks until it reports its port.

        A worker with a populated data directory recovers before it prints
        ``listening on``, so a handle returned from here is already serving
        its recovered tables.
        """
        env = dict(os.environ, PYTHONUNBUFFERED="1")
        src = _repro_src_dir()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
        env.pop("REPRO_CRASH_POINT", None)  # never inherit armed crash points
        if self.crash_point:
            env["REPRO_CRASH_POINT"] = self.crash_point
        process = subprocess.Popen(
            self._argv(index),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        port, banner = self._await_port(process)
        if port is None:
            process.kill()
            process.wait(timeout=30)
            raise RuntimeError(
                f"shard worker {index} never reported a port within "
                f"{self.startup_timeout:.0f}s; output:\n" + "".join(banner)
            )
        handle = WorkerHandle(index=index, process=process, port=port)
        self.handles[index] = handle
        return handle

    def _await_port(self, process) -> tuple[int | None, list[str]]:
        """Scrape the ``listening on`` banner, honouring the startup timeout.

        The pipe is read on a daemon thread so a worker that hangs
        *silently* (wedged before printing anything) cannot block the
        caller past the deadline — ``readline`` on a live pipe has no
        timeout of its own.
        """
        lines: queue.Queue = queue.Queue()

        def _pump() -> None:
            for line in process.stdout:
                lines.put(line)
            lines.put(None)  # EOF (process died or closed stdout)

        threading.Thread(target=_pump, daemon=True).start()
        banner: list[str] = []
        deadline = time.monotonic() + self.startup_timeout
        while True:
            try:
                line = lines.get(timeout=max(0.05, deadline - time.monotonic()))
            except queue.Empty:
                return None, banner
            if line is None:
                return None, banner
            banner.append(line)
            match = _LISTENING.search(line)
            if match:
                return int(match.group(2)), banner
            if time.monotonic() > deadline:
                return None, banner

    def start(self) -> list[WorkerHandle]:
        """Spawn every worker; tears the fleet down if any fails to boot."""
        try:
            return [self.spawn(index) for index in range(self.num_shards)]
        except BaseException:
            self.stop(graceful=False)
            raise

    # ------------------------------------------------------------------ #
    # Health / restart

    def is_alive(self, index: int) -> bool:
        handle = self.handles.get(index)
        return handle is not None and handle.alive

    def ping(self, index: int, timeout: float = 5.0) -> bool:
        """Liveness through the wire, not just the process table."""
        handle = self.handles.get(index)
        if handle is None or not handle.alive:
            return False
        try:
            with ClusterClient(self.host, handle.port, timeout=timeout) as client:
                return client.ping()
        except (OSError, ConnectionError):
            return False

    def restart(self, index: int) -> WorkerHandle:
        """Replace worker ``index`` with a fresh process on the same data dir.

        Any remnant process is killed first; the replacement recovers from
        the shard's snapshot + WAL before accepting traffic.
        """
        handle = self.handles.pop(index, None)
        if handle is not None and handle.alive:
            handle.process.kill()
        if handle is not None:
            handle.process.wait(timeout=30)
        return self.spawn(index)

    def kill(self, index: int) -> None:
        """``kill -9`` one worker (fault injection for tests and drills)."""
        handle = self.handles[index]
        handle.process.send_signal(signal.SIGKILL)
        handle.process.wait(timeout=30)

    # ------------------------------------------------------------------ #
    # Shutdown

    def stop(self, graceful: bool = True, timeout: float = 30.0) -> None:
        """Stop every worker; graceful SIGTERM triggers final checkpoints."""
        for handle in self.handles.values():
            if not handle.alive:
                continue
            handle.process.send_signal(
                signal.SIGTERM if graceful else signal.SIGKILL
            )
        for handle in self.handles.values():
            try:
                handle.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                handle.process.kill()
                handle.process.wait(timeout=timeout)
        self.handles.clear()
