"""Worker-process lifecycle: spawn, health-check, restart-with-recovery.

Each worker is a ``python -m repro.service`` subprocess — the exact same
entry point operators run by hand — bound to ``127.0.0.1`` on an
OS-assigned port and (when the cluster is durable) rooted at its own
shard data directory.  The supervisor:

* spawns workers and scrapes the ``listening on host:port`` line each one
  prints, so no port coordination is needed;
* health-checks by process liveness plus a wire ``ping``;
* restarts a dead worker on the same data directory, which makes the
  replacement recover its tables from its own snapshot + WAL before it
  starts listening — restart *is* recovery;
* optionally spawns ``replicas`` follower processes per shard
  (``--replica-of`` workers subscribing to their primary's WAL stream),
  and supports the promotion dance: ``adopt_primary`` rekeys a promoted
  replica into the primary slot, ``respawn_replica`` brings a dead or
  diverged process back as a fresh follower;
* stops the fleet gracefully — SIGTERM (which triggers each worker's
  final checkpoint), then escalates to SIGKILL for any worker that has
  not exited within the grace period.
"""

from __future__ import annotations

import os
import queue
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..obs import log as obs_log
from ..service.wire import ClusterClient

_LISTENING = re.compile(r"listening on ([\d.]+):(\d+)")

_LOG = obs_log.get_logger("supervisor")


def _repro_src_dir() -> str:
    """The directory that must be on PYTHONPATH for ``-m repro.service``."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@dataclass
class WorkerHandle:
    """One live (or dead) worker subprocess."""

    index: int
    process: subprocess.Popen
    port: int
    #: Replica slot within the shard, ``None`` for the primary.
    replica: int | None = None

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


class ShardSupervisor:
    """Spawns and supervises the ``QueryServer`` worker fleet."""

    def __init__(
        self,
        data_dirs: list[Path | None],
        host: str = "127.0.0.1",
        partition_size: int | None = None,
        checkpoint_interval: float = 30.0,
        coalesce_delay: float = 0.0,
        workers_per_shard: int = 2,
        result_cache_size: int | None = None,
        fsync: bool = False,
        audit_sample: float = 0.0,
        audit_interval: float | None = None,
        workload_capacity: int | None = None,
        startup_timeout: float = 120.0,
        python: str = sys.executable,
        crash_point: str | None = None,
        replicas: int = 0,
        replica_data_dirs: list[list[Path]] | None = None,
        epoch_files: list[Path] | None = None,
        ack_replicas: int | None = None,
        stop_grace_timeout: float = 30.0,
        extra_env: dict[str, str] | None = None,
    ) -> None:
        self.data_dirs = [None if d is None else Path(d) for d in data_dirs]
        self.host = host
        self.partition_size = partition_size
        self.checkpoint_interval = checkpoint_interval
        self.coalesce_delay = coalesce_delay
        self.workers_per_shard = workers_per_shard
        self.result_cache_size = result_cache_size
        self.fsync = fsync
        #: Per-worker accuracy-auditing knobs: workers own the rows, so the
        #: auditor daemon runs inside each worker, not the front end.
        self.audit_sample = audit_sample
        self.audit_interval = audit_interval
        self.workload_capacity = workload_capacity
        self.startup_timeout = startup_timeout
        self.python = python
        #: When set, workers spawn with ``REPRO_CRASH_POINT`` armed at this
        #: fault-injection point (crash drills / tests); clear it before a
        #: restart or the replacement dies at the same point again.
        self.crash_point = crash_point
        #: Follower processes per shard; requires durable data dirs.
        self.replicas = replicas
        self.replica_data_dirs = (
            None
            if replica_data_dirs is None
            else [[Path(p) for p in dirs] for dirs in replica_data_dirs]
        )
        #: Per-shard epoch (fencing) files; workers read their epoch from
        #: these at spawn so a restart rejoins at the current epoch.
        self.epoch_files = (
            None if epoch_files is None else [Path(p) for p in epoch_files]
        )
        #: How many follower acks a primary's mutation ack waits for;
        #: defaults to 1 whenever replicas exist (semi-sync replication).
        self.ack_replicas = (
            (1 if replicas > 0 else 0) if ack_replicas is None else ack_replicas
        )
        #: SIGTERM→SIGKILL escalation grace for :meth:`stop`.
        self.stop_grace_timeout = stop_grace_timeout
        #: Extra environment variables for every spawned worker (drills).
        self.extra_env = dict(extra_env) if extra_env else None
        self.handles: dict[int | tuple[int, int], WorkerHandle] = {}

    @property
    def num_shards(self) -> int:
        return len(self.data_dirs)

    # ------------------------------------------------------------------ #
    # Spawning

    def _base_argv(self, data_dir: Path | None) -> list[str]:
        argv = [
            self.python,
            "-m",
            "repro.service",
            "--host",
            self.host,
            "--port",
            "0",
            "--workers",
            str(self.workers_per_shard),
            "--coalesce-delay",
            str(self.coalesce_delay),
        ]
        if self.partition_size is not None:
            argv += ["--partition-size", str(self.partition_size)]
        if self.result_cache_size is not None:
            argv += ["--result-cache-size", str(self.result_cache_size)]
        if self.audit_sample:
            argv += ["--audit-sample", str(self.audit_sample)]
            if self.audit_interval is not None:
                argv += ["--audit-interval", str(self.audit_interval)]
        if self.workload_capacity is not None:
            argv += ["--workload-capacity", str(self.workload_capacity)]
        if data_dir is not None:
            argv += [
                "--data-dir",
                str(data_dir),
                "--checkpoint-interval",
                str(self.checkpoint_interval),
            ]
            if self.fsync:
                argv.append("--fsync")
        return argv

    def _epoch_argv(self, index: int) -> list[str]:
        """Fencing/semi-sync flags, with the epoch read live from the file
        so a restarted worker rejoins at the *current* epoch."""
        if self.epoch_files is None:
            return []
        from ..replication.fence import read_epoch

        path = self.epoch_files[index]
        argv = ["--epoch-file", str(path), "--epoch", str(read_epoch(path).epoch)]
        if self.ack_replicas:
            argv += ["--ack-replicas", str(self.ack_replicas)]
        return argv

    def _argv(self, index: int) -> list[str]:
        return self._base_argv(self.data_dirs[index]) + self._epoch_argv(index)

    def _replica_argv(self, index: int, replica: int) -> list[str]:
        primary = self.handles.get(index)
        if primary is None:
            raise RuntimeError(
                f"cannot spawn replica {replica} of shard {index}: "
                "the primary has no handle to subscribe to"
            )
        assert self.replica_data_dirs is not None
        return (
            self._base_argv(self.replica_data_dirs[index][replica])
            + [
                "--replica-of",
                f"{self.host}:{primary.port}",
                "--follower-id",
                f"shard{index}-r{replica}",
            ]
            + self._epoch_argv(index)
        )

    def _spawn_process(
        self, argv: list[str], key: int | tuple[int, int]
    ) -> subprocess.Popen:
        env = dict(os.environ, PYTHONUNBUFFERED="1")
        src = _repro_src_dir()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
        env.pop("REPRO_CRASH_POINT", None)  # never inherit armed crash points
        if self.crash_point:
            env["REPRO_CRASH_POINT"] = self.crash_point
        if self.extra_env:
            env.update(self.extra_env)
        return subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )

    def spawn(self, index: int) -> WorkerHandle:
        """Start the primary of shard ``index``; blocks until it reports
        its port.

        A worker with a populated data directory recovers before it prints
        ``listening on``, so a handle returned from here is already serving
        its recovered tables.
        """
        process = self._spawn_process(self._argv(index), index)
        port, banner = self._await_port(process)
        if port is None:
            process.kill()
            process.wait(timeout=30)
            raise RuntimeError(
                f"shard worker {index} never reported a port within "
                f"{self.startup_timeout:.0f}s; output:\n" + "".join(banner)
            )
        handle = WorkerHandle(index=index, process=process, port=port)
        self.handles[index] = handle
        _LOG.info("worker_spawned", shard=index, port=port, pid=process.pid)
        return handle

    def spawn_replica(self, index: int, replica: int) -> WorkerHandle:
        """Start follower ``replica`` of shard ``index`` (primary must be up).

        The follower recovers its own data directory first, then subscribes
        to the primary from its recovered LSN — catch-up happens in the
        background after the handle is returned.
        """
        process = self._spawn_process(self._replica_argv(index, replica), (index, replica))
        port, banner = self._await_port(process)
        if port is None:
            process.kill()
            process.wait(timeout=30)
            raise RuntimeError(
                f"replica {replica} of shard {index} never reported a port "
                f"within {self.startup_timeout:.0f}s; output:\n" + "".join(banner)
            )
        handle = WorkerHandle(
            index=index, process=process, port=port, replica=replica
        )
        self.handles[(index, replica)] = handle
        _LOG.info(
            "replica_spawned", shard=index, slot=replica, port=port, pid=process.pid
        )
        return handle

    def _await_port(self, process) -> tuple[int | None, list[str]]:
        """Scrape the ``listening on`` banner, honouring the startup timeout.

        The pipe is read on a daemon thread so a worker that hangs
        *silently* (wedged before printing anything) cannot block the
        caller past the deadline — ``readline`` on a live pipe has no
        timeout of its own.
        """
        lines: queue.Queue = queue.Queue()

        def _pump() -> None:
            for line in process.stdout:
                lines.put(line)
            lines.put(None)  # EOF (process died or closed stdout)

        threading.Thread(target=_pump, daemon=True).start()
        banner: list[str] = []
        deadline = time.monotonic() + self.startup_timeout
        while True:
            try:
                line = lines.get(timeout=max(0.05, deadline - time.monotonic()))
            except queue.Empty:
                return None, banner
            if line is None:
                return None, banner
            banner.append(line)
            match = _LISTENING.search(line)
            if match:
                return int(match.group(2)), banner
            if time.monotonic() > deadline:
                return None, banner

    def start(self) -> list[WorkerHandle]:
        """Spawn every primary, then every replica; tears the fleet down
        if any worker fails to boot.  Returns the primary handles."""
        try:
            primaries = [self.spawn(index) for index in range(self.num_shards)]
            for index in range(self.num_shards):
                for replica in range(self.replicas):
                    self.spawn_replica(index, replica)
            return primaries
        except BaseException:
            self.stop(graceful=False)
            raise

    # ------------------------------------------------------------------ #
    # Health / restart

    def is_alive(self, key: int | tuple[int, int]) -> bool:
        handle = self.handles.get(key)
        return handle is not None and handle.alive

    def ping(self, key: int | tuple[int, int], timeout: float = 5.0) -> bool:
        """Liveness through the wire, not just the process table."""
        handle = self.handles.get(key)
        if handle is None or not handle.alive:
            return False
        try:
            with ClusterClient(self.host, handle.port, timeout=timeout) as client:
                return client.ping()
        except (OSError, ConnectionError):
            return False

    def restart(self, index: int) -> WorkerHandle:
        """Replace worker ``index`` with a fresh process on the same data dir.

        Any remnant process is killed first; the replacement recovers from
        the shard's snapshot + WAL before accepting traffic.
        """
        handle = self.handles.pop(index, None)
        if handle is not None and handle.alive:
            handle.process.kill()
        if handle is not None:
            handle.process.wait(timeout=30)
        _LOG.warning(
            "worker_restarting",
            shard=index,
            old_pid=None if handle is None else handle.process.pid,
        )
        return self.spawn(index)

    def kill(self, key: int | tuple[int, int]) -> None:
        """``kill -9`` one worker (fault injection for tests and drills)."""
        handle = self.handles[key]
        handle.process.send_signal(signal.SIGKILL)
        handle.process.wait(timeout=30)
        _LOG.warning("worker_killed", key=str(key), pid=handle.process.pid)

    # ------------------------------------------------------------------ #
    # Promotion

    def adopt_primary(self, index: int, replica: int) -> WorkerHandle | None:
        """Rekey an (already promoted) replica process into the primary slot.

        Swaps the shard's primary data dir with the replica's — from now
        on ``spawn(index)`` restarts the promoted worker on the directory
        it actually owns, and ``spawn_replica(index, replica)`` reuses the
        old primary's directory for a fresh follower.  Returns the
        deposed primary's handle (usually a corpse), or ``None``.
        """
        promoted = self.handles.pop((index, replica))
        deposed = self.handles.pop(index, None)
        self.handles[index] = WorkerHandle(
            index=index, process=promoted.process, port=promoted.port
        )
        _LOG.warning(
            "primary_adopted",
            shard=index,
            promoted_slot=replica,
            promoted_pid=promoted.process.pid,
            deposed_pid=None if deposed is None else deposed.process.pid,
        )
        if self.replica_data_dirs is not None:
            dirs = self.replica_data_dirs[index]
            self.data_dirs[index], dirs[replica] = (
                dirs[replica],
                self.data_dirs[index],
            )
        return deposed

    def respawn_replica(
        self, index: int, replica: int, fresh: bool = False, epoch: int = 0
    ) -> WorkerHandle:
        """Bring a replica slot back, killing any remnant process first.

        ``fresh=True`` quarantines the directory's wal/snapshots into a
        ``divergent-{epoch}`` subdirectory before spawning — used for a
        deposed primary whose unreplicated tail must not resurface.  The
        fresh follower then bootstraps by reseeding from the new primary.
        """
        handle = self.handles.pop((index, replica), None)
        if handle is not None:
            if handle.alive:
                handle.process.kill()
            handle.process.wait(timeout=30)
        if fresh and self.replica_data_dirs is not None:
            data_dir = self.replica_data_dirs[index][replica]
            quarantine = data_dir / f"divergent-{epoch:06d}"
            for name in ("wal", "snapshots"):
                source = data_dir / name
                if source.exists():
                    quarantine.mkdir(parents=True, exist_ok=True)
                    os.replace(source, quarantine / name)
            _LOG.warning(
                "replica_state_quarantined",
                shard=index,
                slot=replica,
                quarantine=str(quarantine),
            )
        _LOG.info("replica_respawning", shard=index, slot=replica, fresh=fresh)
        return self.spawn_replica(index, replica)

    # ------------------------------------------------------------------ #
    # Shutdown

    def stop(
        self,
        graceful: bool = True,
        timeout: float = 30.0,
        grace_timeout: float | None = None,
    ) -> None:
        """Stop every worker.

        Graceful stop sends SIGTERM (triggering each worker's final
        checkpoint) and gives the whole fleet one shared grace period
        (``grace_timeout``, default :attr:`stop_grace_timeout`) to exit;
        stragglers are then escalated to SIGKILL, so one wedged worker —
        hung checkpoint, masked signal handler — can never hang shutdown
        for longer than the grace plus the reap ``timeout``.
        """
        grace = self.stop_grace_timeout if grace_timeout is None else grace_timeout
        for handle in self.handles.values():
            if not handle.alive:
                continue
            handle.process.send_signal(
                signal.SIGTERM if graceful else signal.SIGKILL
            )
        deadline = time.monotonic() + (grace if graceful else timeout)
        stragglers: list[WorkerHandle] = []
        for handle in self.handles.values():
            try:
                handle.process.wait(
                    timeout=max(0.05, deadline - time.monotonic())
                )
            except subprocess.TimeoutExpired:
                stragglers.append(handle)
        for handle in stragglers:
            _LOG.warning(
                "worker_stop_escalated",
                shard=handle.index,
                slot=handle.replica,
                pid=handle.process.pid,
            )
            handle.process.kill()
        for handle in stragglers:
            handle.process.wait(timeout=timeout)
        _LOG.info("fleet_stopped", graceful=graceful, stragglers=len(stragglers))
        self.handles.clear()
