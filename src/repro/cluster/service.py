"""The cluster front end: routing catalog, scatter-gather, supervision.

:class:`ClusterQueryService` presents the same query/ingest surface as the
single-node :class:`~repro.service.database.QueryService`, but behind it
every table's rows are hash-partitioned across N worker shards — each a
full durable engine with its own data directory, WAL and checkpointer —
running either in-process (``mode="local"``, tests) or as supervised
``QueryServer`` subprocesses (``mode="process"``, deployment).

* **Ingest** fans out by row hash; a shard that has never seen a table is
  registered lazily on the first batch that routes rows to it.
* **Queries** scatter to every registered shard concurrently and gather
  by merging per-shard synopsis answers (:mod:`repro.cluster.gather`):
  COUNT/SUM add, AVG recombines via weighted sums, GROUP BY unions group
  dictionaries, bounds combine conservatively.
* **Durability**: with a cluster ``path``, each shard owns a standard
  data directory under it and the ``CLUSTER`` manifest records the shard
  count + table catalog, so :meth:`ClusterQueryService.open` recovers the
  whole fleet — each worker replays its own snapshot + WAL.
* **Failure**: a worker crash surfaces as a connection error; the front
  end restarts it through the :class:`ShardSupervisor` (recovery happens
  inside the worker before it listens) and retries the call once.
"""

from __future__ import annotations

import contextvars
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..core.engine import AqpResult
from ..core.params import PairwiseHistParams
from ..data.schema import TableSchema
from ..data.table import Table
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..sql.ast import Query
from ..sql.parser import parse_query_cached
from ..service.wire import UnsentRequestError
from ..storage.cluster import (
    ClusterLayout,
    ClusterManifest,
    ClusterTableMeta,
    shard_dir_name,
)
from .gather import gather_groups, gather_scalar, plan_query
from .router import ShardRouter
from .shard import LocalShard, ProcessShard, ReplicatedShard
from .supervisor import ShardSupervisor

#: Connection-level failures that trigger a worker restart.
_SHARD_FAILURES = (ConnectionError, BrokenPipeError, EOFError, OSError)

_SCATTER_FANOUT = obs_metrics.histogram(
    "aqp_scatter_fanout",
    "Number of shards one query scattered to.",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
)
_SHARD_ROUNDTRIP = obs_metrics.histogram(
    "aqp_shard_roundtrip_seconds",
    "Front-end-observed round trip of one scattered shard query.",
    labelnames=("shard",),
)
# Pre-bound cells: the scatter path runs per shard per query.
_SCATTER_FANOUT_CELL = _SCATTER_FANOUT.labels()
_ROUNDTRIP_CELLS: dict[int, object] = {}


def _roundtrip_cell(index: int):
    cell = _ROUNDTRIP_CELLS.get(index)
    if cell is None:
        cell = _ROUNDTRIP_CELLS[index] = _SHARD_ROUNDTRIP.labels(
            shard=f"{index:05d}"
        )
    return cell


def shard_params(
    params: PairwiseHistParams | None, num_shards: int
) -> PairwiseHistParams | None:
    """Scale construction parameters down to one shard's share of the rows.

    The same proportionality rule as
    :func:`repro.core.builder.partition_params`, applied one level up:
    each shard owns ``~1/num_shards`` of every table, so its sample budget
    (``Ns``) and split threshold (``M``) shrink with it.  The per-shard
    bin budget ``Ns / M`` is therefore preserved — per-shard synopses keep
    single-node granularity over their smaller row sets, and the union of
    shard answers recombines at full resolution instead of
    ``num_shards``-fold coarser.
    """
    if params is None or num_shards <= 1:
        return params
    sample = params.sample_size
    if sample is not None:
        sample = max(1, math.ceil(sample / num_shards))
    return replace(
        params,
        sample_size=sample,
        min_points=max(1, math.ceil(params.min_points / num_shards)),
    )


@dataclass
class ClusterTable:
    """Front-end catalog entry for one logical table."""

    name: str
    schema: TableSchema
    params: PairwiseHistParams | None
    partition_size: int | None
    #: Shards that have the table registered (lazily grows as ingest
    #: routes rows to previously-empty shards).
    registered: set[int] = field(default_factory=set)
    rows: int = 0
    #: Durable rows per shard as last acknowledged — the reference the
    #: crash-ambiguity check compares a revived worker's actual count to.
    shard_rows: dict[int, int] = field(default_factory=dict)
    #: Last-reported partition count per shard (observability).
    shard_partitions: dict[int, int] = field(default_factory=dict)
    #: Serializes lazy shard registrations and bookkeeping for this table
    #: across concurrent ingests.
    mutex: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def num_rows(self) -> int:
        return self.rows

    @property
    def num_partitions(self) -> int:
        return sum(self.shard_partitions.values())

    def record(self, index: int, appended_rows: int, partitions: int) -> None:
        """Apply one shard's acknowledged report (caller holds ``mutex``)."""
        self.registered.add(index)
        self.rows += appended_rows
        self.shard_rows[index] = self.shard_rows.get(index, 0) + appended_rows
        self.shard_partitions[index] = partitions


@dataclass
class ClusterIngestResult:
    """Outcome of one fanned-out ingest."""

    table_name: str
    appended_rows: int
    #: rows routed to each shard index (only shards that received rows).
    shard_rows: dict[int, int]
    seconds: float


@dataclass
class ClusterCheckpointResult:
    """Aggregate of one checkpoint fan-out (shape matches the wire op)."""

    checkpoint_lsn: int
    tables: int
    seconds: float
    skipped: bool
    path: Path | None = None
    per_shard: list[dict] = field(default_factory=list)


class ClusterQueryService:
    """Scatter-gather SQL front end over N hash-routed worker shards."""

    def __init__(
        self,
        num_shards: int = 2,
        path: str | Path | None = None,
        mode: str = "local",
        default_params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
        worker_options: dict | None = None,
        replicas: int | None = 0,
        max_replica_lag: int = 256,
        _opening: bool = False,
        **database_kwargs,
    ) -> None:
        if mode not in ("local", "process"):
            raise ValueError(f"unknown cluster mode {mode!r}")
        self.num_shards = num_shards
        self.mode = mode
        self.default_params = default_params
        self.partition_size = partition_size
        self.router = ShardRouter(num_shards)
        self.layout = ClusterLayout(path) if path is not None else None
        self.max_replica_lag = max_replica_lag
        self._catalog: dict[str, ClusterTable] = {}
        #: Guards catalog dict mutations + manifest writes (register/drop).
        self._catalog_mutex = threading.Lock()
        #: One lock per shard serializing revival: with multiplexed
        #: channels, one worker crash fails *every* in-flight caller at
        #: once — without the lock each would restart the worker, leaking
        #: N-1 orphaned processes.
        self._revive_locks = [threading.Lock() for _ in range(num_shards)]
        self._closed = False
        if replicas is None:
            # Autodetect (the open() path): the replica directories on
            # disk are the setting.
            replicas = (
                self.layout.detect_replicas(num_shards)
                if self.layout is not None
                else 0
            )
        self.replicas = int(replicas)
        if self.replicas and (mode != "process" or self.layout is None):
            raise ValueError(
                "read replicas need mode='process' and a cluster path — "
                "each replica is a follower subprocess with its own data dir"
            )
        if self.layout is not None:
            existing = self.layout.read_manifest()
            if existing is not None and not _opening:
                raise ValueError(
                    f"cluster directory {str(self.layout.root)!r} already "
                    "contains state; use ClusterQueryService.open(path) to "
                    "recover it"
                )
            self.layout.ensure(num_shards, replicas=self.replicas)
        shard_dirs: list[Path | None] = (
            self.layout.shard_paths(num_shards)
            if self.layout is not None
            else [None] * num_shards
        )
        replica_dirs: list[list[Path]] | None = None
        epoch_files: list[Path] | None = None
        if self.replicas:
            from ..replication.fence import read_epoch, write_epoch

            replica_dirs = [
                [self.layout.replica_path(i, r) for r in range(self.replicas)]
                for i in range(num_shards)
            ]
            epoch_files = [self.layout.epoch_path(i) for i in range(num_shards)]
            for i in range(num_shards):
                record = read_epoch(epoch_files[i])
                if record.epoch == 0:
                    write_epoch(epoch_files[i], 1, primary=shard_dir_name(i))
                elif record.primary and record.primary != shard_dirs[i].name:
                    # A past promotion moved the primary role into one of
                    # the replica directories; honour the epoch record so
                    # the reopened cluster serves the promoted state.
                    for slot, candidate in enumerate(replica_dirs[i]):
                        if candidate.name == record.primary:
                            shard_dirs[i], replica_dirs[i][slot] = (
                                candidate,
                                shard_dirs[i],
                            )
                            break
        self.supervisor: ShardSupervisor | None = None
        if mode == "process":
            self.supervisor = ShardSupervisor(
                data_dirs=shard_dirs,
                partition_size=partition_size,
                replicas=self.replicas,
                replica_data_dirs=replica_dirs,
                epoch_files=epoch_files,
                **(worker_options or {}),
            )
            handles = self.supervisor.start()
            primaries = [
                ProcessShard(h.index, self.supervisor.host, h.port) for h in handles
            ]
            if self.replicas:
                self.shards = [
                    ReplicatedShard(
                        i,
                        primary,
                        {
                            r: ProcessShard(
                                i,
                                self.supervisor.host,
                                self.supervisor.handles[(i, r)].port,
                            )
                            for r in range(self.replicas)
                        },
                        max_lag_records=max_replica_lag,
                    )
                    for i, primary in enumerate(primaries)
                ]
            else:
                self.shards = primaries
        else:
            if worker_options:
                raise ValueError("worker_options only apply to mode='process'")
            kwargs = dict(database_kwargs)
            if default_params is not None:
                kwargs["default_params"] = default_params
            if partition_size is not None:
                kwargs["partition_size"] = partition_size
            self.shards = [
                LocalShard(index, data_dir=shard_dirs[index], **kwargs)
                for index in range(num_shards)
            ]
        # Scatter pool sized for many *concurrent* fan-outs: every in-flight
        # query or ingest needs one slot per shard, and a paced ingest must
        # never head-of-line block the query scatters behind it.
        self._pool = ThreadPoolExecutor(
            max_workers=8 * num_shards, thread_name_prefix="cluster-scatter"
        )
        if self.layout is not None and not _opening:
            self._write_manifest()

    # ------------------------------------------------------------------ #
    # Recovery

    @classmethod
    def open(
        cls,
        path: str | Path,
        mode: str = "local",
        expected_shards: int | None = None,
        **kwargs,
    ) -> "ClusterQueryService":
        """Recover a cluster from its root directory.

        The manifest fixes the shard count (routing is ``hash %
        num_shards`` — reopening with a different count would misroute
        every subsequent row); each worker recovers its own tables from
        its shard directory, and the front-end catalog is rebuilt from the
        manifest plus each shard's recovered table list.
        """
        layout = ClusterLayout(path)
        manifest = layout.read_manifest()
        if manifest is None:
            raise ValueError(
                f"{str(layout.root)!r} holds no cluster manifest; start a "
                "fresh cluster with ClusterQueryService(path=...) instead"
            )
        if expected_shards is not None and expected_shards != manifest.num_shards:
            raise ValueError(
                f"cluster at {str(layout.root)!r} has {manifest.num_shards} "
                f"shard(s); refusing to reopen with {expected_shards} — the "
                "shard count is part of the routing function"
            )
        # Reopening autodetects the replica count from the directory
        # listing unless the caller pins it explicitly.
        kwargs.setdefault("replicas", None if mode == "process" else 0)
        service = cls(
            num_shards=manifest.num_shards,
            path=path,
            mode=mode,
            _opening=True,
            **kwargs,
        )
        for meta in manifest.tables:
            service._catalog[meta.name] = ClusterTable(
                name=meta.name,
                schema=meta.schema,
                params=meta.params,
                partition_size=meta.partition_size,
            )
        # Which shards recovered which tables — and how many rows survived
        # (shard_rows seeds the crash-ambiguity checks on future ingests).
        for index, shard in enumerate(service.shards):
            for name in service._shard_call(index, lambda s=shard: s.table_names()):
                table = service._catalog.get(name)
                if table is not None:
                    stat = service._shard_call(
                        index, lambda s=shard, n=name: s.stat(n)
                    )
                    table.record(index, stat["rows"], stat["partitions"])
        return service

    def _write_manifest(self) -> None:
        if self.layout is None:
            return
        self.layout.write_manifest(
            ClusterManifest(
                num_shards=self.num_shards,
                tables=[
                    ClusterTableMeta(
                        name=t.name,
                        schema=t.schema,
                        params=t.params
                        or self.default_params
                        or PairwiseHistParams.with_defaults(sample_size=100_000),
                        partition_size=t.partition_size or self.partition_size,
                    )
                    for t in self._catalog.values()
                ],
            )
        )

    # ------------------------------------------------------------------ #
    # Shard calls (with restart-on-crash)

    def _shard_call(self, index: int, fn, retry_after_revival: bool = True):
        """Run one shard operation, reviving a crashed worker once.

        Only *connection-level* failures trigger a revival — error frames
        (KeyError and friends) surface unchanged.  The restarted worker
        recovers from its own data directory before listening, so the
        retried call sees the shard's durable state.

        A failure *before* the request reached the socket
        (:class:`UnsentRequestError`) is always retried — the worker never
        saw it.  A failure after the send is retried only when
        ``retry_after_revival`` (queries and other idempotent ops); a
        non-idempotent caller (ingest) passes ``False`` and resolves the
        ambiguity itself.
        """
        generation = getattr(self.shards[index], "generation", None)
        try:
            return fn()
        except UnsentRequestError:
            self._revive(index, generation)
            return fn()
        except _SHARD_FAILURES:
            self._revive(index, generation)
            if not retry_after_revival:
                raise
            return fn()

    def _revive(self, index: int, generation: int | None = None) -> None:
        """Bring shard ``index`` back after a connection-level failure.

        With multiplexed channels, one crash fails many concurrent
        callers simultaneously; the per-shard lock serializes them, the
        generation check makes later arrivals observe (not repeat) the
        first caller's revival, and a wire ping distinguishes a dead
        worker (restart + recover) from a mere channel loss — e.g. our
        side of the socket was closed by a concurrent reconnect — where
        restarting would needlessly discard a healthy worker.
        """
        if self.supervisor is None:
            raise  # local shards share our process; a crash here is ours
        shard = self.shards[index]
        with self._revive_locks[index]:
            if generation is not None and shard.generation != generation:
                return  # another caller already revived this shard
            if self.supervisor.ping(index):
                shard.reconnect()
                return
            if self.replicas and self._promote_shard(index):
                return
            handle = self.supervisor.restart(index)
            shard.reconnect(handle.port)
            if self.layout is None:
                # Memory-only workers lose their tables with the process;
                # drop them from the routing sets so the next ingest
                # re-registers.
                for table in self._catalog.values():
                    with table.mutex:
                        table.registered.discard(index)
                        table.shard_rows.pop(index, None)
                        table.shard_partitions.pop(index, None)

    def _promote_shard(self, index: int) -> bool:
        """Fail a dead primary over to its freshest live replica.

        Caller holds the shard's revive lock.  The order is the fencing
        contract: bump the epoch file first (from that instant the deposed
        primary — even a zombie that is merely unreachable — can no longer
        acknowledge writes), then tell the chosen replica to act as the
        primary.  The freshest replica (highest durable LSN) necessarily
        holds every acknowledged write, because acks waited for
        replication and follower WALs are contiguous.

        Returns False when no replica can take over — the caller falls
        back to restart-as-recovery on the old primary's directory.
        """
        from ..replication.fence import read_epoch, write_epoch

        shard = self.shards[index]
        supervisor = self.supervisor
        candidates: list[tuple[int, int]] = []
        for slot in shard.replica_slots():
            replica = shard.replicas[slot]
            try:
                status = replica.status()
            except Exception:
                try:
                    replica.reconnect()
                    status = replica.status()
                except Exception:
                    continue
            if status.get("role") != "replica":
                continue
            candidates.append((int(status.get("durable_lsn", 0)), slot))
        if not candidates:
            return False
        _, slot = max(candidates)
        epoch_path = self.layout.epoch_path(index)
        new_epoch = read_epoch(epoch_path).epoch + 1
        promoted_dir = supervisor.replica_data_dirs[index][slot]
        write_epoch(epoch_path, new_epoch, primary=promoted_dir.name)
        try:
            shard.replicas[slot].promote(new_epoch)
        except Exception:
            return False  # retried at a yet-higher epoch by the next revive
        deposed = supervisor.adopt_primary(index, slot)
        if deposed is not None and deposed.alive:
            deposed.process.kill()  # fenced zombie; reap it
            deposed.process.wait(timeout=30)
        shard.swap_primary(slot)
        new_port = supervisor.handles[index].port
        for other in shard.replica_slots():
            try:
                shard.replicas[other].follow(supervisor.host, new_port)
            except Exception:
                pass  # its own revive path will respawn it
        # The deposed primary's directory comes back as a fresh follower:
        # its unreplicated (never-acknowledged) WAL tail is quarantined so
        # it reseeds cleanly from the new primary.
        try:
            handle = supervisor.respawn_replica(
                index, slot, fresh=True, epoch=new_epoch
            )
            shard.attach_replica(
                slot, ProcessShard(index, supervisor.host, handle.port)
            )
        except Exception:
            pass  # a missing replica only costs read capacity
        return True

    def _scatter(self, indices: list[int], fn):
        """Run ``fn(index, shard)`` on many shards concurrently (with the
        default revive-and-retry crash handling — idempotent ops only).

        Each submission runs under a copy of the caller's context so an
        active trace span is visible on the pool thread (a Context can
        only be entered once, hence one copy per future).  Untraced calls
        skip the copies — they cost about a microsecond per shard."""
        if tracing.current_span() is not None:
            futures = [
                self._pool.submit(
                    contextvars.copy_context().run,
                    self._shard_call,
                    i,
                    lambda i=i: fn(i, self.shards[i]),
                )
                for i in indices
            ]
        else:
            futures = [
                self._pool.submit(
                    self._shard_call, i, lambda i=i: fn(i, self.shards[i])
                )
                for i in indices
            ]
        return [future.result() for future in futures]

    def _scatter_raw(self, indices: list[int], fn):
        """Run ``fn(index, shard)`` concurrently with *no* crash handling —
        for callers (ingest) that implement their own retry semantics."""
        futures = [
            self._pool.submit(lambda i=i: fn(i, self.shards[i])) for i in indices
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # Catalog

    def __contains__(self, name: str) -> bool:
        return name in self._catalog

    @property
    def table_names(self) -> list[str]:
        return list(self._catalog)

    def table(self, name: str) -> ClusterTable:
        if name not in self._catalog:
            raise KeyError(
                f"no table named {name!r} is registered (have: {self.table_names})"
            )
        return self._catalog[name]

    def schema_for(self, name: str) -> TableSchema:
        return self.table(name).schema

    # ------------------------------------------------------------------ #
    # Registration / ingest (fan out by row hash)

    def register_table(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> ClusterTable:
        if table.name in self._catalog:
            raise ValueError(f"table {table.name!r} is already registered")
        # Catalog entries hold the per-shard (scaled) params so lazy shard
        # registrations — including after a cluster restart — use exactly
        # what the initial shards were built with.
        params = shard_params(params or self.default_params, self.num_shards)
        partition_size = partition_size or self.partition_size
        entry = ClusterTable(
            name=table.name,
            schema=table.schema,
            params=params,
            partition_size=partition_size,
        )
        parts = self.router.split(table)
        targets = [i for i, part in enumerate(parts) if part is not None]
        if not targets:
            raise ValueError("cannot register an empty table")

        def _register(index: int, shard) -> dict:
            return shard.register(
                parts[index], params=params, partition_size=partition_size
            )

        reports = self._scatter(targets, _register)
        with entry.mutex:
            for index, report in zip(targets, reports):
                entry.record(index, report["rows"], report["partitions"])
        with self._catalog_mutex:
            self._catalog[table.name] = entry
            self._write_manifest()
        return entry

    def validate_ingest(self, table_name: str, rows: Table) -> ClusterTable:
        entry = self.table(table_name)
        if not isinstance(rows, Table):
            raise TypeError(
                f"ingest into {table_name!r} needs a Table of rows, "
                f"got {type(rows).__name__}"
            )
        if rows.schema.names != entry.schema.names:
            raise ValueError(
                f"rows for table {table_name!r} do not match its schema: "
                f"expected columns {entry.schema.names}, "
                f"got {rows.schema.names}"
            )
        return entry

    def ingest(self, table_name: str, rows: Table) -> ClusterIngestResult:
        """Route rows to their owning shards and append in parallel.

        A shard receiving its first rows for this table registers it (with
        the catalog's params) instead of appending — the lazy half of
        hash-routed registration; first-touch registrations serialize on
        the table's mutex so concurrent ingests cannot double-register.

        Ingest is not idempotent, so a worker that dies *after* the
        request was sent is never blindly retried: the revived worker
        (recovered from its own WAL) is asked for its actual row count —
        if the batch committed before the crash the acknowledgement is
        synthesized, if it never landed the batch is re-sent, and only a
        count matching neither (a concurrent writer's rows interleaved)
        surfaces as a :class:`ConnectionError` for the caller to resolve.
        """
        start = time.perf_counter()
        entry = self.validate_ingest(table_name, rows)
        parts = self.router.split(rows)
        targets = [i for i, part in enumerate(parts) if part is not None]

        def _apply(index: int, shard, part: Table) -> dict:
            """One shard's slice: lazy-register on first touch, else append."""
            with entry.mutex:
                first_touch = index not in entry.registered
                if first_touch:
                    # Registration is slow; holding the mutex serializes
                    # racing first-touch writers instead of letting the
                    # loser fail with "already registered".
                    report = shard.register(
                        part,
                        params=entry.params,
                        partition_size=entry.partition_size,
                    )
                    applied = {
                        "appended_rows": report["rows"],
                        "total_partitions": report["partitions"],
                    }
                    entry.record(index, part.num_rows, report["partitions"])
                    return applied
            report = shard.ingest(table_name, part)
            with entry.mutex:
                entry.record(index, part.num_rows, report["total_partitions"])
            return report

        def _ingest(index: int, shard) -> dict:
            part = parts[index]
            generation = getattr(shard, "generation", None)
            try:
                return _apply(index, shard, part)
            except UnsentRequestError:
                self._revive(index, generation)
                return _apply(index, shard, part)
            except _SHARD_FAILURES as failure:
                with entry.mutex:
                    expected_before = entry.shard_rows.get(index, 0)
                self._revive(index, generation)
                try:
                    stat = shard.stat(table_name)
                except KeyError:
                    stat = None  # table absent: the register never landed
                if stat is None or stat["rows"] == expected_before:
                    return _apply(index, shard, part)  # batch never committed
                if stat["rows"] == expected_before + part.num_rows:
                    # The worker WAL-committed the batch before dying; the
                    # recovered state already holds it — acknowledge, don't
                    # re-send (re-sending would double-apply).
                    with entry.mutex:
                        entry.record(index, part.num_rows, stat["partitions"])
                    return {
                        "appended_rows": part.num_rows,
                        "total_partitions": stat["partitions"],
                    }
                raise ConnectionError(
                    f"shard {index} crashed mid-ingest and its recovered row "
                    f"count ({stat['rows']}) matches neither the batch being "
                    f"applied nor skipped (expected {expected_before} or "
                    f"{expected_before + part.num_rows}); a concurrent writer "
                    "interleaved — resolve manually before re-sending"
                ) from failure

        reports = self._scatter_raw(targets, _ingest)
        shard_rows = {
            index: report["appended_rows"]
            for index, report in zip(targets, reports)
        }
        return ClusterIngestResult(
            table_name=table_name,
            appended_rows=rows.num_rows,
            shard_rows=shard_rows,
            seconds=time.perf_counter() - start,
        )

    def drop_table(self, table_name: str) -> None:
        entry = self.table(table_name)
        self._scatter(
            sorted(entry.registered), lambda i, shard: shard.drop(table_name)
        )
        with self._catalog_mutex:
            del self._catalog[table_name]
            self._write_manifest()

    # ------------------------------------------------------------------ #
    # Scatter-gather queries

    def execute(self, query: Query | str):
        """Scatter one query to every registered shard; gather the answers."""
        if isinstance(query, str):
            query = parse_query_cached(query)
        entry = self.table(query.table)
        plan = plan_query(query)
        sql = str(plan.scattered)
        indices = sorted(entry.registered)

        def _shard_execute(i: int, shard):
            started = time.perf_counter()
            with tracing.child_span("shard_execute", attrs={"shard": i}):
                result = shard.execute(sql)
            _roundtrip_cell(i).observe(time.perf_counter() - started)
            return result

        with tracing.child_span(
            "scatter", attrs={"fanout": len(indices), "table": query.table}
        ):
            _SCATTER_FANOUT_CELL.observe(len(indices))
            raw = self._scatter(indices, _shard_execute)
        with tracing.child_span("gather"):
            if query.group_by is None:
                return gather_scalar(plan, [answers for _, answers in raw])
            return gather_groups(plan, [groups for _, groups in raw])

    def execute_scalar(self, query: Query | str) -> AqpResult:
        results = self.execute(query)
        if isinstance(results, dict):
            raise ValueError("execute_scalar does not support GROUP BY queries")
        return results[0]

    def query(self, query: Query | str):
        return self.execute(query)

    def query_scalar(self, query: Query | str) -> AqpResult:
        return self.execute_scalar(query)

    # ------------------------------------------------------------------ #
    # Durability fan-out

    def checkpoint(self) -> ClusterCheckpointResult:
        """Checkpoint every shard (each writes its own snapshot)."""
        start = time.perf_counter()
        reports = self._scatter(
            list(range(self.num_shards)), lambda i, shard: shard.checkpoint()
        )
        return ClusterCheckpointResult(
            checkpoint_lsn=max(r["checkpoint_lsn"] for r in reports),
            tables=max(r["tables"] for r in reports),
            seconds=time.perf_counter() - start,
            skipped=all(r["skipped"] for r in reports),
            per_shard=list(reports),
        )

    def persist(self) -> list[int]:
        """fsync every shard's WAL; returns the per-shard durable LSNs."""
        return self._scatter(
            list(range(self.num_shards)), lambda i, shard: shard.persist()
        )

    # ------------------------------------------------------------------ #
    # Observability fan-out

    def metrics(self) -> dict:
        """One merged registry snapshot for the whole cluster.

        In local mode every shard shares this process's registry, so the
        front end's own snapshot *is* the cluster's.  In process mode the
        front end's series are labelled ``role="frontend"`` and each
        worker's are labelled ``shard="NNNNN"`` plus
        ``role="primary"|"replica"``; a worker that cannot be reached is
        skipped rather than failing the whole scrape.
        """
        if self.mode != "process":
            return obs_metrics.REGISTRY.snapshot()
        merged: dict = {}
        obs_metrics.merge_snapshot(
            merged, obs_metrics.REGISTRY.snapshot(), {"role": "frontend"}
        )
        for index, shard in enumerate(self.shards):
            labels = {"shard": f"{index:05d}", "role": "primary"}
            try:
                snapshot = shard.metrics()
            except Exception:
                continue  # dead worker: its series are simply absent
            obs_metrics.merge_snapshot(merged, snapshot, labels)
            replica_metrics = getattr(shard, "replica_metrics", None)
            if replica_metrics is None:
                continue
            for slot, snapshot in replica_metrics().items():
                obs_metrics.merge_snapshot(
                    merged,
                    snapshot,
                    {
                        "shard": f"{index:05d}",
                        "role": "replica",
                        "slot": str(slot),
                    },
                )
        return merged

    def trace(self, trace_id: str) -> list[dict]:
        """Every finished span recorded for ``trace_id``, cluster-wide.

        Merges the front end's ring buffer with each worker's (primaries
        and replicas), deduplicating on span id — a span can surface twice
        when a worker is both asked directly and reachable through a
        replicated shard's fan-out.  Sorted by start time.
        """
        spans: dict[str, dict] = {
            span["span_id"]: span for span in tracing.spans_for(trace_id)
        }
        if self.mode == "process":
            for index in range(self.num_shards):
                shard = self.shards[index]
                try:
                    collected = self._shard_call(
                        index, lambda s=shard: s.trace(trace_id)
                    )
                except Exception:
                    continue
                for span in collected:
                    spans.setdefault(span["span_id"], span)
        return sorted(spans.values(), key=lambda s: s.get("start", 0.0))

    def status_extra(self) -> dict:
        """Cluster-wide additions for the ``status`` op payload.

        The front end holds no result cache of its own — the caches live
        in the workers — so per-table hit/miss stats are gathered from
        every shard primary and summed.  Before this existed the cluster
        ``status`` payload silently omitted ``cache_stats`` entirely.
        """
        totals: dict[str, dict[str, int]] = {}
        found = False
        for index, shard in enumerate(self.shards):
            if self.mode == "process":
                try:
                    stats = self._shard_call(
                        index, lambda s=shard: s.status()
                    ).get("cache_stats")
                except Exception:
                    continue
            else:
                stats = getattr(shard.service, "cache_stats", None)
                if stats is not None:
                    stats = {t: dict(s) for t, s in stats.items()}
            if stats is None:
                continue
            found = True
            for table, counts in stats.items():
                bucket = totals.setdefault(table, {})
                for outcome, count in counts.items():
                    bucket[outcome] = bucket.get(outcome, 0) + int(count)
        return {"cache_stats": totals} if found else {}

    # ------------------------------------------------------------------ #
    # Answer-quality observability (repro.audit)

    def explain(self, sql: str, analyze: bool = False) -> dict:
        """The actual scatter-gather plan this front end would execute.

        The ``gather`` section comes from the same
        :func:`~repro.cluster.gather.plan_query` that :meth:`execute`
        scatters with, so a single-node EXPLAIN of the same SQL agrees
        with this plan by construction.
        """
        from ..audit.explain import analyze_section, gather_section, query_section
        from ..sql.parser import parse_cache_contains

        parse_cached = parse_cache_contains(sql)
        query = parse_query_cached(sql)
        entry = self.table(query.table)
        indices = sorted(entry.registered)
        plan = {
            "sql": sql,
            "node": "cluster",
            "query": query_section(query),
            "parse_cache": {"cached": parse_cached},
            "route": {
                "table": query.table,
                "shards": indices,
                "fanout": len(indices),
                "rows": entry.rows,
                "shard_rows": {
                    str(i): entry.shard_rows.get(i, 0) for i in indices
                },
                "shard_partitions": {
                    str(i): entry.shard_partitions.get(i, 0) for i in indices
                },
            },
            "gather": gather_section(query),
        }
        if analyze:
            plan["analyze"] = analyze_section(self.execute, self.trace, sql)
        return plan

    def workload(self) -> dict:
        """One merged workload log for the whole cluster.

        Shards see only their scattered slice of each query, so the
        per-shard templates carry the *scattered* SQL; merging sums their
        frequencies and rollups per template.  An unreachable worker is
        skipped rather than failing the scrape.
        """
        from ..audit.workload import WorkloadLog

        snapshots = []
        for index, shard in enumerate(self.shards):
            try:
                if self.mode == "process":
                    snapshot = self._shard_call(index, lambda s=shard: s.workload())
                else:
                    snapshot = shard.workload()
            except Exception:
                continue
            snapshots.append(snapshot)
        return WorkloadLog.merge_snapshots(snapshots)

    def audit_stats(self) -> dict:
        """Merged accuracy-auditor counters across every shard."""
        from ..audit.auditor import AccuracyAuditor

        stats = []
        for index, shard in enumerate(self.shards):
            try:
                if self.mode == "process":
                    payload = self._shard_call(index, lambda s=shard: s.audit())
                else:
                    payload = shard.audit()
            except Exception:
                continue
            stats.append(payload)
        return AccuracyAuditor.merge_stats(stats)

    def ready(self) -> bool:
        """Every worker reachable — the cluster's ``/readyz`` predicate."""
        if self.supervisor is None:
            return True
        return all(
            self.supervisor.ping(index) for index in range(self.num_shards)
        )

    # ------------------------------------------------------------------ #
    # Lifecycle

    def close(self, graceful: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        for shard in self.shards:
            try:
                shard.close()
            except OSError:  # pragma: no cover - a dying worker's socket
                pass
        if self.supervisor is not None:
            self.supervisor.stop(graceful=graceful)

    def __enter__(self) -> "ClusterQueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncClusterService:
    """Coroutine face of a :class:`ClusterQueryService`.

    The same adapter shape as
    :class:`~repro.service.server.AsyncQueryService`, so a
    :class:`~repro.service.server.QueryServer` can serve a whole cluster
    over the standard JSON-lines protocol (the ``python -m repro.service
    --shards N`` path).  Scatter concurrency lives inside the cluster
    front end; this layer only keeps the event loop unblocked.
    """

    def __init__(self, cluster: ClusterQueryService, max_workers: int = 4) -> None:
        self.cluster = cluster
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="cluster-front"
        )
        self._closed = False

    async def __aenter__(self) -> "AsyncClusterService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        import asyncio
        from functools import partial

        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, partial(self._executor.shutdown, wait=True)
        )

    async def _dispatch(self, fn, *args, **kwargs):
        if self._closed:
            raise RuntimeError("the cluster front end is closed")
        import asyncio
        from functools import partial

        loop = asyncio.get_running_loop()
        # run_in_executor does not carry contextvars over, so the active
        # trace span would vanish on the worker thread without the copy.
        # Untraced requests skip it (about a microsecond per call).
        if tracing.current_span() is not None:
            call = partial(
                contextvars.copy_context().run, partial(fn, *args, **kwargs)
            )
        else:
            call = partial(fn, *args, **kwargs)
        return await loop.run_in_executor(self._executor, call)

    async def query(self, query):
        return await self._dispatch(self.cluster.execute, query)

    async def query_scalar(self, query):
        return await self._dispatch(self.cluster.execute_scalar, query)

    async def register_table(self, table, params=None, partition_size=None):
        return await self._dispatch(
            self.cluster.register_table,
            table,
            params=params,
            partition_size=partition_size,
        )

    async def ingest(self, table_name, rows, coalesce: bool = True):
        # Coalescing happens inside each worker's own ingest queue; the
        # front end always forwards immediately.
        del coalesce
        result = await self._dispatch(self.cluster.ingest, table_name, rows)
        entry = self.cluster.table(table_name)
        from ..service.database import IngestResult

        return IngestResult(
            table_name=result.table_name,
            appended_rows=result.appended_rows,
            rebuilt_partitions=sorted(result.shard_rows),
            total_partitions=entry.num_partitions,
            seconds=result.seconds,
        )

    async def drop_table(self, table_name: str) -> None:
        await self._dispatch(self.cluster.drop_table, table_name)

    async def checkpoint(self) -> ClusterCheckpointResult:
        return await self._dispatch(self.cluster.checkpoint)

    async def persist(self) -> int:
        return max(await self._dispatch(self.cluster.persist))

    @property
    def table_names(self) -> list[str]:
        return self.cluster.table_names

    def schema_for(self, table_name: str):
        return self.cluster.schema_for(table_name)

    async def stat(self, table_name: str) -> dict:
        entry = self.cluster.table(table_name)
        return {
            "table": table_name,
            "rows": entry.num_rows,
            "partitions": entry.num_partitions,
        }

    # ------------------------------------------------------------------ #
    # Observability

    async def status_extra(self) -> dict:
        return await self._dispatch(self.cluster.status_extra)

    async def metrics(self) -> dict:
        return await self._dispatch(self.cluster.metrics)

    async def trace(self, trace_id: str) -> list[dict]:
        return await self._dispatch(self.cluster.trace, trace_id)

    async def explain(self, sql: str, analyze: bool = False) -> dict:
        return await self._dispatch(self.cluster.explain, sql, analyze)

    async def workload(self) -> dict:
        return await self._dispatch(self.cluster.workload)

    async def audit_stats(self) -> dict:
        return await self._dispatch(self.cluster.audit_stats)
