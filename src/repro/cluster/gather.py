"""Scatter-gather result recombination for the sharded cluster.

Each shard answers a query from its *own* merged synopsis over the rows it
owns.  Because the router hash-partitions rows, the shards are disjoint
and their union is the whole table, so per-shard answers recombine just
like the per-partition synopses recombine inside one node:

* ``COUNT`` / ``SUM`` add — values and both bounds;
* ``AVG`` recombines via weighted sums: the gather plan appends a
  ``COUNT`` over the same column and predicate to the scattered query (one
  extra aggregation in the same round trip, not a second query), and the
  cluster value is ``sum(count_i * avg_i) / sum(count_i)``;
* ``VAR`` uses the exact decomposition
  ``var = sum(w_i * (var_i + (m_i - m)^2)) / W`` with a companion ``AVG``;
* ``MEDIAN`` combines count-weighted (hash routing makes every shard an
  unbiased sample of the same distribution, so shard medians estimate the
  global median);
* ``MIN`` / ``MAX`` take the min / max of values and of both bounds;
* bounds combine conservatively: additive aggregates add them, convex
  combinations (``AVG``) take the envelope ``[min lower, max upper]``;
* ``GROUP BY`` unions the per-shard group dictionaries, recombining each
  group's aggregates over the shards where the group appears.

A single contributing shard short-circuits to its answer unchanged, so a
one-shard cluster is *bit-identical* to a single node (pinned by the
cluster tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..core.aggregation import AqpEstimate
from ..core.engine import AqpResult
from ..sql.ast import (
    AggregateFunction,
    Aggregation,
    Condition,
    ComparisonOp,
    LogicalOp,
    PredicateNode,
    Query,
)

#: Aggregations recombined as count-weighted convex combinations.
_WEIGHTED = (
    AggregateFunction.AVG,
    AggregateFunction.MEDIAN,
    AggregateFunction.VAR,
)


@dataclass(frozen=True)
class ShardAnswer:
    """One aggregation's answer from one shard (or gathered)."""

    value: float
    lower: float
    upper: float

    @classmethod
    def from_result(cls, result: AqpResult) -> "ShardAnswer":
        return cls(value=result.value, lower=result.lower, upper=result.upper)

    @classmethod
    def from_wire(cls, payload: dict) -> "ShardAnswer":
        def _float(key: str) -> float:
            value = payload.get(key)
            return float("nan") if value is None else float(value)

        return cls(value=_float("value"), lower=_float("lower"), upper=_float("upper"))


@dataclass(frozen=True)
class GatherPlan:
    """How to scatter one query and recombine its per-shard answers.

    ``scattered`` is the query actually sent to every shard: the caller's
    aggregations plus any companion ``COUNT`` / ``AVG`` aggregations the
    weighted recombinations need.  ``count_index`` / ``mean_index`` map
    each original aggregation position to its companions' positions in the
    scattered SELECT list (or ``None``).
    """

    original: Query
    scattered: Query
    count_index: tuple
    mean_index: tuple

    @property
    def aggregations(self) -> list[Aggregation]:
        return self.original.aggregations


def plan_query(query: Query) -> GatherPlan:
    """Build the scattered query + companion maps for one parsed query."""
    scattered = list(query.aggregations)

    def _ensure(aggregation: Aggregation) -> int:
        for index, existing in enumerate(scattered):
            if existing == aggregation:
                return index
        scattered.append(aggregation)
        return len(scattered) - 1

    count_index: list[int | None] = []
    mean_index: list[int | None] = []
    for aggregation in query.aggregations:
        if aggregation.func in _WEIGHTED:
            count_index.append(
                _ensure(Aggregation(AggregateFunction.COUNT, aggregation.column))
            )
        else:
            count_index.append(None)
        if aggregation.func is AggregateFunction.VAR:
            mean_index.append(
                _ensure(Aggregation(AggregateFunction.AVG, aggregation.column))
            )
        else:
            mean_index.append(None)
    return GatherPlan(
        original=query,
        scattered=replace(query, aggregations=scattered),
        count_index=tuple(count_index),
        mean_index=tuple(mean_index),
    )


# --------------------------------------------------------------------------- #
# Predicate-range clamps

#: Aggregations whose gathered value must lie inside the predicate's own
#: range on the aggregated column (location statistics, not sums).
_CLAMPABLE = (
    AggregateFunction.MIN,
    AggregateFunction.MAX,
    AggregateFunction.AVG,
    AggregateFunction.MEDIAN,
)


def _conjunctive_conditions(predicate) -> list[Condition] | None:
    """All conditions of a pure AND tree, or ``None`` if any OR appears.

    Under a disjunction a single branch's range says nothing about the
    matching rows as a whole, so clamping would be unsound there.
    """
    if predicate is None:
        return []
    if isinstance(predicate, Condition):
        return [predicate]
    if isinstance(predicate, PredicateNode):
        if predicate.op is not LogicalOp.AND:
            return None
        out: list[Condition] = []
        for child in predicate.children:
            got = _conjunctive_conditions(child)
            if got is None:
                return None
            out.extend(got)
        return out
    return None  # pragma: no cover - unknown predicate node


def predicate_range(query: Query, column: str | None) -> tuple[float, float]:
    """The (lo, hi) interval the predicate pins ``column`` into.

    ``MIN(x) WHERE x > 30`` can only answer in ``[30, inf)``: every
    matching row satisfies the range, so any location aggregate of the
    matching rows does too.  Gathering across shards takes mins/maxes of
    *estimates*, which can stray just outside the range when a shard's
    boundary bin straddles the literal — the clamp pulls them back to
    what the query itself guarantees.
    """
    lo, hi = -math.inf, math.inf
    if column is None:
        return lo, hi
    conditions = _conjunctive_conditions(query.predicate)
    if not conditions:
        return lo, hi
    for condition in conditions:
        if condition.column != column:
            continue
        literal = condition.literal
        if not isinstance(literal, (int, float)):
            continue
        if condition.op in (ComparisonOp.GT, ComparisonOp.GE):
            lo = max(lo, float(literal))
        elif condition.op in (ComparisonOp.LT, ComparisonOp.LE):
            hi = min(hi, float(literal))
        elif condition.op is ComparisonOp.EQ:
            lo = max(lo, float(literal))
            hi = min(hi, float(literal))
    return lo, hi


def _clamp(answer: ShardAnswer, lo: float, hi: float) -> ShardAnswer:
    if lo == -math.inf and hi == math.inf:
        return answer

    def _c(v: float) -> float:
        return min(max(v, lo), hi) if math.isfinite(v) else v

    return ShardAnswer(value=_c(answer.value), lower=_c(answer.lower), upper=_c(answer.upper))


# --------------------------------------------------------------------------- #
# Recombination


def _weights(counts: list[ShardAnswer | None]) -> list[float]:
    out = []
    for count in counts:
        weight = 0.0 if count is None else count.value
        out.append(weight if math.isfinite(weight) and weight > 0 else 0.0)
    return out


def _combine(
    func: AggregateFunction,
    answers: list[ShardAnswer],
    counts: list[ShardAnswer | None],
    means: list[ShardAnswer | None],
) -> ShardAnswer:
    """Recombine one aggregation's per-shard answers (see module docstring)."""
    if len(answers) == 1:
        return answers[0]  # single contributor: bit-identical passthrough
    if func in (AggregateFunction.COUNT, AggregateFunction.SUM):
        return ShardAnswer(
            value=sum(a.value for a in answers),
            lower=sum(a.lower for a in answers),
            upper=sum(a.upper for a in answers),
        )
    if func is AggregateFunction.MIN:
        return ShardAnswer(
            value=min(a.value for a in answers),
            lower=min(a.lower for a in answers),
            upper=min(a.upper for a in answers),
        )
    if func is AggregateFunction.MAX:
        return ShardAnswer(
            value=max(a.value for a in answers),
            lower=max(a.lower for a in answers),
            upper=max(a.upper for a in answers),
        )
    weights = _weights(counts)
    total = sum(weights)
    if total <= 0:
        # No usable counts: fall back to an unweighted mean with the
        # conservative envelope (still correct for equal-size shards).
        return ShardAnswer(
            value=sum(a.value for a in answers) / len(answers),
            lower=min(a.lower for a in answers),
            upper=max(a.upper for a in answers),
        )
    if func in (AggregateFunction.AVG, AggregateFunction.MEDIAN):
        value = sum(w * a.value for w, a in zip(weights, answers)) / total
        contributing = [a for w, a in zip(weights, answers) if w > 0]
        return ShardAnswer(
            value=value,
            lower=min(a.lower for a in contributing),
            upper=max(a.upper for a in contributing),
        )
    if func is AggregateFunction.VAR:
        shard_means = [
            0.0 if m is None or not math.isfinite(m.value) else m.value for m in means
        ]
        grand_mean = (
            sum(w * m for w, m in zip(weights, shard_means)) / total
        )
        between = (
            sum(w * (m - grand_mean) ** 2 for w, m in zip(weights, shard_means))
            / total
        )
        value = (
            sum(w * a.value for w, a in zip(weights, answers)) / total + between
        )
        contributing = [a for w, a in zip(weights, answers) if w > 0]
        return ShardAnswer(
            value=value,
            lower=min(a.lower for a in contributing),
            # The between-shard term raises the point estimate above the
            # per-shard variances, so it widens the upper bound too.
            upper=max(a.upper for a in contributing) + between,
        )
    raise ValueError(f"unsupported aggregation function {func}")  # pragma: no cover


def _gather_row(
    plan: GatherPlan, shard_rows: list[list[ShardAnswer] | None]
) -> list[ShardAnswer] | None:
    """Recombine one result row (scalar query, or one GROUP BY group).

    ``shard_rows`` holds, per shard, the scattered-aggregation answers —
    or ``None`` for shards without the row (empty shard / absent group).
    Returns the recombined answers in the *original* aggregation order, or
    ``None`` when no shard contributed.
    """
    present = [row for row in shard_rows if row is not None]
    if not present:
        return None
    gathered: list[ShardAnswer] = []
    for position, aggregation in enumerate(plan.aggregations):
        answers = [row[position] for row in present]
        count_at = plan.count_index[position]
        mean_at = plan.mean_index[position]
        counts = [None if count_at is None else row[count_at] for row in present]
        means = [None if mean_at is None else row[mean_at] for row in present]
        combined = _combine(aggregation.func, answers, counts, means)
        if len(present) > 1 and aggregation.func in _CLAMPABLE:
            # Multi-shard gathers clamp location aggregates into the
            # predicate's own range; a single contributor stays exactly
            # the single-node answer.
            lo, hi = predicate_range(plan.original, aggregation.column)
            combined = _clamp(combined, lo, hi)
        gathered.append(combined)
    return gathered


def gather_scalar(
    plan: GatherPlan, shard_rows: list[list[ShardAnswer] | None]
) -> list[AqpResult]:
    """Gather a non-GROUP BY query's per-shard answers into final results."""
    gathered = _gather_row(plan, shard_rows)
    if gathered is None:
        raise ValueError(
            f"no shard could answer the query over {plan.original.table!r}"
        )
    return [
        AqpResult(
            aggregation=aggregation,
            estimate=AqpEstimate(value=a.value, lower=a.lower, upper=a.upper),
        )
        for aggregation, a in zip(plan.aggregations, gathered)
    ]


def gather_groups(
    plan: GatherPlan, shard_groups: list[dict | None]
) -> dict[str, list[AqpResult]]:
    """Gather a GROUP BY query: union the per-shard group dictionaries."""
    labels: list[str] = []
    for groups in shard_groups:
        for label in groups or ():
            if label not in labels:
                labels.append(label)
    results: dict[str, list[AqpResult]] = {}
    for label in labels:
        rows = [
            None if groups is None else groups.get(label) for groups in shard_groups
        ]
        gathered = _gather_row(plan, rows)
        if gathered is None:  # pragma: no cover - labels come from present rows
            continue
        results[label] = [
            AqpResult(
                aggregation=aggregation,
                estimate=AqpEstimate(value=a.value, lower=a.lower, upper=a.upper),
                group=label,
            )
            for aggregation, a in zip(plan.aggregations, gathered)
        ]
    return results
