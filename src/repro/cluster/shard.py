"""Worker-shard backends: in-process for tests, subprocess for deployment.

A shard is one full durable engine owning a disjoint, hash-routed subset
of every table's rows.  The cluster front end talks to shards through one
small interface so the same scatter-gather code drives both flavours:

* :class:`LocalShard` — a :class:`~repro.service.concurrency.ConcurrentQueryService`
  (optionally over a :class:`~repro.storage.durable.DurableDatabase` data
  directory) living in the front end's process.  No serialization, no
  sockets: the configuration unit tests use to pin cluster semantics.
* :class:`ProcessShard` — a :class:`~repro.service.server.QueryServer`
  subprocess managed by a
  :class:`~repro.cluster.supervisor.ShardSupervisor`, spoken to over the
  binary pipelined protocol via
  :class:`~repro.service.wire.PipelinedClient`.  This is the
  multi-process deployment the GIL cannot bound.

``execute`` returns shard answers normalised to
(:data:`"scalar"`, ``[ShardAnswer, ...]``) or (:data:`"groups"`,
``{label: [ShardAnswer, ...]}``) so the gather layer never cares which
flavour produced them.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path

from ..core.params import PairwiseHistParams
from ..data.table import Table
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..service.concurrency import ConcurrentQueryService
from ..service.database import Database
from ..service.wire import PipelinedClient, WireError
from ..sql.ast import UnsupportedQueryError
from ..sql.parser import ParseError
from .gather import ShardAnswer

_REPLICA_READ_LAG = obs_metrics.gauge(
    "aqp_replica_read_lag_records",
    "Primary durable LSN minus replica applied LSN, as last observed by "
    "the front end's read-eligibility refresh.",
    labelnames=("shard", "slot"),
)
_REPLICA_ELIGIBLE = obs_metrics.gauge(
    "aqp_replica_read_eligible",
    "1 when the replica is in the staleness-bounded read set, else 0.",
    labelnames=("shard", "slot"),
)

#: Server error frames translated back into the exception the single-node
#: service would have raised locally, so cluster callers see identical
#: error semantics.
_WIRE_ERROR_TYPES = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "ParseError": ParseError,
    "UnsupportedQueryError": UnsupportedQueryError,
}


def _raise_wire_error(error: WireError):
    raised = _WIRE_ERROR_TYPES.get(error.error_type)
    if raised is not None:
        raise raised(error.message) from error
    raise error


class LocalShard:
    """An in-process worker shard (thread-safe concurrent service)."""

    def __init__(
        self,
        index: int,
        data_dir: str | Path | None = None,
        **database_kwargs,
    ) -> None:
        self.index = index
        self.data_dir = Path(data_dir) if data_dir is not None else None
        if self.data_dir is not None:
            database = Database.open(self.data_dir, **database_kwargs)
        else:
            database = Database(**database_kwargs)
        self.service = ConcurrentQueryService(database=database)

    # ------------------------------------------------------------------ #

    def register(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> dict:
        managed = self.service.register_table(
            table, params=params, partition_size=partition_size
        )
        return {"rows": managed.num_rows, "partitions": managed.num_partitions}

    def ingest(self, table_name: str, rows: Table) -> dict:
        result = self.service.ingest(table_name, rows)
        return {
            "appended_rows": result.appended_rows,
            "total_partitions": result.total_partitions,
        }

    def execute(self, sql: str):
        result = self.service.execute(sql)
        if isinstance(result, dict):
            return "groups", {
                label: [ShardAnswer.from_result(r) for r in results]
                for label, results in result.items()
            }
        return "scalar", [ShardAnswer.from_result(r) for r in result]

    def table_names(self) -> list[str]:
        return self.service.table_names

    def stat(self, table_name: str) -> dict:
        managed = self.service.table(table_name)
        return {"rows": managed.num_rows, "partitions": managed.num_partitions}

    def drop(self, table_name: str) -> None:
        self.service.drop_table(table_name)

    def checkpoint(self) -> dict:
        result = self.service.checkpoint()
        return {
            "checkpoint_lsn": result.checkpoint_lsn,
            "tables": result.tables,
            "skipped": result.skipped,
        }

    def persist(self) -> int:
        return self.service.persist()

    def metrics(self) -> dict:
        # Local shards share the front end's process, hence its registry.
        return obs_metrics.REGISTRY.snapshot()

    def trace(self, trace_id: str) -> list[dict]:
        return tracing.spans_for(trace_id)

    def workload(self) -> dict:
        return self.service.workload_snapshot()

    def audit(self) -> dict:
        return self.service.audit_snapshot()

    def reconnect(self) -> None:  # pragma: no cover - interface symmetry
        pass

    def close(self) -> None:
        close = getattr(self.service.database, "close", None)
        if close is not None:
            close()


class _QueryBatcher:
    """Coalesce concurrent queries to one shard into batch frames.

    At most one ``OP_QUERY_BATCH`` frame is outstanding at a time;
    queries arriving while it is in flight accumulate and ship as the
    next frame the moment the current one completes.  Under concurrent
    load this drives frames-per-query toward one per shard, while a lone
    query still departs immediately (as a batch of one).
    """

    def __init__(self, channel: PipelinedClient) -> None:
        self._channel = channel
        self._mutex = threading.Lock()
        self._pending: list[tuple[str, Future]] = []
        self._inflight = False

    def submit(self, sql: str) -> Future:
        """Future of this query's per-item outcome dict."""
        future: Future = Future()
        with self._mutex:
            self._pending.append((sql, future))
            if self._inflight:
                return future  # rides the next frame when the current lands
            self._inflight = True
        self._send_next()
        return future

    def _send_next(self) -> None:
        with self._mutex:
            batch, self._pending = self._pending, []
            if not batch:
                self._inflight = False
                return
        try:
            frame = self._channel.submit_query_batch([sql for sql, _ in batch])
        except BaseException as exc:
            with self._mutex:
                self._inflight = False
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        # Completes on the channel's reader thread, which then ships
        # whatever accumulated in the meantime.
        frame.add_done_callback(lambda done: self._complete(batch, done))

    def _complete(self, batch: list[tuple[str, Future]], frame: Future) -> None:
        try:
            items = frame.result()
        except BaseException as exc:
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
        else:
            for (_, future), item in zip(batch, items):
                if not future.done():
                    future.set_result(item)
            for _, future in batch[len(items) :]:
                if not future.done():
                    future.set_exception(
                        ConnectionError("batch response was truncated")
                    )
        self._send_next()


class ProcessShard:
    """A worker shard living in a supervised ``QueryServer`` subprocess.

    The shard is spoken to over two multiplexed binary channels
    (:class:`~repro.service.wire.PipelinedClient`): a *query* channel
    whose concurrent scatters coalesce into batch frames via
    :class:`_QueryBatcher`, and a *bulk* channel for ingest/register —
    so an MB-sized row frame (or a slow tail recompression) never
    head-of-line blocks the small query frames sharing the shard.  Two
    sockets replace the old per-operation connection pool.
    """

    def __init__(
        self, index: int, host: str, port: int, timeout: float | None = 600.0
    ) -> None:
        self.index = index
        self.host = host
        self.port = port
        self.timeout = timeout
        self._mutex = threading.Lock()
        self._generation = 0
        # Connect eagerly so construction fails fast when the worker is
        # not listening.
        self._query_channel, self._bulk_channel = self._open_channels()
        self._batcher = _QueryBatcher(self._query_channel)

    def _connect(self) -> PipelinedClient:
        return PipelinedClient(self.host, self.port, timeout=self.timeout).connect()

    def _open_channels(self) -> tuple[PipelinedClient, PipelinedClient]:
        query = self._connect()
        try:
            bulk = self._connect()
        except BaseException:
            query.close()
            raise
        return query, bulk

    @property
    def generation(self) -> int:
        """Bumped by every reconnect; revival logic uses it to detect that
        another caller already revived the shard."""
        return self._generation

    def reconnect(self, port: int | None = None) -> None:
        """Point the channels at a restarted worker.

        In-flight requests on the old channels fail with
        :class:`ConnectionError` when they are closed — their callers
        observe the bumped generation and retry on the new channels.
        """
        if port is not None:
            self.port = port
        query, bulk = self._open_channels()
        with self._mutex:
            self._generation += 1
            stale = (self._query_channel, self._bulk_channel)
            self._query_channel, self._bulk_channel = query, bulk
            self._batcher = _QueryBatcher(query)
        for channel in stale:
            channel.close()

    def _channels(self) -> tuple[PipelinedClient, PipelinedClient, _QueryBatcher]:
        with self._mutex:
            return self._query_channel, self._bulk_channel, self._batcher

    def _await(self, future: Future):
        try:
            return future.result(timeout=self.timeout)
        except FutureTimeoutError:
            raise ConnectionError(f"no shard response within {self.timeout}s") from None

    def _call(self, fn):
        query_channel, bulk_channel, _ = self._channels()
        try:
            return fn(query_channel, bulk_channel)
        except WireError as error:
            _raise_wire_error(error)

    # ------------------------------------------------------------------ #

    def register(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> dict:
        return self._call(
            lambda query, bulk: bulk.register(
                table, params=params, partition_size=partition_size
            )
        )

    def ingest(self, table_name: str, rows: Table) -> dict:
        # Binary table frame on the bulk channel: the rows travel as the
        # codec format, no JSON row lists.
        return self._call(lambda query, bulk: bulk.ingest(table_name, rows))

    def execute(self, sql: str):
        span = tracing.current_span()
        if span is not None and span.propagate:
            # A client-traced query bypasses the batcher: the single-query
            # frame carries the trace trailer, so the worker records its
            # span under the same trace id.  Untraced queries (the hot
            # path) keep coalescing into batch frames.
            query_channel, _, _ = self._channels()
            trace = (bytes.fromhex(span.trace_id), bytes.fromhex(span.span_id))
            try:
                payload = query_channel.query(sql, trace=trace)
            except WireError as error:
                _raise_wire_error(error)
            return self._normalize(payload)
        _, _, batcher = self._channels()
        item = self._await(batcher.submit(sql))
        if not item["ok"]:
            _raise_wire_error(WireError(str(item["error_type"]), str(item["error"])))
        return self._normalize(item["result"])

    @staticmethod
    def _normalize(payload: dict):
        if "groups" in payload:
            return "groups", {
                label: [ShardAnswer.from_wire(r) for r in results]
                for label, results in payload["groups"].items()
            }
        return "scalar", [ShardAnswer.from_wire(r) for r in payload["results"]]

    def table_names(self) -> list[str]:
        return self._call(lambda query, bulk: query.tables())

    def stat(self, table_name: str) -> dict:
        return self._call(lambda query, bulk: query.stat(table_name))

    def drop(self, table_name: str) -> None:
        self._call(lambda query, bulk: query.drop(table_name))

    def checkpoint(self) -> dict:
        return self._call(lambda query, bulk: query.checkpoint())

    def persist(self) -> int:
        return self._call(lambda query, bulk: query.persist())

    def status(self) -> dict:
        """Replication/health snapshot of the worker (role, LSNs, lag)."""
        return self._call(lambda query, bulk: query.status())

    def metrics(self) -> dict:
        """The worker process's own registry snapshot."""
        return self._call(lambda query, bulk: query.metrics())

    def trace(self, trace_id: str) -> list[dict]:
        """Finished spans the worker recorded for ``trace_id``."""
        return self._call(lambda query, bulk: query.trace(trace_id))

    def workload(self) -> dict:
        """The worker's workload-log snapshot."""
        return self._call(lambda query, bulk: query.workload())

    def audit(self) -> dict:
        """The worker's accuracy-auditor stats."""
        return self._call(lambda query, bulk: query.audit())

    def promote(self, epoch: int) -> dict:
        """Tell a replica worker to become the primary at ``epoch``."""
        return self._call(lambda query, bulk: query.promote(epoch))

    def follow(self, host: str, port: int) -> dict:
        """Repoint a replica worker's subscription at a new primary."""
        return self._call(lambda query, bulk: query.follow(host, port))

    def close(self) -> None:
        with self._mutex:
            self._generation += 1
            channels = (self._query_channel, self._bulk_channel)
        for channel in channels:
            channel.close()


class ReplicatedShard:
    """One logical shard backed by a primary plus read replicas.

    Queries round-robin across the primary and every *eligible* replica —
    a replica is eligible while its worker reports the replica role and
    its applied LSN trails the primary's durable LSN by at most
    ``max_lag_records`` (the bounded-staleness knob).  Eligibility is
    refreshed at most every ``refresh_interval`` seconds by whichever
    query thread gets there first; any failure on a replica read demotes
    it on the spot and the query retries on the primary, so replica
    trouble costs latency, never an error.

    Everything with write or authority semantics — ingest, register,
    drop, checkpoint, persist, stat — goes to the primary only.
    """

    def __init__(
        self,
        index: int,
        primary: ProcessShard,
        replicas: dict[int, ProcessShard] | None = None,
        max_lag_records: int = 256,
        refresh_interval: float = 0.25,
    ) -> None:
        self.index = index
        self.primary = primary
        self.replicas: dict[int, ProcessShard] = dict(replicas or {})
        self.max_lag_records = max_lag_records
        self.refresh_interval = refresh_interval
        self._mutex = threading.Lock()
        self._refresh_mutex = threading.Lock()
        self._eligible: tuple[int, ...] = ()
        self._next_refresh = 0.0
        self._rr = 0
        self._generation = 0

    # ------------------------------------------------------------------ #
    # Topology

    @property
    def generation(self) -> int:
        """Bumped by reconnect and promotion; revival logic uses it to
        detect that another caller already revived the shard."""
        return self._generation

    def replica_slots(self) -> list[int]:
        with self._mutex:
            return sorted(self.replicas)

    def eligible_slots(self) -> list[int]:
        """Replica slots currently in the read set (within the lag bound)."""
        with self._mutex:
            return sorted(self._eligible)

    def attach_replica(self, slot: int, shard: ProcessShard) -> None:
        """Install (or replace) the replica at ``slot``."""
        with self._mutex:
            old = self.replicas.get(slot)
            self.replicas[slot] = shard
            self._eligible = tuple(s for s in self._eligible if s != slot)
        if old is not None and old is not shard:
            old.close()

    def swap_primary(self, slot: int) -> ProcessShard:
        """Make the (already promoted) replica at ``slot`` the primary.

        Returns the deposed primary's shard, which the caller owns —
        its process is usually already dead.
        """
        with self._mutex:
            promoted = self.replicas.pop(slot)
            deposed, self.primary = self.primary, promoted
            self._eligible = ()
            self._generation += 1
        return deposed

    def reconnect(self, port: int | None = None) -> None:
        self.primary.reconnect(port)
        with self._mutex:
            self._generation += 1

    # ------------------------------------------------------------------ #
    # Staleness-bounded read routing

    def _refresh_eligible(self) -> None:
        """Re-derive the eligible replica set from worker statuses."""
        try:
            durable = int(self.primary.status().get("durable_lsn", 0))
        except Exception:
            return  # primary trouble is the revival path's problem
        with self._mutex:
            replicas = dict(self.replicas)
        eligible = []
        shard_label = f"{self.index:05d}"
        for slot, shard in sorted(replicas.items()):
            try:
                status = shard.status()
            except Exception:
                try:
                    shard.reconnect()
                    status = shard.status()
                except Exception:
                    _REPLICA_ELIGIBLE.set(0, shard=shard_label, slot=str(slot))
                    continue
            if status.get("role") != "replica":
                _REPLICA_ELIGIBLE.set(0, shard=shard_label, slot=str(slot))
                continue
            applied = int(status.get("applied_lsn", 0))
            _REPLICA_READ_LAG.set(
                durable - applied, shard=shard_label, slot=str(slot)
            )
            if durable - applied <= self.max_lag_records:
                eligible.append(slot)
            _REPLICA_ELIGIBLE.set(
                1 if slot in eligible else 0, shard=shard_label, slot=str(slot)
            )
        with self._mutex:
            self._eligible = tuple(s for s in eligible if s in self.replicas)

    def _maybe_refresh(self) -> None:
        now = time.monotonic()
        if now < self._next_refresh:
            return
        if not self._refresh_mutex.acquire(blocking=False):
            return  # someone else is already paying for the refresh
        try:
            if time.monotonic() < self._next_refresh:
                return
            self._refresh_eligible()
            self._next_refresh = time.monotonic() + self.refresh_interval
        finally:
            self._refresh_mutex.release()

    def _pick(self) -> tuple[int | None, ProcessShard]:
        with self._mutex:
            candidates: list[tuple[int | None, ProcessShard]] = [(None, self.primary)]
            candidates += [
                (slot, self.replicas[slot])
                for slot in self._eligible
                if slot in self.replicas
            ]
            self._rr += 1
            return candidates[self._rr % len(candidates)]

    def _demote(self, slot: int) -> None:
        with self._mutex:
            self._eligible = tuple(s for s in self._eligible if s != slot)

    def execute(self, sql: str):
        self._maybe_refresh()
        slot, shard = self._pick()
        if slot is None:
            return self.primary.execute(sql)
        try:
            return shard.execute(sql)
        except Exception:
            # Deterministic errors re-raise identically from the primary;
            # replica-only trouble (lag, restart, promotion) is absorbed.
            self._demote(slot)
            return self.primary.execute(sql)

    # ------------------------------------------------------------------ #
    # Primary-only operations

    def register(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> dict:
        return self.primary.register(
            table, params=params, partition_size=partition_size
        )

    def ingest(self, table_name: str, rows: Table) -> dict:
        return self.primary.ingest(table_name, rows)

    def table_names(self) -> list[str]:
        return self.primary.table_names()

    def stat(self, table_name: str) -> dict:
        return self.primary.stat(table_name)

    def drop(self, table_name: str) -> None:
        self.primary.drop(table_name)

    def checkpoint(self) -> dict:
        return self.primary.checkpoint()

    def persist(self) -> int:
        return self.primary.persist()

    def status(self) -> dict:
        return self.primary.status()

    def metrics(self) -> dict:
        return self.primary.metrics()

    def replica_metrics(self) -> dict[int, dict]:
        """Registry snapshot from every reachable replica, by slot."""
        snapshots: dict[int, dict] = {}
        for slot in self.replica_slots():
            with self._mutex:
                shard = self.replicas.get(slot)
            if shard is None:
                continue
            try:
                snapshots[slot] = shard.metrics()
            except Exception:
                continue  # a dead replica only costs its series
        return snapshots

    def trace(self, trace_id: str) -> list[dict]:
        spans = list(self.primary.trace(trace_id))
        for slot in self.replica_slots():
            with self._mutex:
                shard = self.replicas.get(slot)
            if shard is None:
                continue
            try:
                spans.extend(shard.trace(trace_id))
            except Exception:
                continue
        return spans

    def _fan_in(self, fn) -> list[dict]:
        """``fn(worker)`` on the primary plus every reachable replica —
        reads round-robin across them, so each worker holds only its
        slice of the workload/audit state."""
        payloads = []
        try:
            payloads.append(fn(self.primary))
        except Exception:
            pass
        for slot in self.replica_slots():
            with self._mutex:
                shard = self.replicas.get(slot)
            if shard is None:
                continue
            try:
                payloads.append(fn(shard))
            except Exception:
                continue
        return payloads

    def workload(self) -> dict:
        from ..audit.workload import WorkloadLog

        return WorkloadLog.merge_snapshots(self._fan_in(lambda w: w.workload()))

    def audit(self) -> dict:
        from ..audit.auditor import AccuracyAuditor

        return AccuracyAuditor.merge_stats(self._fan_in(lambda w: w.audit()))

    def close(self) -> None:
        with self._mutex:
            shards = [self.primary, *self.replicas.values()]
            self.replicas.clear()
            self._eligible = ()
        for shard in shards:
            shard.close()
